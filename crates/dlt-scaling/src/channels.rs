//! Off-chain payment channels (paper §VI-A).
//!
//! "The solution revolves around creating an off chain channel to which
//! a prepaid amount is locked in for the lifetime of the channel. The
//! involved parties are able to run micro transactions at high volume
//! and speed, avoiding the transaction cap of the network. Any party
//! may choose to leave the channel, after which the final account
//! balances are recorded on chain and the channel is closed."
//!
//! A [`Channel`] locks two deposits and tracks a sequence of *signed
//! balance updates* — each update is co-signed by both parties over the
//! `(channel id, sequence, balances)` tuple. Closing is either
//! cooperative (both sign the final state) or *forced*: one party posts
//! its newest signed state, a challenge window opens, and the
//! counterparty may override with a higher-sequence state; posting a
//! stale state is the Lightning-style cheat and forfeits the cheater's
//! balance.
//!
//! [`ChannelNetwork`] connects channels into a graph and routes
//! multi-hop payments along capacity-sufficient paths (the
//! Lightning/Raiden network shape).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dlt_crypto::keys::{Address, Keypair, PublicKey, Signature};
use dlt_crypto::sha256::Sha256;
use dlt_crypto::Digest;

/// Channel identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u64);

/// Why a channel operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// Unknown channel id.
    UnknownChannel,
    /// The channel is not open.
    NotOpen,
    /// Balances don't sum to the channel capacity.
    BalanceMismatch,
    /// The update's sequence number is not newer than the current one.
    StaleSequence,
    /// A signature failed verification.
    BadSignature,
    /// Payment exceeds the payer's channel balance.
    InsufficientBalance,
    /// Not a party to this channel.
    NotAParty,
    /// The challenge window has already elapsed.
    ChallengeExpired,
    /// No forced close is pending.
    NoPendingClose,
    /// No route with sufficient capacity exists.
    NoRoute,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            ChannelError::UnknownChannel => "unknown channel",
            ChannelError::NotOpen => "channel is not open",
            ChannelError::BalanceMismatch => "balances do not preserve capacity",
            ChannelError::StaleSequence => "update sequence is stale",
            ChannelError::BadSignature => "invalid update signature",
            ChannelError::InsufficientBalance => "insufficient channel balance",
            ChannelError::NotAParty => "not a channel party",
            ChannelError::ChallengeExpired => "challenge window expired",
            ChannelError::NoPendingClose => "no forced close pending",
            ChannelError::NoRoute => "no route with sufficient capacity",
        };
        f.write_str(text)
    }
}

impl std::error::Error for ChannelError {}

/// Channel lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Live; updates accepted.
    Open,
    /// A forced close was posted at the given sequence; the challenge
    /// window is open until `deadline_micros`.
    Closing {
        /// Sequence of the posted state.
        posted_seq: u64,
        /// Who posted it.
        poster: Address,
        /// Challenge deadline (simulated µs).
        deadline_micros: u64,
    },
    /// Settled; final balances recorded on chain.
    Closed,
}

/// A co-signed balance state.
#[derive(Debug, Clone)]
pub struct ChannelUpdate {
    /// The channel.
    pub channel: ChannelId,
    /// Monotone update counter (0 is the opening state).
    pub seq: u64,
    /// Party A's balance after the update.
    pub balance_a: u64,
    /// Party B's balance after the update.
    pub balance_b: u64,
    /// Party A's signature over [`update_digest`].
    pub sig_a: Signature,
    /// Party B's signature over [`update_digest`].
    pub sig_b: Signature,
}

/// The message both parties sign for an update.
pub fn update_digest(channel: ChannelId, seq: u64, balance_a: u64, balance_b: u64) -> Digest {
    let mut h = Sha256::new();
    h.update(b"channel-update");
    h.update(&channel.0.to_be_bytes());
    h.update(&seq.to_be_bytes());
    h.update(&balance_a.to_be_bytes());
    h.update(&balance_b.to_be_bytes());
    h.finalize()
}

/// A bidirectional payment channel.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Identifier.
    pub id: ChannelId,
    /// First party.
    pub party_a: Address,
    /// Second party.
    pub party_b: Address,
    /// A's verification key.
    pub key_a: PublicKey,
    /// B's verification key.
    pub key_b: PublicKey,
    /// Current (latest accepted) balances.
    pub balance_a: u64,
    /// Current balance of B.
    pub balance_b: u64,
    /// Latest accepted sequence.
    pub seq: u64,
    /// Lifecycle state.
    pub state: ChannelState,
    /// Count of accepted off-chain updates (the §VI-A payoff metric).
    pub update_count: u64,
}

impl Channel {
    /// The locked capacity (constant for the channel's lifetime).
    pub fn capacity(&self) -> u64 {
        // Capacity is fixed at open; balances always sum to it.
        self.balance_a + self.balance_b
    }

    /// The balance owned by `party`, if a party.
    pub fn balance_of(&self, party: &Address) -> Option<u64> {
        if *party == self.party_a {
            Some(self.balance_a)
        } else if *party == self.party_b {
            Some(self.balance_b)
        } else {
            None
        }
    }
}

/// Final balances recorded on chain when a channel closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settlement {
    /// The channel that closed.
    pub channel: ChannelId,
    /// Party A and its payout.
    pub payout_a: (Address, u64),
    /// Party B and its payout.
    pub payout_b: (Address, u64),
    /// On-chain transactions this lifecycle consumed (open + close).
    pub onchain_txs: u64,
}

/// The channel network: all channels plus routing.
#[derive(Debug, Default)]
pub struct ChannelNetwork {
    channels: BTreeMap<ChannelId, Channel>,
    /// Adjacency: party -> channels it participates in.
    by_party: BTreeMap<Address, Vec<ChannelId>>,
    next_id: u64,
    /// Total off-chain updates across all channels.
    pub total_updates: u64,
    /// Total on-chain transactions consumed (2 per channel lifecycle).
    pub total_onchain_txs: u64,
}

impl ChannelNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        ChannelNetwork::default()
    }

    /// Number of channels ever opened.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// A channel by id.
    pub fn channel(&self, id: ChannelId) -> Option<&Channel> {
        self.channels.get(&id)
    }

    /// Opens a channel between two parties with the given deposits
    /// (one on-chain transaction).
    pub fn open(
        &mut self,
        party_a: Address,
        key_a: PublicKey,
        deposit_a: u64,
        party_b: Address,
        key_b: PublicKey,
        deposit_b: u64,
    ) -> ChannelId {
        let id = ChannelId(self.next_id);
        self.next_id += 1;
        self.channels.insert(
            id,
            Channel {
                id,
                party_a,
                party_b,
                key_a,
                key_b,
                balance_a: deposit_a,
                balance_b: deposit_b,
                seq: 0,
                state: ChannelState::Open,
                update_count: 0,
            },
        );
        self.by_party.entry(party_a).or_default().push(id);
        self.by_party.entry(party_b).or_default().push(id);
        self.total_onchain_txs += 1;
        id
    }

    /// Applies a co-signed balance update to an open channel.
    ///
    /// # Errors
    ///
    /// Rejects stale sequences, capacity changes and bad signatures.
    pub fn apply_update(&mut self, update: &ChannelUpdate) -> Result<(), ChannelError> {
        let channel = self
            .channels
            .get_mut(&update.channel)
            .ok_or(ChannelError::UnknownChannel)?;
        if channel.state != ChannelState::Open {
            return Err(ChannelError::NotOpen);
        }
        if update.seq <= channel.seq {
            return Err(ChannelError::StaleSequence);
        }
        if update.balance_a + update.balance_b != channel.capacity() {
            return Err(ChannelError::BalanceMismatch);
        }
        let digest = update_digest(
            update.channel,
            update.seq,
            update.balance_a,
            update.balance_b,
        );
        if !update.sig_a.verify(&digest, &channel.key_a)
            || !update.sig_b.verify(&digest, &channel.key_b)
        {
            return Err(ChannelError::BadSignature);
        }
        channel.balance_a = update.balance_a;
        channel.balance_b = update.balance_b;
        channel.seq = update.seq;
        channel.update_count += 1;
        self.total_updates += 1;
        Ok(())
    }

    /// Cooperative close at the current state (one on-chain
    /// transaction). Returns the settlement to record on chain.
    pub fn close_cooperative(&mut self, id: ChannelId) -> Result<Settlement, ChannelError> {
        let channel = self
            .channels
            .get_mut(&id)
            .ok_or(ChannelError::UnknownChannel)?;
        if channel.state != ChannelState::Open {
            return Err(ChannelError::NotOpen);
        }
        channel.state = ChannelState::Closed;
        self.total_onchain_txs += 1;
        Ok(Settlement {
            channel: id,
            payout_a: (channel.party_a, channel.balance_a),
            payout_b: (channel.party_b, channel.balance_b),
            onchain_txs: 2,
        })
    }

    /// Unilateral (forced) close: `poster` records the channel's
    /// current state on chain and a challenge window opens until
    /// `deadline_micros`.
    pub fn close_forced(
        &mut self,
        id: ChannelId,
        poster: Address,
        posted: &ChannelUpdate,
        deadline_micros: u64,
    ) -> Result<(), ChannelError> {
        let channel = self
            .channels
            .get_mut(&id)
            .ok_or(ChannelError::UnknownChannel)?;
        if channel.state != ChannelState::Open {
            return Err(ChannelError::NotOpen);
        }
        if poster != channel.party_a && poster != channel.party_b {
            return Err(ChannelError::NotAParty);
        }
        let digest = update_digest(
            posted.channel,
            posted.seq,
            posted.balance_a,
            posted.balance_b,
        );
        if !posted.sig_a.verify(&digest, &channel.key_a)
            || !posted.sig_b.verify(&digest, &channel.key_b)
        {
            return Err(ChannelError::BadSignature);
        }
        // Install the posted state (it may be stale — that's the cheat
        // the challenge window exists to catch).
        channel.balance_a = posted.balance_a;
        channel.balance_b = posted.balance_b;
        channel.state = ChannelState::Closing {
            posted_seq: posted.seq,
            poster,
            deadline_micros,
        };
        self.total_onchain_txs += 1;
        Ok(())
    }

    /// Challenge a pending forced close with a strictly newer co-signed
    /// state (submitted before the deadline). If the challenged poster
    /// lied (posted stale state), their entire balance is forfeited to
    /// the challenger — the Lightning penalty.
    pub fn challenge(
        &mut self,
        id: ChannelId,
        newer: &ChannelUpdate,
        now_micros: u64,
    ) -> Result<Settlement, ChannelError> {
        let channel = self
            .channels
            .get_mut(&id)
            .ok_or(ChannelError::UnknownChannel)?;
        let ChannelState::Closing {
            posted_seq,
            poster,
            deadline_micros,
        } = channel.state
        else {
            return Err(ChannelError::NoPendingClose);
        };
        if now_micros > deadline_micros {
            return Err(ChannelError::ChallengeExpired);
        }
        if newer.seq <= posted_seq {
            return Err(ChannelError::StaleSequence);
        }
        let digest = update_digest(newer.channel, newer.seq, newer.balance_a, newer.balance_b);
        if !newer.sig_a.verify(&digest, &channel.key_a)
            || !newer.sig_b.verify(&digest, &channel.key_b)
        {
            return Err(ChannelError::BadSignature);
        }
        // Cheat proven: everything goes to the wronged party.
        let capacity = channel.capacity();
        let (payout_a, payout_b) = if poster == channel.party_a {
            (0, capacity)
        } else {
            (capacity, 0)
        };
        channel.balance_a = payout_a;
        channel.balance_b = payout_b;
        channel.state = ChannelState::Closed;
        self.total_onchain_txs += 1;
        Ok(Settlement {
            channel: id,
            payout_a: (channel.party_a, payout_a),
            payout_b: (channel.party_b, payout_b),
            onchain_txs: 3, // open + forced close + challenge
        })
    }

    /// Finalises an unchallenged forced close after its deadline.
    pub fn finalise_forced(
        &mut self,
        id: ChannelId,
        now_micros: u64,
    ) -> Result<Settlement, ChannelError> {
        let channel = self
            .channels
            .get_mut(&id)
            .ok_or(ChannelError::UnknownChannel)?;
        let ChannelState::Closing {
            deadline_micros, ..
        } = channel.state
        else {
            return Err(ChannelError::NoPendingClose);
        };
        if now_micros <= deadline_micros {
            return Err(ChannelError::ChallengeExpired);
        }
        channel.state = ChannelState::Closed;
        Ok(Settlement {
            channel: id,
            payout_a: (channel.party_a, channel.balance_a),
            payout_b: (channel.party_b, channel.balance_b),
            onchain_txs: 2,
        })
    }

    /// Finds a multi-hop route from `from` to `to` whose every hop can
    /// forward `amount` (BFS over channels with sufficient directional
    /// capacity).
    pub fn find_route(
        &self,
        from: Address,
        to: Address,
        amount: u64,
    ) -> Result<Vec<ChannelId>, ChannelError> {
        if from == to {
            return Ok(Vec::new());
        }
        let mut visited: BTreeSet<Address> = BTreeSet::from([from]);
        let mut queue: VecDeque<(Address, Vec<ChannelId>)> = VecDeque::from([(from, Vec::new())]);
        while let Some((here, path)) = queue.pop_front() {
            for id in self.by_party.get(&here).into_iter().flatten() {
                let channel = &self.channels[id];
                if channel.state != ChannelState::Open {
                    continue;
                }
                let Some(balance) = channel.balance_of(&here) else {
                    continue;
                };
                if balance < amount {
                    continue; // can't forward through this hop
                }
                let next = if channel.party_a == here {
                    channel.party_b
                } else {
                    channel.party_a
                };
                if !visited.insert(next) {
                    continue;
                }
                let mut next_path = path.clone();
                next_path.push(*id);
                if next == to {
                    return Ok(next_path);
                }
                queue.push_back((next, next_path));
            }
        }
        Err(ChannelError::NoRoute)
    }

    /// Shifts `amount` along a route (used by the routed-payment
    /// helper after both endpoints co-sign each hop's update). This
    /// low-level method adjusts balances directly and counts one
    /// off-chain update per hop; signature-verified updates go through
    /// [`ChannelNetwork::apply_update`].
    pub fn route_payment(
        &mut self,
        from: Address,
        route: &[ChannelId],
        amount: u64,
    ) -> Result<(), ChannelError> {
        // Validate first (atomicity).
        let mut payer = from;
        for id in route {
            let channel = self.channels.get(id).ok_or(ChannelError::UnknownChannel)?;
            if channel.state != ChannelState::Open {
                return Err(ChannelError::NotOpen);
            }
            let balance = channel.balance_of(&payer).ok_or(ChannelError::NotAParty)?;
            if balance < amount {
                return Err(ChannelError::InsufficientBalance);
            }
            payer = if channel.party_a == payer {
                channel.party_b
            } else {
                channel.party_a
            };
        }
        // Commit.
        let mut payer = from;
        for id in route {
            let channel = self.channels.get_mut(id).expect("validated");
            if channel.party_a == payer {
                channel.balance_a -= amount;
                channel.balance_b += amount;
                payer = channel.party_b;
            } else {
                channel.balance_b -= amount;
                channel.balance_a += amount;
                payer = channel.party_a;
            }
            channel.seq += 1;
            channel.update_count += 1;
            self.total_updates += 1;
        }
        Ok(())
    }
}

/// A convenience two-party channel driver that holds both keypairs and
/// co-signs updates — what tests, examples and the `e12` experiment use
/// to generate realistic signed traffic.
pub struct ChannelPair {
    /// The network the channel lives in.
    pub id: ChannelId,
    key_a: Keypair,
    key_b: Keypair,
    balance_a: u64,
    balance_b: u64,
    seq: u64,
}

impl ChannelPair {
    /// Opens a channel between two fresh identities with the default
    /// signature capacity (2¹⁰ = 1024 co-signed updates).
    pub fn open(network: &mut ChannelNetwork, seed: u64, deposit_a: u64, deposit_b: u64) -> Self {
        Self::open_with_capacity(network, seed, deposit_a, deposit_b, 10)
    }

    /// Opens a channel whose keys can co-sign up to `2^key_height`
    /// updates (key generation cost grows with the capacity).
    pub fn open_with_capacity(
        network: &mut ChannelNetwork,
        seed: u64,
        deposit_a: u64,
        deposit_b: u64,
        key_height: u32,
    ) -> Self {
        let mut seed_a = [0u8; 32];
        seed_a[..8].copy_from_slice(&seed.to_be_bytes());
        let mut seed_b = seed_a;
        seed_b[31] = 1;
        let key_a = Keypair::mss_from_seed(seed_a, key_height);
        let key_b = Keypair::mss_from_seed(seed_b, key_height);
        let id = network.open(
            key_a.address(),
            key_a.public_key(),
            deposit_a,
            key_b.address(),
            key_b.public_key(),
            deposit_b,
        );
        ChannelPair {
            id,
            key_a,
            key_b,
            balance_a: deposit_a,
            balance_b: deposit_b,
            seq: 0,
        }
    }

    /// Party A's address.
    pub fn party_a(&self) -> Address {
        self.key_a.address()
    }

    /// Party B's address.
    pub fn party_b(&self) -> Address {
        self.key_b.address()
    }

    /// Co-signs a payment of `amount` from A to B (negative direction
    /// via `pay_b_to_a`), returning the signed update.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InsufficientBalance`] if A lacks funds.
    pub fn pay_a_to_b(&mut self, amount: u64) -> Result<ChannelUpdate, ChannelError> {
        if self.balance_a < amount {
            return Err(ChannelError::InsufficientBalance);
        }
        self.balance_a -= amount;
        self.balance_b += amount;
        self.seq += 1;
        Ok(self.sign_current())
    }

    /// Co-signs a payment of `amount` from B to A.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InsufficientBalance`] if B lacks funds.
    pub fn pay_b_to_a(&mut self, amount: u64) -> Result<ChannelUpdate, ChannelError> {
        if self.balance_b < amount {
            return Err(ChannelError::InsufficientBalance);
        }
        self.balance_b -= amount;
        self.balance_a += amount;
        self.seq += 1;
        Ok(self.sign_current())
    }

    fn sign_current(&mut self) -> ChannelUpdate {
        let digest = update_digest(self.id, self.seq, self.balance_a, self.balance_b);
        ChannelUpdate {
            channel: self.id,
            seq: self.seq,
            balance_a: self.balance_a,
            balance_b: self.balance_b,
            sig_a: self
                .key_a
                .sign(&digest)
                .expect("key capacity sized for test traffic"),
            sig_b: self
                .key_b
                .sign(&digest)
                .expect("key capacity sized for test traffic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(net: &mut ChannelNetwork) -> ChannelPair {
        ChannelPair::open(net, 42, 100, 50)
    }

    #[test]
    fn open_locks_deposits_and_costs_one_onchain_tx() {
        let mut net = ChannelNetwork::new();
        let p = pair(&mut net);
        let channel = net.channel(p.id).unwrap();
        assert_eq!(channel.capacity(), 150);
        assert_eq!(channel.balance_a, 100);
        assert_eq!(channel.balance_b, 50);
        assert_eq!(net.total_onchain_txs, 1);
    }

    #[test]
    fn signed_updates_move_balance_off_chain() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        for _ in 0..10 {
            let update = p.pay_a_to_b(5).unwrap();
            net.apply_update(&update).unwrap();
        }
        let channel = net.channel(p.id).unwrap();
        assert_eq!(channel.balance_a, 50);
        assert_eq!(channel.balance_b, 100);
        assert_eq!(net.total_updates, 10);
        // Zero extra on-chain transactions.
        assert_eq!(net.total_onchain_txs, 1);
    }

    #[test]
    fn stale_update_rejected() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        let u1 = p.pay_a_to_b(5).unwrap();
        let u2 = p.pay_a_to_b(5).unwrap();
        net.apply_update(&u2).unwrap();
        assert_eq!(net.apply_update(&u1), Err(ChannelError::StaleSequence));
    }

    #[test]
    fn forged_update_rejected() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        let mut update = p.pay_a_to_b(5).unwrap();
        update.balance_b += 10;
        update.balance_a -= 10;
        assert_eq!(net.apply_update(&update), Err(ChannelError::BadSignature));
    }

    #[test]
    fn capacity_change_rejected() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        let mut update = p.pay_a_to_b(5).unwrap();
        update.balance_b += 1_000; // print money
        assert!(matches!(
            net.apply_update(&update),
            Err(ChannelError::BalanceMismatch)
        ));
    }

    #[test]
    fn cooperative_close_settles_current_state() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        net.apply_update(&p.pay_a_to_b(30).unwrap()).unwrap();
        let settlement = net.close_cooperative(p.id).unwrap();
        assert_eq!(settlement.payout_a.1, 70);
        assert_eq!(settlement.payout_b.1, 80);
        assert_eq!(settlement.onchain_txs, 2);
        assert_eq!(net.total_onchain_txs, 2);
        // Closed channel accepts nothing further.
        let update = p.pay_a_to_b(1).unwrap();
        assert_eq!(net.apply_update(&update), Err(ChannelError::NotOpen));
    }

    #[test]
    fn honest_forced_close_finalises_after_window() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        let latest = p.pay_a_to_b(20).unwrap();
        net.apply_update(&latest).unwrap();
        net.close_forced(p.id, p.party_a(), &latest, 1_000).unwrap();
        // Too early to finalise.
        assert_eq!(
            net.finalise_forced(p.id, 500),
            Err(ChannelError::ChallengeExpired)
        );
        let settlement = net.finalise_forced(p.id, 2_000).unwrap();
        assert_eq!(settlement.payout_a.1, 80);
        assert_eq!(settlement.payout_b.1, 70);
    }

    #[test]
    fn cheating_with_stale_state_forfeits_everything() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        let stale = p.pay_a_to_b(10).unwrap(); // A:90 B:60
        net.apply_update(&stale).unwrap();
        let latest = p.pay_a_to_b(50).unwrap(); // A:40 B:110
        net.apply_update(&latest).unwrap();
        // A posts the stale (better-for-A) state.
        net.close_forced(p.id, p.party_a(), &stale, 1_000).unwrap();
        // B challenges with the newer state before the deadline.
        let settlement = net.challenge(p.id, &latest, 500).unwrap();
        assert_eq!(settlement.payout_a.1, 0, "cheater forfeits");
        assert_eq!(settlement.payout_b.1, 150, "victim takes capacity");
    }

    #[test]
    fn late_challenge_rejected() {
        let mut net = ChannelNetwork::new();
        let mut p = pair(&mut net);
        let stale = p.pay_a_to_b(10).unwrap();
        net.apply_update(&stale).unwrap();
        let latest = p.pay_a_to_b(50).unwrap();
        net.apply_update(&latest).unwrap();
        net.close_forced(p.id, p.party_a(), &stale, 1_000).unwrap();
        assert_eq!(
            net.challenge(p.id, &latest, 5_000),
            Err(ChannelError::ChallengeExpired)
        );
    }

    #[test]
    fn routing_finds_multi_hop_path() {
        let mut net = ChannelNetwork::new();
        let a = Address::from_label("a");
        let b = Address::from_label("b");
        let c = Address::from_label("c");
        let d = Address::from_label("d");
        let key = PublicKey::default();
        let ab = net.open(a, key, 100, b, key, 100);
        let bc = net.open(b, key, 100, c, key, 100);
        let cd = net.open(c, key, 100, d, key, 100);
        let route = net.find_route(a, d, 50).unwrap();
        assert_eq!(route, vec![ab, bc, cd]);
        net.route_payment(a, &route, 50).unwrap();
        assert_eq!(net.channel(ab).unwrap().balance_a, 50);
        assert_eq!(net.channel(cd).unwrap().balance_of(&d), Some(150));
        assert_eq!(net.total_updates, 3);
    }

    #[test]
    fn routing_respects_capacity() {
        let mut net = ChannelNetwork::new();
        let a = Address::from_label("a");
        let b = Address::from_label("b");
        let c = Address::from_label("c");
        let key = PublicKey::default();
        net.open(a, key, 100, b, key, 0);
        net.open(b, key, 10, c, key, 0); // bottleneck: b can forward ≤10
        assert_eq!(net.find_route(a, c, 50), Err(ChannelError::NoRoute));
        assert!(net.find_route(a, c, 10).is_ok());
    }

    #[test]
    fn routing_around_a_depleted_channel() {
        let mut net = ChannelNetwork::new();
        let a = Address::from_label("a");
        let b = Address::from_label("b");
        let c = Address::from_label("c");
        let key = PublicKey::default();
        let _ab_dead = net.open(a, key, 0, b, key, 100); // a has nothing here
        let ac = net.open(a, key, 100, c, key, 0);
        let cb = net.open(c, key, 100, b, key, 0);
        let route = net.find_route(a, b, 40).unwrap();
        assert_eq!(route, vec![ac, cb]);
    }

    #[test]
    fn self_route_is_empty() {
        let net = ChannelNetwork::new();
        let a = Address::from_label("a");
        assert_eq!(net.find_route(a, a, 10), Ok(Vec::new()));
    }

    #[test]
    fn off_chain_volume_vs_onchain_cost() {
        // The §VI-A payoff: thousands of payments, two on-chain txs.
        let mut net = ChannelNetwork::new();
        let mut p = ChannelPair::open(&mut net, 7, 1_000, 0);
        for _ in 0..500 {
            let update = p.pay_a_to_b(1).unwrap();
            net.apply_update(&update).unwrap();
        }
        let settlement = net.close_cooperative(p.id).unwrap();
        assert_eq!(net.total_updates, 500);
        assert_eq!(settlement.onchain_txs, 2);
        assert_eq!(settlement.payout_b.1, 500);
    }
}
