//! A Plasma-style nested chain (paper §VI-A).
//!
//! "The framework creates a nested blockchain structure … Only Merkle
//! roots created in the sidechains are periodically broadcasted to the
//! main network during non-faulty states allowing scalable
//! transactions. For faulty states, stakeholders need to display proof
//! of fraud and the Byzantine node gets penalized."
//!
//! The model: an *operator* runs a child chain with its own account
//! balances. Users deposit from the root chain, transact at child-chain
//! speed, and the operator periodically commits only the Merkle root of
//! each child block to the root chain (one root-chain transaction per
//! child block, regardless of how many transfers it carries).
//!
//! If the operator commits a block containing an invalid transaction,
//! any stakeholder holding the block data can submit a **fraud proof**:
//! the Merkle inclusion proof of the offending transaction against the
//! *committed* root, which the root chain re-checks against the last
//! verified state. A proven fraud slashes the operator's bond and halts
//! the child chain so users exit with the last verified balances.

use std::collections::BTreeMap;

use dlt_crypto::keys::Address;
use dlt_crypto::merkle::{MerkleProof, MerkleTree};
use dlt_crypto::sha256::Sha256;
use dlt_crypto::Digest;

/// A child-chain transfer (identity-level authentication, as with
/// votes: signatures add nothing to the measured §VI behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildTx {
    /// Paying account.
    pub from: Address,
    /// Receiving account.
    pub to: Address,
    /// Transferred amount.
    pub amount: u64,
    /// Sender-chosen unique tag (prevents identical-tx hash collisions).
    pub tag: u64,
}

impl ChildTx {
    /// The transaction hash (a Merkle leaf of its child block).
    pub fn id(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"plasma-tx");
        h.update(self.from.0.as_bytes());
        h.update(self.to.0.as_bytes());
        h.update(&self.amount.to_be_bytes());
        h.update(&self.tag.to_be_bytes());
        h.finalize()
    }
}

/// A root-chain commitment: the Merkle root of one child block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commitment {
    /// Child-chain height of the committed block.
    pub child_height: u64,
    /// Merkle root over the block's transaction ids.
    pub root: Digest,
}

/// Errors from child-chain operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlasmaError {
    /// Sender cannot cover the transfer.
    InsufficientBalance,
    /// The chain is halted after proven fraud.
    Halted,
    /// The fraud proof's Merkle path doesn't match the commitment.
    BadProof,
    /// The referenced commitment doesn't exist.
    UnknownCommitment,
    /// The transaction in the proof is actually valid — no fraud.
    NotFraud,
    /// Exit for an account with no balance.
    NothingToExit,
}

impl std::fmt::Display for PlasmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            PlasmaError::InsufficientBalance => "insufficient child-chain balance",
            PlasmaError::Halted => "child chain is halted after fraud",
            PlasmaError::BadProof => "fraud proof does not match commitment",
            PlasmaError::UnknownCommitment => "unknown commitment",
            PlasmaError::NotFraud => "transaction is valid; no fraud",
            PlasmaError::NothingToExit => "no balance to exit",
        };
        f.write_str(text)
    }
}

impl std::error::Error for PlasmaError {}

/// The operator's child chain plus the root-chain contract state.
#[derive(Debug)]
pub struct PlasmaChain {
    /// The operator's slashable bond held by the root-chain contract.
    operator_bond: u64,
    /// Whether fraud has been proven (chain halted, exits only).
    halted: bool,
    /// Committed child blocks (block data kept by stakeholders).
    blocks: Vec<Vec<ChildTx>>,
    /// The root-chain contract's record: one commitment per block.
    commitments: Vec<Commitment>,
    /// Balance snapshots *after* each verified block (index 0 = after
    /// deposits, before block 0). Snapshots are what exits use.
    snapshots: Vec<BTreeMap<Address, u64>>,
    /// Live child-chain balances.
    balances: BTreeMap<Address, u64>,
    /// Pending (unconfirmed) child transactions.
    pending: Vec<ChildTx>,
    /// Root-chain transactions consumed (deposits + commitments +
    /// exits + fraud proofs) — the §VI-A scalability metric.
    pub root_chain_txs: u64,
    tag_seq: u64,
}

impl PlasmaChain {
    /// Deploys a child chain whose operator posts `bond` on the root
    /// chain.
    pub fn new(bond: u64) -> Self {
        PlasmaChain {
            operator_bond: bond,
            halted: false,
            blocks: Vec::new(),
            commitments: Vec::new(),
            snapshots: vec![BTreeMap::new()],
            balances: BTreeMap::new(),
            pending: Vec::new(),
            root_chain_txs: 1, // the deployment/bond tx
            tag_seq: 0,
        }
    }

    /// The operator's remaining bond.
    pub fn operator_bond(&self) -> u64 {
        self.operator_bond
    }

    /// Whether the chain has been halted by a fraud proof.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// A user's live child-chain balance.
    pub fn balance(&self, account: &Address) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Child blocks committed so far.
    pub fn committed_blocks(&self) -> usize {
        self.commitments.len()
    }

    /// Deposits from the root chain (one root-chain transaction).
    pub fn deposit(&mut self, account: Address, amount: u64) -> Result<(), PlasmaError> {
        if self.halted {
            return Err(PlasmaError::Halted);
        }
        *self.balances.entry(account).or_insert(0) += amount;
        // Deposits between blocks amend the latest snapshot (they are
        // root-chain facts, not operator claims).
        *self
            .snapshots
            .last_mut()
            .expect("snapshot 0 exists")
            .entry(account)
            .or_insert(0) += amount;
        self.root_chain_txs += 1;
        Ok(())
    }

    /// Submits a transfer to the operator's pending set.
    pub fn submit(
        &mut self,
        from: Address,
        to: Address,
        amount: u64,
    ) -> Result<Digest, PlasmaError> {
        if self.halted {
            return Err(PlasmaError::Halted);
        }
        if self.balance(&from) < amount {
            return Err(PlasmaError::InsufficientBalance);
        }
        // Reserve immediately so pending transactions cannot conflict.
        *self.balances.get_mut(&from).expect("checked") -= amount;
        *self.balances.entry(to).or_insert(0) += amount;
        let tx = ChildTx {
            from,
            to,
            amount,
            tag: self.tag_seq,
        };
        self.tag_seq += 1;
        self.pending.push(tx);
        Ok(tx.id())
    }

    /// The operator seals pending transactions into a child block and
    /// commits only its Merkle root to the root chain (one root-chain
    /// transaction for the whole block).
    pub fn commit_block(&mut self) -> Result<Commitment, PlasmaError> {
        if self.halted {
            return Err(PlasmaError::Halted);
        }
        let txs = std::mem::take(&mut self.pending);
        self.commit_raw(txs)
    }

    /// A Byzantine operator commits a block containing arbitrary
    /// transactions without validation — the "faulty state" of §VI-A,
    /// exposed for tests and experiments.
    pub fn commit_block_byzantine(&mut self, txs: Vec<ChildTx>) -> Result<Commitment, PlasmaError> {
        if self.halted {
            return Err(PlasmaError::Halted);
        }
        self.commit_raw(txs)
    }

    fn commit_raw(&mut self, txs: Vec<ChildTx>) -> Result<Commitment, PlasmaError> {
        let leaves: Vec<Digest> = txs.iter().map(ChildTx::id).collect();
        let root = MerkleTree::from_leaves(leaves).root();
        let commitment = Commitment {
            child_height: self.blocks.len() as u64,
            root,
        };
        // Snapshot = previous snapshot replayed with this block's txs
        // (invalid txs simply don't transfer in the *verified* replay —
        // the root chain can't see them until someone proves fraud).
        let mut snapshot = self.snapshots.last().expect("exists").clone();
        for tx in &txs {
            let from_balance = snapshot.get(&tx.from).copied().unwrap_or(0);
            if from_balance >= tx.amount {
                *snapshot.entry(tx.from).or_insert(0) -= tx.amount;
                *snapshot.entry(tx.to).or_insert(0) += tx.amount;
            }
        }
        self.snapshots.push(snapshot);
        self.blocks.push(txs);
        self.commitments.push(commitment);
        self.root_chain_txs += 1;
        Ok(commitment)
    }

    /// Builds the fraud proof for transaction `tx_index` of committed
    /// block `child_height` — any stakeholder holding the block data
    /// can do this.
    pub fn build_fraud_proof(
        &self,
        child_height: u64,
        tx_index: usize,
    ) -> Option<(ChildTx, MerkleProof)> {
        let txs = self.blocks.get(child_height as usize)?;
        let tx = *txs.get(tx_index)?;
        let leaves: Vec<Digest> = txs.iter().map(ChildTx::id).collect();
        let proof = MerkleTree::from_leaves(leaves).prove(tx_index)?;
        Some((tx, proof))
    }

    /// The root-chain contract checks a fraud proof: the transaction
    /// must be committed under the block's root **and** be invalid
    /// against the pre-block verified state. Proven fraud slashes the
    /// operator's bond to the challenger and halts the chain.
    ///
    /// Returns the slashed amount.
    pub fn prove_fraud(
        &mut self,
        child_height: u64,
        tx: ChildTx,
        proof: &MerkleProof,
    ) -> Result<u64, PlasmaError> {
        let commitment = self
            .commitments
            .get(child_height as usize)
            .ok_or(PlasmaError::UnknownCommitment)?;
        if !proof.verify(&commitment.root, &tx.id()) {
            return Err(PlasmaError::BadProof);
        }
        // Replay the committed block prefix over the pre-block snapshot
        // to find the sender's balance at the tx's position.
        let mut state = self.snapshots[child_height as usize].clone();
        let block = &self.blocks[child_height as usize];
        for (i, prior) in block.iter().enumerate() {
            if i == proof.index {
                break;
            }
            let from_balance = state.get(&prior.from).copied().unwrap_or(0);
            if from_balance >= prior.amount {
                *state.entry(prior.from).or_insert(0) -= prior.amount;
                *state.entry(prior.to).or_insert(0) += prior.amount;
            }
        }
        let sender_balance = state.get(&tx.from).copied().unwrap_or(0);
        if sender_balance >= tx.amount {
            return Err(PlasmaError::NotFraud);
        }
        self.root_chain_txs += 1;
        self.halted = true;
        let slashed = self.operator_bond;
        self.operator_bond = 0;
        Ok(slashed)
    }

    /// Exits an account to the root chain with its balance from the
    /// last *verified* snapshot (one root-chain transaction). On a
    /// halted chain this is the recovery path.
    pub fn exit(&mut self, account: Address) -> Result<u64, PlasmaError> {
        let snapshot = self.snapshots.last_mut().expect("exists");
        let balance = snapshot.remove(&account).unwrap_or(0);
        if balance == 0 {
            return Err(PlasmaError::NothingToExit);
        }
        self.balances.remove(&account);
        self.root_chain_txs += 1;
        Ok(balance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(label: &str) -> Address {
        Address::from_label(label)
    }

    #[test]
    fn deposits_transfers_and_commitments() {
        let mut plasma = PlasmaChain::new(1_000);
        plasma.deposit(user("alice"), 500).unwrap();
        plasma.deposit(user("bob"), 100).unwrap();
        for _ in 0..50 {
            plasma.submit(user("alice"), user("bob"), 2).unwrap();
        }
        let commitment = plasma.commit_block().unwrap();
        assert_eq!(commitment.child_height, 0);
        assert_eq!(plasma.balance(&user("alice")), 400);
        assert_eq!(plasma.balance(&user("bob")), 200);
        // 50 transfers cost exactly one root-chain commitment.
        // root txs: deploy + 2 deposits + 1 commitment.
        assert_eq!(plasma.root_chain_txs, 4);
    }

    #[test]
    fn scaling_ratio_grows_with_block_size() {
        let mut plasma = PlasmaChain::new(1_000);
        plasma.deposit(user("a"), 100_000).unwrap();
        let mut child_txs = 0u64;
        for _ in 0..10 {
            for _ in 0..200 {
                plasma.submit(user("a"), user("b"), 1).unwrap();
                child_txs += 1;
            }
            plasma.commit_block().unwrap();
        }
        // 2000 child transfers, 10 commitments (+deploy+deposit).
        assert_eq!(child_txs, 2_000);
        assert_eq!(plasma.root_chain_txs, 1 + 1 + 10);
        assert!(child_txs / plasma.root_chain_txs >= 150);
    }

    #[test]
    fn overspend_rejected_by_honest_operator() {
        let mut plasma = PlasmaChain::new(1_000);
        plasma.deposit(user("a"), 10).unwrap();
        assert_eq!(
            plasma.submit(user("a"), user("b"), 11),
            Err(PlasmaError::InsufficientBalance)
        );
    }

    #[test]
    fn fraud_proof_slashes_byzantine_operator() {
        let mut plasma = PlasmaChain::new(5_000);
        plasma.deposit(user("victim"), 100).unwrap();
        // The operator invents a transfer spending money the attacker
        // never had.
        let forged = ChildTx {
            from: user("nobody"),
            to: user("operator-friend"),
            amount: 1_000_000,
            tag: 999,
        };
        let honest = ChildTx {
            from: user("victim"),
            to: user("shop"),
            amount: 50,
            tag: 1,
        };
        plasma.commit_block_byzantine(vec![honest, forged]).unwrap();

        // Any stakeholder with the block data proves the fraud.
        let (tx, proof) = plasma.build_fraud_proof(0, 1).unwrap();
        assert_eq!(tx, forged);
        let slashed = plasma.prove_fraud(0, tx, &proof).unwrap();
        assert_eq!(slashed, 5_000);
        assert!(plasma.is_halted());
        assert_eq!(plasma.operator_bond(), 0);

        // Users exit with verified balances: the honest tx executed
        // (victim 100 -> 50 + shop 50); the forged one never could.
        assert_eq!(plasma.exit(user("victim")).unwrap(), 50);
        assert_eq!(plasma.exit(user("shop")).unwrap(), 50);
        assert_eq!(
            plasma.exit(user("operator-friend")),
            Err(PlasmaError::NothingToExit)
        );
        // Halted chain accepts nothing new.
        assert_eq!(plasma.deposit(user("x"), 1), Err(PlasmaError::Halted));
    }

    #[test]
    fn valid_tx_is_not_fraud() {
        let mut plasma = PlasmaChain::new(1_000);
        plasma.deposit(user("a"), 100).unwrap();
        plasma.submit(user("a"), user("b"), 10).unwrap();
        plasma.commit_block().unwrap();
        let (tx, proof) = plasma.build_fraud_proof(0, 0).unwrap();
        assert_eq!(
            plasma.prove_fraud(0, tx, &proof),
            Err(PlasmaError::NotFraud)
        );
        assert!(!plasma.is_halted());
        assert_eq!(plasma.operator_bond(), 1_000);
    }

    #[test]
    fn mismatched_proof_rejected() {
        let mut plasma = PlasmaChain::new(1_000);
        plasma.deposit(user("a"), 100).unwrap();
        plasma.submit(user("a"), user("b"), 10).unwrap();
        plasma.commit_block().unwrap();
        let (_, proof) = plasma.build_fraud_proof(0, 0).unwrap();
        // Claim a different tx under the same proof.
        let fake = ChildTx {
            from: user("nobody"),
            to: user("b"),
            amount: 1,
            tag: 7,
        };
        assert_eq!(
            plasma.prove_fraud(0, fake, &proof),
            Err(PlasmaError::BadProof)
        );
    }

    #[test]
    fn exit_mid_operation() {
        let mut plasma = PlasmaChain::new(1_000);
        plasma.deposit(user("a"), 100).unwrap();
        plasma.submit(user("a"), user("b"), 40).unwrap();
        plasma.commit_block().unwrap();
        // Exits use the verified snapshot after the committed block.
        assert_eq!(plasma.exit(user("b")).unwrap(), 40);
        assert_eq!(plasma.exit(user("a")).unwrap(), 60);
    }
}
