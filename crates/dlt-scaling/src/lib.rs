//! Scalability extensions of `dlt-compare` (paper §VI-A).
//!
//! The paper surveys four blockchain scaling avenues: bigger blocks
//! (swept directly on the chain crates by experiment `e11`), off-chain
//! **channels** ("the Raiden Network on top of Ethereum or the
//! Lightning Network on top of Bitcoin"), hierarchical chains, and
//! **sharding**. This crate implements those that need machinery of
//! their own (plus the Plasma nested chain):
//!
//! * [`channels`] — bidirectional payment channels with signed balance
//!   updates, cooperative and forced closes, a challenge window, and
//!   cheat punishment; plus a channel-network graph with capacity-aware
//!   multi-hop routing.
//! * [`plasma`] — a Plasma-style nested chain: an operator commits
//!   only Merkle roots to the root chain, with fraud proofs slashing a
//!   Byzantine operator's bond.
//! * [`sharding`] — a K-shard network simulator with cross-shard
//!   traffic (two-phase: debit in the source shard, credit in the
//!   destination shard), measuring how throughput scales with K and
//!   degrades with the cross-shard fraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod plasma;
pub mod sharding;

pub use channels::{Channel, ChannelError, ChannelNetwork};
pub use sharding::{ShardedNetwork, ShardingParams};
