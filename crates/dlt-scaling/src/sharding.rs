//! A sharding simulator (paper §VI-A).
//!
//! "Sharding splits the network in K partitions, no longer forcing all
//! nodes in the network to process all incoming transactions. Every
//! shard k ∈ K, in its simplest form, has its own transaction history
//! … In a more complex scenario, cross shard communication is
//! available, meaning that … a transaction from k can trigger an event
//! in m."
//!
//! The model: each shard processes work at a fixed rate. A
//! single-shard transaction costs one work unit in its home shard; a
//! cross-shard transaction costs one unit in the source shard (debit +
//! outbound receipt) and then one unit in the destination shard
//! (credit), the standard two-phase scheme. Aggregate throughput
//! therefore scales with K but degrades with the cross-shard fraction
//! `f` as roughly `K·C / (1 + f)` — the curve experiment `e13`
//! reproduces.

use std::collections::VecDeque;

use dlt_sim::rng::SimRng;

/// Sharded-network parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShardingParams {
    /// Number of shards (K).
    pub shards: usize,
    /// Work units (transaction phases) each shard processes per second.
    pub per_shard_rate: f64,
    /// Fraction of transactions whose recipient lives on another shard.
    pub cross_shard_fraction: f64,
}

impl ShardingParams {
    /// The analytic throughput ceiling: `K·C / (1 + f)` completed
    /// transactions per second (each cross-shard tx consumes two of
    /// the network's work units).
    pub fn theoretical_tps(&self) -> f64 {
        self.shards as f64 * self.per_shard_rate / (1.0 + self.cross_shard_fraction)
    }
}

/// A transaction phase queued at a shard.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Local-only transaction: completes when processed.
    Local,
    /// First phase of a cross-shard transaction: forwards to `dest`.
    CrossDebit {
        /// Destination shard.
        dest: usize,
    },
    /// Second phase: completes when processed.
    CrossCredit,
}

#[derive(Debug, Default)]
struct Shard {
    queue: VecDeque<Phase>,
    /// Inbound second-phase credits; processed with priority so
    /// in-flight cross-shard transactions complete instead of starving
    /// behind a saturated debit backlog (production sharding designs
    /// prioritise inbound receipts the same way).
    inbound: VecDeque<Phase>,
    /// Fractional work-capacity carry-over between steps.
    credit: f64,
    processed_units: u64,
}

/// The K-shard network.
#[derive(Debug)]
pub struct ShardedNetwork {
    params: ShardingParams,
    shards: Vec<Shard>,
    completed: u64,
    submitted: u64,
}

impl ShardedNetwork {
    /// Creates the network.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, the rate is non-positive, or the
    /// cross-shard fraction is outside `[0, 1]`.
    pub fn new(params: ShardingParams) -> Self {
        assert!(params.shards > 0, "at least one shard");
        assert!(params.per_shard_rate > 0.0, "positive shard rate");
        assert!(
            (0.0..=1.0).contains(&params.cross_shard_fraction),
            "cross-shard fraction in [0, 1]"
        );
        ShardedNetwork {
            shards: (0..params.shards).map(|_| Shard::default()).collect(),
            params,
            completed: 0,
            submitted: 0,
        }
    }

    /// The configuration.
    pub fn params(&self) -> &ShardingParams {
        &self.params
    }

    /// Transactions fully completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Transactions submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Transactions still queued (any phase).
    pub fn backlog(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.queue.len() + s.inbound.len())
            .sum()
    }

    /// Submits `n` transactions with uniformly random home shards;
    /// each becomes cross-shard with the configured probability.
    pub fn submit(&mut self, n: u64, rng: &mut SimRng) {
        let k = self.params.shards;
        for _ in 0..n {
            let home = rng.below(k as u64) as usize;
            let phase = if k > 1 && rng.chance(self.params.cross_shard_fraction) {
                let mut dest = rng.below(k as u64 - 1) as usize;
                if dest >= home {
                    dest += 1;
                }
                Phase::CrossDebit { dest }
            } else {
                Phase::Local
            };
            self.shards[home].queue.push_back(phase);
            self.submitted += 1;
        }
    }

    /// Advances simulated time by `dt_secs`: each shard consumes queue
    /// entries up to its work budget; cross-shard debits hand their
    /// credit phase to the destination shard (visible from the *next*
    /// step, modelling the cross-shard message delay).
    pub fn step(&mut self, dt_secs: f64) {
        let mut handoffs: Vec<(usize, Phase)> = Vec::new();
        for shard in self.shards.iter_mut() {
            shard.credit += self.params.per_shard_rate * dt_secs;
            while shard.credit >= 1.0 {
                let Some(phase) = shard
                    .inbound
                    .pop_front()
                    .or_else(|| shard.queue.pop_front())
                else {
                    break;
                };
                shard.credit -= 1.0;
                shard.processed_units += 1;
                match phase {
                    Phase::Local | Phase::CrossCredit => self.completed += 1,
                    Phase::CrossDebit { dest } => handoffs.push((dest, Phase::CrossCredit)),
                }
            }
            // Idle shards don't bank unbounded credit.
            if shard.queue.is_empty() && shard.inbound.is_empty() {
                shard.credit = shard.credit.min(1.0);
            }
        }
        for (dest, phase) in handoffs {
            self.shards[dest].inbound.push_back(phase);
        }
    }

    /// Runs a saturating workload for `duration_secs` at `offered_tps`
    /// and returns the measured completed-transaction throughput.
    pub fn run_saturated(&mut self, offered_tps: f64, duration_secs: f64, rng: &mut SimRng) -> f64 {
        let dt = 0.1;
        let mut time = 0.0;
        let mut offered_accum = 0.0;
        while time < duration_secs {
            offered_accum += offered_tps * dt;
            let whole = offered_accum.floor() as u64;
            offered_accum -= whole as f64;
            self.submit(whole, rng);
            self.step(dt);
            time += dt;
        }
        self.completed as f64 / duration_secs
    }

    /// Work units processed per shard (load-balance diagnostics).
    pub fn processed_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.processed_units).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(shards: usize, rate: f64, f: f64) -> ShardingParams {
        ShardingParams {
            shards,
            per_shard_rate: rate,
            cross_shard_fraction: f,
        }
    }

    #[test]
    fn single_shard_processes_at_capacity() {
        let mut net = ShardedNetwork::new(params(1, 100.0, 0.0));
        let mut rng = SimRng::new(1);
        let tps = net.run_saturated(1_000.0, 10.0, &mut rng);
        assert!((tps - 100.0).abs() < 5.0, "tps {tps}");
        assert!(net.backlog() > 0, "saturated: backlog builds");
    }

    #[test]
    fn underload_completes_everything() {
        let mut net = ShardedNetwork::new(params(4, 100.0, 0.1));
        let mut rng = SimRng::new(2);
        net.submit(50, &mut rng);
        for _ in 0..100 {
            net.step(0.1);
        }
        assert_eq!(net.completed(), 50);
        assert_eq!(net.backlog(), 0);
    }

    #[test]
    fn throughput_scales_with_shard_count() {
        let mut rng = SimRng::new(3);
        let tps_1 =
            ShardedNetwork::new(params(1, 50.0, 0.0)).run_saturated(10_000.0, 10.0, &mut rng);
        let tps_4 =
            ShardedNetwork::new(params(4, 50.0, 0.0)).run_saturated(10_000.0, 10.0, &mut rng);
        let tps_16 =
            ShardedNetwork::new(params(16, 50.0, 0.0)).run_saturated(10_000.0, 10.0, &mut rng);
        assert!(tps_4 > tps_1 * 3.5, "4 shards ≈ 4x: {tps_4} vs {tps_1}");
        assert!(
            tps_16 > tps_4 * 3.5,
            "16 shards ≈ 4x of 4: {tps_16} vs {tps_4}"
        );
    }

    #[test]
    fn cross_shard_traffic_costs_throughput() {
        let mut rng = SimRng::new(4);
        let tps_f0 =
            ShardedNetwork::new(params(8, 50.0, 0.0)).run_saturated(10_000.0, 20.0, &mut rng);
        let tps_f30 =
            ShardedNetwork::new(params(8, 50.0, 0.3)).run_saturated(10_000.0, 20.0, &mut rng);
        let tps_f100 =
            ShardedNetwork::new(params(8, 50.0, 1.0)).run_saturated(10_000.0, 20.0, &mut rng);
        assert!(tps_f30 < tps_f0, "{tps_f30} < {tps_f0}");
        // f=1 halves throughput (every tx costs two units).
        assert!(
            (tps_f100 / tps_f0 - 0.5).abs() < 0.1,
            "f=1 ratio {}",
            tps_f100 / tps_f0
        );
    }

    #[test]
    fn measured_tracks_theoretical() {
        for (k, f) in [(2usize, 0.0), (4, 0.3), (8, 0.5)] {
            let p = params(k, 40.0, f);
            let mut rng = SimRng::new(5);
            let measured = ShardedNetwork::new(p).run_saturated(100_000.0, 20.0, &mut rng);
            let theory = p.theoretical_tps();
            assert!(
                (measured - theory).abs() / theory < 0.15,
                "k={k} f={f}: measured {measured} vs theory {theory}"
            );
        }
    }

    #[test]
    fn load_is_balanced_across_shards() {
        let mut net = ShardedNetwork::new(params(4, 100.0, 0.2));
        let mut rng = SimRng::new(6);
        net.run_saturated(1_000.0, 20.0, &mut rng);
        let per_shard = net.processed_per_shard();
        let max = *per_shard.iter().max().unwrap() as f64;
        let min = *per_shard.iter().min().unwrap() as f64;
        assert!(min / max > 0.8, "balanced: {per_shard:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedNetwork::new(params(0, 1.0, 0.0));
    }

    #[test]
    fn accounting_consistent() {
        let mut net = ShardedNetwork::new(params(2, 10.0, 0.5));
        let mut rng = SimRng::new(7);
        net.submit(100, &mut rng);
        for _ in 0..1000 {
            net.step(0.1);
        }
        assert_eq!(net.submitted(), 100);
        assert_eq!(net.completed(), 100);
        assert_eq!(net.backlog(), 0);
    }
}
