//! The determinism rule set (D1–D5), as token-level scans over the
//! masked code view.
//!
//! The scanners are deliberately simple: identifier-set collection plus
//! pattern matching, no type information. They over-approximate — e.g.
//! a local `Vec` shadowing the name of a hash-typed field is treated as
//! hash-typed — and rely on `// dlt-lint: allow(…)` for the rare
//! justified exception. See DESIGN.md §3c for the full contract.

use std::collections::BTreeSet;

use crate::{Finding, Rule};

/// Crates whose code is simulation-reachable: hash-order iteration
/// (D1) and unordered float accumulation (D4) are checked here.
pub const SIM_CRATES: [&str; 4] = ["dlt-sim", "dlt-blockchain", "dlt-dag", "dlt-scaling"];

/// The only file allowed to read the wall clock (the micro-bench
/// harness measures real elapsed time by definition).
pub const WALL_CLOCK_EXEMPT: &str = "crates/dlt-testkit/src/bench.rs";

/// The one sanctioned home of `std::thread`/`std::sync` in the
/// simulator: the epoch-barrier shard executor (checked by D6
/// everywhere else in the sim crates).
pub const THREAD_EXEMPT: &str = "crates/dlt-sim/src/shard.rs";

/// Engine-dispatch and interceptor hot paths checked for panic-freedom
/// (D5), as `(file suffix, function names)` pairs.
pub const HOT_PATHS: [(&str, &[&str]); 2] = [
    (
        "crates/dlt-sim/src/engine.rs",
        &["step", "send_from", "schedule"],
    ),
    ("crates/dlt-sim/src/fault.rs", &["intercept"]),
];

const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// `std::thread` / `std::sync` surface that breaks single-threaded
/// determinism when it leaks into sim-reachable code: spawning,
/// shared-state cells, locks, channels, and atomics. Matched as whole
/// identifiers, so `thread_local!` and `threads` do not trip it.
const THREAD_TOKENS: [&str; 12] = [
    "thread",
    "spawn",
    "JoinHandle",
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "mpsc",
    "Arc",
    "AtomicBool",
    "AtomicUsize",
    "AtomicU64",
];

const RNG_TOKENS: [&str; 7] = [
    "thread_rng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "RandomState",
    "getrandom",
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `word` occurrences with identifier boundaries on
/// both sides.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let end = pos + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// 1-based line number of a byte offset, via the precomputed line
/// start table.
fn line_of(line_starts: &[usize], offset: usize) -> usize {
    line_starts.partition_point(|&s| s <= offset)
}

fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// First line of the trailing `#[cfg(test)]` region, if any. Findings
/// at or below it are skipped: the workspace convention keeps test
/// modules at the end of the file, and test-only hash iteration cannot
/// leak into experiment output.
fn test_region_start(code: &str, starts: &[usize]) -> usize {
    code.find("#[cfg(test)]")
        .map_or(usize::MAX, |pos| line_of(starts, pos))
}

/// Whether `path` (workspace-relative) belongs to a simulation crate.
fn in_sim_crate(path: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// Reads the identifier that ends at `end` (exclusive), walking
/// backwards over identifier bytes.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        None
    } else {
        Some(&code[start..end])
    }
}

fn skip_ws_back(code: &str, mut i: usize) -> usize {
    let bytes = code.as_bytes();
    while i > 0 && (bytes[i - 1] as char).is_ascii_whitespace() {
        i -= 1;
    }
    i
}

fn skip_ws_fwd(code: &str, mut i: usize) -> usize {
    let bytes = code.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Names declared (or assigned) with a `HashMap`/`HashSet` type in
/// this file: `let` bindings, struct fields, and fn parameters.
pub fn hash_idents(code: &str) -> BTreeSet<String> {
    const BOUNDARIES: &[u8] = b";{}(),[]";
    let bytes = code.as_bytes();
    let mut idents = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for pos in word_positions(code, ty) {
            let stmt_start = bytes[..pos]
                .iter()
                .rposition(|b| BOUNDARIES.contains(b))
                .map_or(0, |i| i + 1);
            let segment = &code[stmt_start..pos];
            if let Some(name) = declared_name(segment) {
                idents.insert(name.to_string());
            }
        }
    }
    idents
}

/// The declared/assigned name in the statement text preceding a hash
/// type: the word before the last standalone `:` (field or `let` with
/// annotation, fn parameter), else the word before the first `=`
/// (un-annotated `let` or reassignment).
fn declared_name(segment: &str) -> Option<&str> {
    let bytes = segment.as_bytes();
    let mut colon = None;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b':' && bytes.get(i + 1) != Some(&b':') && (i == 0 || bytes[i - 1] != b':') {
            colon = Some(i);
        }
    }
    if let Some(c) = colon {
        return ident_ending_at(segment, skip_ws_back(segment, c));
    }
    let eq = bytes.iter().position(|&b| b == b'=')?;
    if eq + 1 < bytes.len() && bytes[eq + 1] == b'=' {
        return None;
    }
    if eq > 0 && b"=!<>+-*/&|^".contains(&bytes[eq - 1]) {
        return None;
    }
    ident_ending_at(segment, skip_ws_back(segment, eq))
}

/// D1: iteration over a hash-typed collection.
fn scan_d1(
    path: &str,
    code: &str,
    starts: &[usize],
    idents: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    // Method-call iteration: `ident.iter()`, `self.ident.keys()`, …
    for method in ITER_METHODS {
        for pos in word_positions(code, method) {
            let after = skip_ws_fwd(code, pos + method.len());
            if code.as_bytes().get(after) != Some(&b'(') {
                continue;
            }
            let dot = skip_ws_back(code, pos);
            if dot == 0 || code.as_bytes()[dot - 1] != b'.' {
                continue;
            }
            let recv_end = skip_ws_back(code, dot - 1);
            let Some(receiver) = ident_ending_at(code, recv_end) else {
                continue;
            };
            if idents.contains(receiver) {
                out.push(Finding::new(
                    path,
                    line_of(starts, pos),
                    Rule::D1,
                    format!("hash-order iteration `{receiver}.{method}()`"),
                ));
            }
        }
    }
    // `for pat in <hash ident>` loops.
    for pos in word_positions(code, "for") {
        let bytes = code.as_bytes();
        let after = skip_ws_fwd(code, pos + 3);
        if bytes.get(after) == Some(&b'<') {
            continue; // `for<'a>` higher-ranked bound
        }
        let Some(brace_rel) = code[pos..].find('{') else {
            continue;
        };
        let header = &code[pos..pos + brace_rel];
        let mut expr = None;
        for inp in word_positions(header, "in") {
            let mut depth = 0i32;
            for &b in &header.as_bytes()[..inp] {
                match b {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    _ => {}
                }
            }
            if depth == 0 {
                expr = Some(header[inp + 2..].trim());
                break;
            }
        }
        let Some(mut expr) = expr else { continue };
        expr = expr.trim_start_matches('&');
        expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
        let name = expr.strip_prefix("self.").unwrap_or(expr).trim();
        if !name.is_empty() && name.bytes().all(is_ident) && idents.contains(name) {
            out.push(Finding::new(
                path,
                line_of(starts, pos),
                Rule::D1,
                format!("hash-order iteration `for … in {expr}`"),
            ));
        }
    }
}

/// D2: wall-clock reads.
fn scan_d2(path: &str, code: &str, starts: &[usize], out: &mut Vec<Finding>) {
    for token in ["Instant", "SystemTime"] {
        for pos in word_positions(code, token) {
            out.push(Finding::new(
                path,
                line_of(starts, pos),
                Rule::D2,
                format!("wall-clock source `{token}`"),
            ));
        }
    }
}

/// D3: RNG construction outside the seeded SimRng/xoshiro path.
fn scan_d3(path: &str, code: &str, starts: &[usize], out: &mut Vec<Finding>) {
    for token in RNG_TOKENS {
        for pos in word_positions(code, token) {
            out.push(Finding::new(
                path,
                line_of(starts, pos),
                Rule::D3,
                format!("non-seeded randomness source `{token}`"),
            ));
        }
    }
}

/// D4: float accumulation over a hash-order iterator in the same
/// statement.
fn scan_d4(
    path: &str,
    code: &str,
    starts: &[usize],
    idents: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let bytes = code.as_bytes();
    let stmt_span = |pos: usize| -> &str {
        let start = bytes[..pos]
            .iter()
            .rposition(|&b| b == b';' || b == b'{' || b == b'}')
            .map_or(0, |i| i + 1);
        &code[start..pos]
    };
    let hash_iterated = |span: &str| -> Option<String> {
        for method in ITER_METHODS {
            for mpos in word_positions(span, method) {
                let dot = skip_ws_back(span, mpos);
                if dot == 0 || span.as_bytes()[dot - 1] != b'.' {
                    continue;
                }
                let recv_end = skip_ws_back(span, dot - 1);
                if let Some(receiver) = ident_ending_at(span, recv_end) {
                    if idents.contains(receiver) {
                        return Some(receiver.to_string());
                    }
                }
            }
        }
        None
    };
    for pos in word_positions(code, "sum") {
        let dot = skip_ws_back(code, pos);
        if dot == 0 || bytes[dot - 1] != b'.' {
            continue;
        }
        let rest = &code[pos + 3..];
        let turbofish = rest.trim_start();
        if !(turbofish.starts_with("::<f64>") || turbofish.starts_with("::<f32>")) {
            continue;
        }
        if let Some(receiver) = hash_iterated(stmt_span(pos)) {
            out.push(Finding::new(
                path,
                line_of(starts, pos),
                Rule::D4,
                format!("float accumulation over hash-order iterator of `{receiver}`"),
            ));
        }
    }
    for pos in word_positions(code, "fold") {
        let dot = skip_ws_back(code, pos);
        if dot == 0 || bytes[dot - 1] != b'.' {
            continue;
        }
        let open = skip_ws_fwd(code, pos + 4);
        if bytes.get(open) != Some(&b'(') {
            continue;
        }
        let first_arg_end = code[open..].find(',').map_or(code.len(), |c| open + c);
        let init = &code[open + 1..first_arg_end.min(code.len())];
        let floaty = init.contains("f64")
            || init.contains("f32")
            || init
                .trim()
                .trim_start_matches(|c: char| c.is_ascii_digit())
                .starts_with('.');
        if !floaty {
            continue;
        }
        if let Some(receiver) = hash_iterated(stmt_span(pos)) {
            out.push(Finding::new(
                path,
                line_of(starts, pos),
                Rule::D4,
                format!("float accumulation over hash-order iterator of `{receiver}`"),
            ));
        }
    }
}

/// D6: thread/shared-state primitives in sim-reachable code outside
/// the sanctioned shard executor.
fn scan_d6(path: &str, code: &str, starts: &[usize], out: &mut Vec<Finding>) {
    for token in THREAD_TOKENS {
        for pos in word_positions(code, token) {
            out.push(Finding::new(
                path,
                line_of(starts, pos),
                Rule::D6,
                format!("thread/shared-state primitive `{token}` outside dlt-sim::shard"),
            ));
        }
    }
}

/// Byte range of the body of `fn name` occurrences (all of them — e.g.
/// every `fn intercept` impl in the file).
fn fn_bodies(code: &str, name: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for pos in word_positions(code, name) {
        let kw_end = skip_ws_back(code, pos);
        let Some(kw) = ident_ending_at(code, kw_end) else {
            continue;
        };
        if kw != "fn" {
            continue;
        }
        let Some(open_rel) = code[pos..].find('{') else {
            continue;
        };
        let open = pos + open_rel;
        if code[pos..open].contains(';') {
            continue; // trait signature without a body
        }
        let mut depth = 0i32;
        for (i, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push((open, open + i));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// D5: panics and panicking operations in the hot-path functions.
fn scan_d5(path: &str, code: &str, starts: &[usize], out: &mut Vec<Finding>) {
    let fns: &[&str] = match HOT_PATHS.iter().find(|(suffix, _)| path.ends_with(suffix)) {
        Some((_, fns)) => fns,
        None => return,
    };
    let mut push = |pos: usize, what: String| {
        out.push(Finding::new(path, line_of(starts, pos), Rule::D5, what));
    };
    for name in fns {
        for (open, close) in fn_bodies(code, name) {
            let body = &code[open..close];
            for method in ["unwrap", "expect"] {
                for pos in word_positions(body, method) {
                    let dot = skip_ws_back(body, pos);
                    if dot > 0 && body.as_bytes()[dot - 1] == b'.' {
                        push(open + pos, format!("`.{method}` in hot path `{name}`"));
                    }
                }
            }
            for mac in ["panic", "unreachable", "todo", "unimplemented"] {
                for pos in word_positions(body, mac) {
                    let after = skip_ws_fwd(body, pos + mac.len());
                    if body.as_bytes().get(after) == Some(&b'!') {
                        push(open + pos, format!("`{mac}!` in hot path `{name}`"));
                    }
                }
            }
            for (i, b) in body.bytes().enumerate() {
                if b != b'[' || i == 0 {
                    continue;
                }
                // Indexing: `[` directly after an identifier or a
                // closing `)`/`]`. Macro brackets (`vec![`) have `!`
                // before them, attributes have `#`, slice types and
                // array literals have punctuation.
                let p = body.as_bytes()[i - 1];
                if is_ident(p) || p == b')' || p == b']' {
                    push(open + i, format!("indexing in hot path `{name}`"));
                }
            }
        }
    }
}

/// Runs every applicable rule over one masked file. `idents` must come
/// from [`hash_idents`] on the same code view.
pub fn scan(path: &str, code: &str) -> Vec<Finding> {
    let starts = line_starts(code);
    let test_start = test_region_start(code, &starts);
    let idents = hash_idents(code);
    let mut out = Vec::new();
    if in_sim_crate(path) {
        scan_d1(path, code, &starts, &idents, &mut out);
        scan_d4(path, code, &starts, &idents, &mut out);
        if !path.ends_with(THREAD_EXEMPT) {
            scan_d6(path, code, &starts, &mut out);
        }
    }
    if !path.ends_with(WALL_CLOCK_EXEMPT) {
        scan_d2(path, code, &starts, &mut out);
    }
    scan_d3(path, code, &starts, &mut out);
    scan_d5(path, code, &starts, &mut out);
    out.retain(|f| f.line < test_start);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}
