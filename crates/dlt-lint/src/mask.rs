//! Source masking: splits a Rust source file into a *code view* and a
//! *comment view* of identical byte length (newlines preserved), so the
//! rule scanners can match tokens without being fooled by string
//! literals or comments, and the allow-directive parser can look at
//! comments without being fooled by strings that merely contain `//`.
//!
//! This is a token-level approximation, not a full lexer. Known
//! limitations (acceptable for this workspace, see DESIGN.md §3c):
//! non-ASCII `char` literals may be misclassified as lifetimes, and
//! block comments are blanked from *both* views (allow directives must
//! be line comments).

/// The two views of one source file. Both are exactly as long as the
/// input and keep every newline in place, so byte offsets and line
/// numbers are shared between them and the original.
pub struct Masked {
    /// Code with comment text and literal contents blanked to spaces.
    pub code: String,
    /// Line-comment text (including the `//`) with everything else
    /// blanked to spaces.
    pub comments: String,
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Detects a raw-string opener at `i` (one of `r"`, `r#…#"`, `br"`,
/// `br#…#"`). Returns `(hash_count, body_start)` when present.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<(u8, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u8;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
        if hashes == 255 {
            return None;
        }
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Whether the `'` at `i` opens a `char` literal (as opposed to a
/// lifetime). Heuristic: escaped (`'\…'`) or exactly one byte wide
/// (`'x'`).
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Masks `source` into the code and comment views.
pub fn mask(source: &str) -> Masked {
    let bytes = source.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut comments = Vec::with_capacity(bytes.len());
    let blank = |b: u8| if b == b'\n' { b'\n' } else { b' ' };

    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    code.push(b' ');
                    comments.push(b'/');
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    code.push(b' ');
                    comments.push(b' ');
                    i += 1;
                    code.push(b' ');
                    comments.push(b' ');
                } else if b == b'"' {
                    state = State::Str;
                    code.push(b' ');
                    comments.push(b' ');
                } else if (b == b'r' || b == b'b')
                    && (i == 0 || !is_ident(bytes[i - 1]))
                    && raw_string_open(bytes, i).is_some()
                {
                    let (hashes, body) = raw_string_open(bytes, i).unwrap();
                    for &o in &bytes[i..body] {
                        code.push(blank(o));
                        comments.push(blank(o));
                    }
                    i = body;
                    state = State::RawStr(hashes);
                    continue;
                } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                    // Byte literal `b'x'`: blank the prefix, let the
                    // quote be handled as a char literal.
                    code.push(b' ');
                    comments.push(b' ');
                } else if b == b'\'' && is_char_literal(bytes, i) {
                    state = State::CharLit;
                    code.push(b' ');
                    comments.push(b' ');
                } else {
                    code.push(b);
                    comments.push(blank(b));
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    code.push(b'\n');
                    comments.push(b'\n');
                } else {
                    code.push(blank(b));
                    comments.push(b);
                }
            }
            State::BlockComment(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    code.push(b' ');
                    comments.push(b' ');
                    i += 1;
                    code.push(b' ');
                    comments.push(b' ');
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push(b' ');
                    comments.push(b' ');
                    i += 1;
                    code.push(b' ');
                    comments.push(b' ');
                } else {
                    code.push(blank(b));
                    comments.push(blank(b));
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    code.push(blank(b));
                    comments.push(blank(b));
                    i += 1;
                    code.push(blank(bytes[i]));
                    comments.push(blank(bytes[i]));
                } else {
                    if b == b'"' {
                        state = State::Code;
                    }
                    code.push(blank(b));
                    comments.push(blank(b));
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let h = hashes as usize;
                    if bytes[i + 1..].len() >= h
                        && bytes[i + 1..i + 1 + h].iter().all(|&c| c == b'#')
                    {
                        for &o in &bytes[i..=i + h] {
                            code.push(blank(o));
                            comments.push(blank(o));
                        }
                        i += h + 1;
                        state = State::Code;
                        continue;
                    }
                }
                code.push(blank(b));
                comments.push(blank(b));
            }
            State::CharLit => {
                if b == b'\\' && i + 1 < bytes.len() {
                    code.push(blank(b));
                    comments.push(blank(b));
                    i += 1;
                    code.push(blank(bytes[i]));
                    comments.push(blank(bytes[i]));
                } else {
                    if b == b'\'' {
                        state = State::Code;
                    }
                    code.push(blank(b));
                    comments.push(blank(b));
                }
            }
        }
        i += 1;
    }

    Masked {
        code: String::from_utf8(code).expect("masking preserves UTF-8 validity"),
        comments: String::from_utf8(comments).expect("masking preserves UTF-8 validity"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_from_code() {
        let m = mask("let x = \"HashMap\"; // HashMap here\nlet y = 1;");
        assert!(!m.code.contains("HashMap"));
        assert!(m.code.contains("let x ="));
        assert!(m.code.contains("let y = 1;"));
        assert!(m.comments.contains("// HashMap here"));
        assert!(!m.comments.contains("let"));
    }

    #[test]
    fn views_keep_length_and_newlines() {
        let src = "a\n/* b\n c */ d\n\"e\nf\"\n";
        let m = mask(src);
        assert_eq!(m.code.len(), src.len());
        assert_eq!(m.comments.len(), src.len());
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(m.code.contains("<'a>"));
        assert!(m.code.contains("&'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let m = mask("let c = '\"'; let d = \"x\";");
        assert!(!m.code.contains('"'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = mask("let s = r#\"Instant::now // not code\"#; let t = 1;");
        assert!(!m.code.contains("Instant"));
        assert!(!m.comments.contains("not code"));
        assert!(m.code.contains("let t = 1;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let m = mask("/* a /* b */ c */ let z = 2;");
        assert!(!m.code.contains('a'));
        assert!(!m.code.contains('c'));
        assert!(m.code.contains("let z = 2;"));
    }
}
