//! `dlt-lint` — the workspace's determinism static-analysis pass.
//!
//! A dependency-free token-level scanner over the workspace's Rust
//! sources enforcing the determinism policy (DESIGN.md §3c, README
//! "Determinism policy"):
//!
//! * **D1** — `HashMap`/`HashSet` iteration in simulation-reachable
//!   crates. Hash iteration order is randomized per process; anything
//!   it feeds becomes run-dependent. Use `BTreeMap`/`BTreeSet` or
//!   collect-and-sort.
//! * **D2** — wall-clock sources (`Instant`, `SystemTime`) anywhere
//!   but the micro-bench harness. Simulated time comes from `SimTime`.
//! * **D3** — randomness not derived from the seeded SimRng/xoshiro
//!   path (`thread_rng`, `OsRng`, `RandomState`, …).
//! * **D4** — float accumulation (`.sum::<f64>()`, float `fold`) over
//!   a hash-order iterator: float addition is not associative, so the
//!   order of summation changes the result bits.
//! * **D5** — `unwrap`/`expect`/`panic!`/indexing in the engine
//!   dispatch and interceptor hot paths (panic-freedom of the sim
//!   loop).
//! * **D6** — `std::thread` / `std::sync` primitives (spawning, locks,
//!   channels, atomics) in simulation-reachable crates outside the
//!   sanctioned `dlt-sim::shard` executor. Thread scheduling is
//!   nondeterministic; cross-shard parallelism must go through the
//!   epoch-barrier executor, which is the one audited exception.
//!
//! Suppression is per-site and must be justified:
//!
//! ```text
//! // dlt-lint: allow(D1, reason = "sorted into a Vec on the next line")
//! ```
//!
//! Malformed or unused directives are reported as `LINT` findings and
//! are never suppressible, so the suppression table the binary prints
//! stays an exact inventory of every exemption.
//!
//! The scanner is intentionally *not* a Rust parser (no `syn`, per the
//! offline zero-dependency policy). It over-approximates: a name bound
//! to a hash collection anywhere in a file taints every receiver of
//! that name in the same file. The escape hatch for a false positive
//! is a rename or a justified allow — both visible in review.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod mask;
pub mod rules;

/// A determinism rule, or `Lint` for problems with the directives
/// themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-order iteration.
    D1,
    /// Wall-clock source.
    D2,
    /// Non-seeded randomness.
    D3,
    /// Unordered float accumulation.
    D4,
    /// Panic path in the sim hot loop.
    D5,
    /// Thread/shared-state primitive outside the shard executor.
    D6,
    /// Malformed or unused suppression directive.
    Lint,
}

impl Rule {
    /// Parses `"D1"`–`"D6"`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            _ => None,
        }
    }

    /// The rule's display name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::Lint => "LINT",
        }
    }

    /// The fix hint attached to every finding of this rule.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D1 => "iterate an ordered collection (BTreeMap/BTreeSet) or collect-and-sort before iterating",
            Rule::D2 => "use SimTime for simulated time; wall-clock reads belong only in dlt-testkit::bench",
            Rule::D3 => "derive all randomness from the seeded SimRng (dlt-sim::rng) / dlt-testkit xoshiro path",
            Rule::D4 => "sum floats in a deterministic order: sort first or iterate an ordered collection",
            Rule::D5 => "keep the sim hot loop panic-free: use get()/get_mut() with an explicit branch",
            Rule::D6 => "route parallelism through the dlt-sim::shard epoch-barrier executor; sim-reachable code stays single-threaded",
            Rule::Lint => "fix the directive: // dlt-lint: allow(Dn, reason = \"…\"), attached to the offending line",
        }
    }
}

/// One lint finding.
#[derive(Debug)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// The justification, when a directive suppressed this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    fn new(file: &str, line: usize, rule: Rule, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            suppressed: None,
        }
    }
}

/// Lints one file: masks it, runs every applicable rule, applies the
/// allow directives, and reports directive problems. Findings come
/// back sorted by line.
pub fn lint_file(path: &str, source: &str) -> Vec<Finding> {
    let masked = mask::mask(source);
    let mut findings = rules::scan(path, &masked.code);
    let (mut allows, malformed) = allow::collect(&masked.comments, &masked.code);

    for finding in &mut findings {
        if let Some(a) = allows.iter_mut().find(|a| {
            !matches!(finding.rule, Rule::Lint)
                && a.rule == finding.rule
                && a.target_line == finding.line
        }) {
            a.used = true;
            finding.suppressed = Some(a.reason.clone());
        }
    }
    for bad in malformed {
        findings.push(Finding::new(
            path,
            bad.line,
            Rule::Lint,
            format!("malformed directive: {}", bad.detail),
        ));
    }
    for a in allows.iter().filter(|a| !a.used) {
        findings.push(Finding::new(
            path,
            a.line,
            Rule::Lint,
            format!(
                "unused suppression: no {} finding on line {}",
                a.rule.name(),
                a.target_line
            ),
        ));
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}
