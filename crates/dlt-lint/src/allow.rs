//! Parsing of `// dlt-lint: allow(Dn, reason = "…")` directives.
//!
//! A directive suppresses findings of exactly one rule on its *target
//! line*: the directive's own line when it trails code, otherwise the
//! next line that contains code. Every suppression must carry a
//! non-empty reason; malformed directives are themselves reported as
//! findings (rule `LINT`) and are never suppressible.

use crate::Rule;

/// One parsed (or rejected) suppression directive.
#[derive(Debug)]
pub struct Allow {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// The suppressed rule.
    pub rule: Rule,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the suppression applies to.
    pub target_line: usize,
    /// Set once a finding consumed this suppression.
    pub used: bool,
}

/// A directive that did not parse, reported as a `LINT` finding.
#[derive(Debug)]
pub struct MalformedAllow {
    /// 1-based line of the broken directive.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

const MARKER: &str = "dlt-lint:";

fn skip_ws(s: &str, mut i: usize) -> usize {
    let b = s.as_bytes();
    while i < b.len() && (b[i] == b' ' || b[i] == b'\t') {
        i += 1;
    }
    i
}

fn expect(s: &str, i: usize, tok: &str) -> Result<usize, String> {
    if s[i..].starts_with(tok) {
        Ok(i + tok.len())
    } else {
        Err(format!("expected `{tok}`"))
    }
}

/// Parses one directive body (the text after `dlt-lint:`).
fn parse_body(body: &str) -> Result<(Rule, String), String> {
    let mut i = skip_ws(body, 0);
    i = expect(body, i, "allow")?;
    i = skip_ws(body, i);
    i = expect(body, i, "(")?;
    i = skip_ws(body, i);
    let rule_start = i;
    let bytes = body.as_bytes();
    while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
        i += 1;
    }
    let rule = Rule::parse(&body[rule_start..i])
        .ok_or_else(|| format!("unknown rule `{}`", &body[rule_start..i]))?;
    i = skip_ws(body, i);
    i = expect(body, i, ",")?;
    i = skip_ws(body, i);
    i = expect(body, i, "reason")?;
    i = skip_ws(body, i);
    i = expect(body, i, "=")?;
    i = skip_ws(body, i);
    i = expect(body, i, "\"")?;
    let reason_start = i;
    let close = body[i..]
        .find('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    let reason = body[reason_start..reason_start + close].trim().to_string();
    if reason.is_empty() {
        return Err("empty reason".to_string());
    }
    i = skip_ws(body, reason_start + close + 1);
    i = expect(body, i, ")")?;
    let rest = body[i..].trim();
    if !rest.is_empty() {
        return Err(format!("trailing text after directive: `{rest}`"));
    }
    Ok((rule, reason))
}

/// Scans the comment and code views (see [`crate::mask`]) for
/// directives. Returns the parsed allows plus the malformed ones.
pub fn collect(comments: &str, code: &str) -> (Vec<Allow>, Vec<MalformedAllow>) {
    let code_lines: Vec<&str> = code.lines().collect();
    let mut allows = Vec::new();
    let mut malformed = Vec::new();

    for (idx, comment_line) in comments.lines().enumerate() {
        let Some(pos) = comment_line.find(MARKER) else {
            continue;
        };
        let line = idx + 1;
        let body = &comment_line[pos + MARKER.len()..];
        match parse_body(body) {
            Err(detail) => malformed.push(MalformedAllow {
                line,
                detail: format!("{detail} (expected `// dlt-lint: allow(Dn, reason = \"…\")`)"),
            }),
            Ok((rule, reason)) => {
                // Trailing directive → same line; standalone directive →
                // first following line that contains code.
                let own_code = code_lines.get(idx).map_or("", |l| l.trim());
                let target = if !own_code.is_empty() {
                    Some(line)
                } else {
                    code_lines[idx + 1..]
                        .iter()
                        .position(|l| !l.trim().is_empty())
                        .map(|off| line + 1 + off)
                };
                match target {
                    Some(target_line) => allows.push(Allow {
                        line,
                        rule,
                        reason,
                        target_line,
                        used: false,
                    }),
                    None => malformed.push(MalformedAllow {
                        line,
                        detail: "directive has no following code line to attach to".to_string(),
                    }),
                }
            }
        }
    }
    (allows, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;

    fn run(src: &str) -> (Vec<Allow>, Vec<MalformedAllow>) {
        let m = mask(src);
        collect(&m.comments, &m.code)
    }

    #[test]
    fn standalone_directive_targets_next_code_line() {
        let (allows, bad) =
            run("// dlt-lint: allow(D1, reason = \"sorted below\")\nfor k in map.keys() {}\n");
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, Rule::D1);
        assert_eq!(allows[0].target_line, 2);
        assert_eq!(allows[0].reason, "sorted below");
    }

    #[test]
    fn trailing_directive_targets_own_line() {
        let (allows, bad) =
            run("let x = v[0]; // dlt-lint: allow(D5, reason = \"bounds checked\")\n");
        assert!(bad.is_empty());
        assert_eq!(allows[0].target_line, 1);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let (allows, bad) = run("// dlt-lint: allow(D1)\nlet x = 1;\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].detail.contains("expected `,`"));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let (allows, bad) = run("// dlt-lint: allow(D9, reason = \"nope\")\nlet x = 1;\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].detail.contains("unknown rule"));
    }

    #[test]
    fn empty_reason_is_malformed() {
        let (_, bad) = run("// dlt-lint: allow(D2, reason = \"  \")\nlet x = 1;\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].detail.contains("empty reason"));
    }

    #[test]
    fn directive_inside_string_is_ignored() {
        let (allows, bad) = run("let s = \"// dlt-lint: allow(D1, reason = \\\"x\\\")\";\n");
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
