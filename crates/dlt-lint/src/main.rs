//! The `dlt-lint` binary: scans `crates/*/src/**/*.rs` under the
//! workspace root, prints findings and the suppression table, and (with
//! `--deny-all`) fails on any unsuppressed finding.
//!
//! ```text
//! dlt-lint [--root DIR] [--deny-all] [--summary PATH]
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dlt_lint::{lint_file, Finding};

fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            // The linter's own sources are full of deliberate rule
            // tokens and directive examples; they are covered by the
            // crate's unit and fixture tests instead.
            if path.file_name().is_some_and(|n| n == "dlt-lint") {
                continue;
            }
            if path.is_dir() {
                // Only lint the shipped sources: crates/<name>/src/…
                // (fixtures under tests/ contain deliberate positives).
                let depth_ok = path.parent() == Some(root.join("crates").as_path());
                if depth_ok || path.components().any(|c| c.as_os_str() == "src") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.components().any(|c| c.as_os_str() == "src")
            {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn summary_table(suppressed: &[&Finding]) -> String {
    let mut out = String::from("# dlt-lint suppression summary\n\n");
    if suppressed.is_empty() {
        out.push_str("No suppressions: the workspace passes with zero `dlt-lint: allow` directives in effect.\n");
        return out;
    }
    out.push_str("| rule | site | reason |\n|------|------|--------|\n");
    for f in suppressed {
        out.push_str(&format!(
            "| {} | {}:{} | {} |\n",
            f.rule.name(),
            f.file,
            f.line,
            f.suppressed.as_deref().unwrap_or("")
        ));
    }
    out
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut summary_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("dlt-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--summary" => match args.next() {
                Some(p) => summary_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("dlt-lint: --summary requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("dlt-lint: unknown argument `{other}`");
                eprintln!("usage: dlt-lint [--root DIR] [--deny-all] [--summary PATH]");
                return ExitCode::from(2);
            }
        }
    }

    let files = collect_sources(&root);
    if files.is_empty() {
        eprintln!(
            "dlt-lint: no sources found under {} (run from the workspace root or pass --root)",
            root.join("crates").display()
        );
        return ExitCode::from(2);
    }

    let mut all: Vec<Finding> = Vec::new();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("dlt-lint: unreadable file {}", path.display());
            return ExitCode::from(2);
        };
        all.extend(lint_file(&rel(&root, path), &source));
    }

    let (suppressed, open): (Vec<&Finding>, Vec<&Finding>) =
        all.iter().partition(|f| f.suppressed.is_some());

    for f in &open {
        println!("{}:{}: {} {}", f.file, f.line, f.rule.name(), f.message);
        println!("    hint: {}", f.rule.hint());
    }

    let table = summary_table(&suppressed);
    println!(
        "dlt-lint: {} file(s), {} finding(s) open, {} suppressed",
        files.len(),
        open.len(),
        suppressed.len()
    );
    if !suppressed.is_empty() {
        for f in &suppressed {
            println!(
                "    allowed {} at {}:{} — {}",
                f.rule.name(),
                f.file,
                f.line,
                f.suppressed.as_deref().unwrap_or("")
            );
        }
    }
    if let Some(path) = summary_path {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(err) = fs::write(&path, table) {
            eprintln!("dlt-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "dlt-lint: suppression summary written to {}",
            path.display()
        );
    }

    if deny_all && !open.is_empty() {
        eprintln!(
            "dlt-lint: failing (--deny-all) with {} open finding(s)",
            open.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
