// Fixture: thread/shared-state primitives that D6 must flag when the
// file sits in a sim-reachable crate outside dlt-sim::shard.

use std::sync::atomic::AtomicUsize;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

fn run(counter: Arc<Mutex<u64>>) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let hits = AtomicUsize::new(0);
        tx.send(hits).unwrap();
    });
    let _ = rx.recv();
    handle.join().unwrap();
    // dlt-lint: allow(D6, reason = "fixture: justified suppression example")
    let sanctioned = Barrier::new(2);
    let _ = (counter, sanctioned);
}
