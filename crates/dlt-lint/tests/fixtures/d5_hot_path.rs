//! D5 fixture: panic paths inside a dispatch hot function. Linted
//! under the engine path; `step` is a hot function, `drain_all` is
//! not. `vec![…]` is a macro bracket, not indexing.

pub struct Engine {
    queue: Vec<u64>,
    nodes: Vec<u64>,
}

impl Engine {
    pub fn step(&mut self) -> bool {
        let event = self.queue.pop().unwrap();
        let slot = self.nodes[event as usize];
        let batch = vec![event, slot];
        if batch.is_empty() {
            panic!("empty batch in dispatch");
        }
        true
    }

    pub fn drain_all(&mut self) {
        self.queue.pop().unwrap();
        let _ = self.nodes[0];
    }
}
