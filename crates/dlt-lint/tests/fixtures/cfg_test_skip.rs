//! Test-region fixture: violations inside the trailing `#[cfg(test)]`
//! module are skipped — test-only hash iteration cannot leak into
//! experiment output.

pub fn fine() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_iteration_in_tests_is_fine() {
        let m: HashMap<u64, u64> = HashMap::new();
        for (k, v) in m.iter() {
            let _ = (k, v);
        }
        let _ = std::time::Instant::now();
    }
}
