//! Malformed-directive fixture: an unknown rule, a missing reason, an
//! empty reason, trailing garbage, and a well-formed directive with
//! nothing to suppress. All five must surface as LINT findings.

// dlt-lint: allow(D9, reason = "no such rule")
// dlt-lint: allow(D1)
// dlt-lint: allow(D1, reason = "")
// dlt-lint: allow(D1, reason = "x") trailing garbage
// dlt-lint: allow(D1, reason = "nothing to suppress here")
pub fn nothing() {}
