//! D1 negative fixture: ordered iteration and point lookups into a
//! hash map are both fine; neither may be flagged.

use std::collections::{BTreeMap, HashMap};

pub fn lookups(index: HashMap<u64, u64>, ordered: BTreeMap<u64, u64>) -> u64 {
    let direct = index.get(&1).copied().unwrap_or(0);
    let mut walked = 0;
    for (k, v) in ordered.iter() {
        walked += k + v;
    }
    direct + walked
}
