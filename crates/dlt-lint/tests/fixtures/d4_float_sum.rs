//! D4 fixture: float accumulation over hash-order iterators. The two
//! float reductions over `weights` are flagged; the integer sum over
//! the same map and the float sum over an ordered `Vec` are not.

use std::collections::HashMap;

pub fn total_weight(weights: HashMap<u64, f64>) -> f64 {
    weights.values().map(|w| *w).sum::<f64>()
}

pub fn total_count(weights: HashMap<u64, u64>) -> u64 {
    weights.values().sum::<u64>()
}

pub fn ordered_total(sorted: Vec<f64>) -> f64 {
    sorted.iter().sum::<f64>()
}

pub fn folded(weights: HashMap<u64, f64>) -> f64 {
    weights.values().fold(0.0, |acc, w| acc + w)
}
