// Fixture: identifiers that look thread-adjacent but must NOT trip D6
// (word-boundary matching), plus strings/comments, which are masked.

thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn run(threads: usize) -> usize {
    // thread::spawn would be flagged here, but comments are masked.
    let spawned = threads + 1; // `spawned` is not `spawn`
    let archive = "Arc and Mutex in a string are masked";
    let marching = archive.len();
    spawned + marching
}

#[cfg(test)]
mod tests {
    #[test]
    fn trailing_test_region_is_skipped() {
        // Even a real std::thread::spawn here is out of scope.
        let h = std::thread::spawn(|| 1);
        assert_eq!(h.join().unwrap(), 1);
    }
}
