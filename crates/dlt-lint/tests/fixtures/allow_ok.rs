//! Suppression fixture: one trailing directive (same line) and one
//! standalone directive (next code line), both with reasons. Both D1
//! findings must come back suppressed, with no LINT findings.

use std::collections::HashMap;

pub struct S {
    map: HashMap<u64, u64>,
}

impl S {
    pub fn sum_all(&self) -> u64 {
        self.map.values().sum() // dlt-lint: allow(D1, reason = "order-independent integer sum")
    }

    pub fn touch(&mut self) {
        // dlt-lint: allow(D1, reason = "retain predicate is order-independent")
        self.map.retain(|_, v| *v > 0);
    }
}
