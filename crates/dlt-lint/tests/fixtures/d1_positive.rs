//! D1 positive fixture: every flagged construct iterates a hash-typed
//! name. Fed to `lint_file` as text under a sim-crate path; never
//! compiled as part of the crate.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    members: HashSet<u64>,
}

pub fn survey(peers: HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (id, latency) in peers.iter() {
        acc += id + latency;
    }
    acc
}

impl Registry {
    pub fn roll_call(&self) -> Vec<u64> {
        self.members.iter().copied().collect()
    }

    pub fn prune(&mut self) {
        self.members.retain(|m| *m != 0);
    }

    pub fn walk(&self) {
        for member in &self.members {
            let _ = member;
        }
    }
}
