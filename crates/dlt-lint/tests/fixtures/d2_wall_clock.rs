//! D2 fixture: wall-clock reads. Flagged everywhere except under the
//! bench-harness path (the integration test lints this file twice).

pub fn elapsed_wall() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
