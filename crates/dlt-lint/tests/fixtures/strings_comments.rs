//! Masking fixture: every banned token appears only inside comments or
//! string literals, so nothing may be flagged. Mentions a HashMap
//! .iter() loop, Instant::now(), and thread_rng() — in prose only.

pub fn describe() -> &'static str {
    // A comment about HashMap.keys() order and SystemTime::now().
    "uses HashMap.iter(), Instant::now() and thread_rng() at runtime"
}
