//! D3 fixture: randomness sources outside the seeded SimRng/xoshiro
//! path. All three constructions must be flagged, in any crate.

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let os = OsRng;
    let state = RandomState::new();
    0
}
