//! Integration tests over the fixture corpus: one positive and one
//! negative case per rule, suppression handling, and the scoping
//! rules (sim-crate paths, the bench exemption, the trailing
//! `#[cfg(test)]` region).
//!
//! The fixtures live under `tests/fixtures/` and are plain text to the
//! linter — they are never compiled, so they can use types and crates
//! the workspace does not have.

use dlt_lint::{lint_file, Finding, Rule};

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

fn open(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.suppressed.is_none()).collect()
}

#[test]
fn d1_flags_hash_iteration_in_sim_crates() {
    let findings = lint_file(
        "crates/dlt-sim/src/fixture.rs",
        include_str!("fixtures/d1_positive.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::D1; 4], "{findings:?}");
    assert!(findings.iter().all(|f| f.suppressed.is_none()));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("peers.iter()")));
    assert!(messages.iter().any(|m| m.contains("members.retain()")));
    assert!(messages.iter().any(|m| m.contains("for … in self.members")));
}

#[test]
fn d1_ignores_ordered_iteration_and_point_lookups() {
    let findings = lint_file(
        "crates/dlt-sim/src/fixture.rs",
        include_str!("fixtures/d1_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d1_only_applies_to_sim_crates() {
    let findings = lint_file(
        "crates/dlt-core/src/fixture.rs",
        include_str!("fixtures/d1_positive.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d2_flags_wall_clock_reads() {
    let findings = lint_file(
        "crates/dlt-core/src/fixture.rs",
        include_str!("fixtures/d2_wall_clock.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::D2; 3], "{findings:?}");
}

#[test]
fn d2_exempts_the_bench_harness() {
    let findings = lint_file(
        "crates/dlt-testkit/src/bench.rs",
        include_str!("fixtures/d2_wall_clock.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_flags_non_seeded_randomness() {
    let findings = lint_file(
        "crates/dlt-bench/src/fixture.rs",
        include_str!("fixtures/d3_rng.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::D3; 3], "{findings:?}");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("thread_rng")));
    assert!(messages.iter().any(|m| m.contains("OsRng")));
    assert!(messages.iter().any(|m| m.contains("RandomState")));
}

#[test]
fn d4_flags_float_accumulation_over_hash_iterators() {
    let findings = lint_file(
        "crates/dlt-dag/src/fixture.rs",
        include_str!("fixtures/d4_float_sum.rs"),
    );
    let d4: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::D4).collect();
    assert_eq!(d4.len(), 2, "{findings:?}");
    assert!(d4.iter().all(|f| f.message.contains("`weights`")));
    // The three `.values()` iterations are D1 findings in their own
    // right; the ordered `Vec` sum contributes nothing.
    let d1 = findings.iter().filter(|f| f.rule == Rule::D1).count();
    assert_eq!(d1, 3, "{findings:?}");
    assert_eq!(findings.len(), 5);
}

#[test]
fn d5_flags_panic_paths_in_hot_functions_only() {
    let findings = lint_file(
        "crates/dlt-sim/src/engine.rs",
        include_str!("fixtures/d5_hot_path.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::D5; 3], "{findings:?}");
    // All three sit inside `step`; the identical constructs in
    // `drain_all` (not a hot path) and the `vec![…]` macro bracket
    // are not flagged.
    assert!(findings.iter().all(|f| f.message.contains("`step`")));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains(".unwrap")));
    assert!(messages.iter().any(|m| m.contains("indexing")));
    assert!(messages.iter().any(|m| m.contains("panic!")));
}

#[test]
fn d6_flags_thread_primitives_in_sim_crates() {
    let findings = lint_file(
        "crates/dlt-blockchain/src/fixture.rs",
        include_str!("fixtures/d6_positive.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::D6; 12], "{findings:?}");
    assert_eq!(open(&findings).len(), 11, "{findings:?}");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("`thread`")));
    assert!(messages.iter().any(|m| m.contains("`spawn`")));
    assert!(messages.iter().any(|m| m.contains("`mpsc`")));
    assert!(messages.iter().any(|m| m.contains("`AtomicUsize`")));
    // The allow-directive suppresses exactly the `Barrier` use.
    let suppressed: Vec<&Finding> = findings.iter().filter(|f| f.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert!(suppressed[0].message.contains("`Barrier`"));
}

#[test]
fn d6_exempts_the_shard_executor() {
    let findings = lint_file(
        "crates/dlt-sim/src/shard.rs",
        include_str!("fixtures/d6_positive.rs"),
    );
    assert!(findings.iter().all(|f| f.rule != Rule::D6), "{findings:?}");
}

#[test]
fn d6_only_applies_to_sim_crates() {
    let findings = lint_file(
        "crates/dlt-bench/src/fixture.rs",
        include_str!("fixtures/d6_positive.rs"),
    );
    assert!(findings.iter().all(|f| f.rule != Rule::D6), "{findings:?}");
}

#[test]
fn d6_ignores_lookalike_idents_strings_comments_and_test_region() {
    let findings = lint_file(
        "crates/dlt-sim/src/fixture.rs",
        include_str!("fixtures/d6_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn well_formed_allows_suppress_with_reasons() {
    let findings = lint_file(
        "crates/dlt-blockchain/src/fixture.rs",
        include_str!("fixtures/allow_ok.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::D1; 2], "{findings:?}");
    assert!(open(&findings).is_empty(), "{findings:?}");
    let reasons: Vec<&str> = findings
        .iter()
        .filter_map(|f| f.suppressed.as_deref())
        .collect();
    assert!(reasons.contains(&"order-independent integer sum"));
    assert!(reasons.contains(&"retain predicate is order-independent"));
}

#[test]
fn malformed_and_unused_allows_are_lint_findings() {
    let findings = lint_file(
        "crates/dlt-core/src/fixture.rs",
        include_str!("fixtures/allow_malformed.rs"),
    );
    assert_eq!(rules(&findings), vec![Rule::Lint; 5], "{findings:?}");
    // LINT findings are never suppressible.
    assert!(findings.iter().all(|f| f.suppressed.is_none()));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("unknown rule `D9`")));
    assert!(messages.iter().any(|m| m.contains("expected `,`")));
    assert!(messages.iter().any(|m| m.contains("empty reason")));
    assert!(messages.iter().any(|m| m.contains("trailing text")));
    assert!(messages.iter().any(|m| m.contains("unused suppression")));
}

#[test]
fn trailing_cfg_test_region_is_skipped() {
    let findings = lint_file(
        "crates/dlt-sim/src/fixture.rs",
        include_str!("fixtures/cfg_test_skip.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn tokens_in_strings_and_comments_are_masked() {
    let findings = lint_file(
        "crates/dlt-sim/src/fixture.rs",
        include_str!("fixtures/strings_comments.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn the_live_workspace_is_clean() {
    // The repo's own sim crates must stay free of open findings —
    // the same invariant the CI `lint-determinism` job enforces via
    // the binary. Running it in-process here gives the fast local
    // signal.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut open_findings = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                // Skip dlt-lint itself: its sources and fixtures carry
                // deliberate rule tokens and directive examples.
                if path.file_name().is_some_and(|n| n == "dlt-lint") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.components().any(|c| c.as_os_str() == "src")
            {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                let source = std::fs::read_to_string(&path).expect("readable source");
                open_findings.extend(
                    lint_file(&rel, &source)
                        .into_iter()
                        .filter(|f| f.suppressed.is_none()),
                );
            }
        }
    }
    assert!(
        open_findings.is_empty(),
        "determinism findings in the workspace: {open_findings:#?}"
    );
}
