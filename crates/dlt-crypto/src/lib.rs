//! Cryptographic substrate for the `dlt-compare` workspace.
//!
//! This crate provides every cryptographic primitive the ledger
//! implementations need, built from scratch so the workspace has no
//! external cryptography dependencies:
//!
//! * [`sha256`] — a FIPS 180-4 SHA-256 implementation (streaming and
//!   one-shot), plus the double-SHA-256 variant blockchains use.
//! * [`digest`] — the [`Digest`] newtype for 256-bit
//!   hashes, with target/difficulty helpers used by proof-of-work.
//! * [`hexutil`] — minimal hex encoding/decoding for display and tests.
//! * [`codec`] — a compact, deterministic binary encoding
//!   ([`Encode`](codec::Encode) / [`Decode`](codec::Decode)) used for
//!   hashing preimages and for ledger-size accounting.
//! * [`keys`] — key material and [`Address`](keys::Address) derivation.
//! * [`lamport`] — Lamport one-time signatures.
//! * [`wots`] — Winternitz one-time signatures (smaller than Lamport).
//! * [`mss`] — a Merkle signature scheme (a Merkle tree over WOTS leaf
//!   keys) giving a many-time signature suitable for account chains.
//! * [`merkle`] — binary Merkle trees with inclusion proofs.
//! * [`trie`] — a Merkle Patricia Trie with a hash-addressed node store,
//!   structural sharing between versions, and garbage collection; this
//!   models Ethereum's state trie and its "state delta" pruning.
//!
//! # Example
//!
//! ```
//! use dlt_crypto::sha256::sha256;
//! use dlt_crypto::merkle::MerkleTree;
//!
//! let leaves = vec![sha256(b"tx0"), sha256(b"tx1"), sha256(b"tx2")];
//! let tree = MerkleTree::from_leaves(leaves.clone());
//! let proof = tree.prove(1).expect("leaf exists");
//! assert!(proof.verify(&tree.root(), &leaves[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod digest;
pub mod hexutil;
pub mod keys;
pub mod lamport;
pub mod merkle;
pub mod mss;
pub mod sha256;
pub mod trie;
pub mod wots;

pub use digest::Digest;
