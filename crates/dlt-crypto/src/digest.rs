//! The [`Digest`] newtype: a 256-bit hash value.
//!
//! Digests identify blocks, transactions, accounts and trie nodes
//! throughout the workspace. The type also carries the numeric helpers
//! proof-of-work needs (leading-zero counting and target comparison),
//! because PoW treats a hash as a 256-bit big-endian integer.

use std::fmt;
use std::str::FromStr;

use crate::hexutil;

/// A 256-bit hash value (e.g. the output of SHA-256).
///
/// `Digest` is an inert value type: `Copy`, ordered (big-endian numeric
/// order, which is also byte-lexicographic order), hashable and
/// serialisable.
///
/// # Example
///
/// ```
/// use dlt_crypto::sha256::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(d.to_hex().len(), 64);
/// assert!(d > dlt_crypto::Digest::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest. Used as the "no predecessor" sentinel by the
    /// genesis block / genesis transaction.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// The all-ones digest: the largest 256-bit value, i.e. the easiest
    /// possible proof-of-work target.
    pub const MAX: Digest = Digest([0xffu8; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Borrows the digest's bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Returns `true` if this is the all-zero sentinel digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Lowercase hex representation (64 characters).
    pub fn to_hex(&self) -> String {
        hexutil::encode(&self.0)
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] if the input is not exactly 64 hex
    /// characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        let bytes = hexutil::decode(s).map_err(|_| ParseDigestError)?;
        let arr: [u8; 32] = bytes.try_into().map_err(|_| ParseDigestError)?;
        Ok(Digest(arr))
    }

    /// Number of leading zero *bits*, interpreting the digest as a
    /// big-endian 256-bit integer. This is the Hashcash-style difficulty
    /// measure used by Nano's anti-spam PoW and by Bitcoin's original
    /// description ("the pattern starts with at least a predefined number
    /// of 0 bits").
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0;
        for byte in &self.0 {
            if *byte == 0 {
                bits += 8;
            } else {
                bits += byte.leading_zeros();
                break;
            }
        }
        bits
    }

    /// Returns `true` if the digest, read as a big-endian 256-bit
    /// integer, is at or below `target`. This is the "partial hash
    /// inversion" success condition for proof-of-work.
    pub fn meets_target(&self, target: &Digest) -> bool {
        self <= target
    }

    /// Builds the target digest corresponding to `bits` leading zero
    /// bits: the largest value with at least that many leading zeros.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 256`.
    pub fn target_with_leading_zero_bits(bits: u32) -> Digest {
        assert!(bits <= 256, "a 256-bit value has at most 256 zero bits");
        let mut out = [0xffu8; 32];
        let full_bytes = (bits / 8) as usize;
        let rem = bits % 8;
        for byte in out.iter_mut().take(full_bytes) {
            *byte = 0;
        }
        if full_bytes < 32 && rem > 0 {
            out[full_bytes] = 0xffu8 >> rem;
        }
        Digest(out)
    }

    /// A short 8-hex-character prefix for human-readable logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Interprets the first 8 bytes as a big-endian `u64`. Handy for
    /// deriving deterministic pseudo-random values from hashes.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for Digest {
    type Err = ParseDigestError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Digest::from_hex(s)
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a [`Digest`] from a malformed hex string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError;

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid digest: expected 64 hex characters")
    }
}

impl std::error::Error for ParseDigestError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        let parsed = Digest::from_hex(&d.to_hex()).unwrap();
        assert_eq!(d, parsed);
    }

    #[test]
    fn from_str_rejects_bad_input() {
        assert!(Digest::from_str("xyz").is_err());
        assert!(Digest::from_str(&"a".repeat(63)).is_err());
        assert!(Digest::from_str(&"g".repeat(64)).is_err());
        assert!(Digest::from_str(&"a".repeat(64)).is_ok());
    }

    #[test]
    fn zero_and_max() {
        assert!(Digest::ZERO.is_zero());
        assert!(!Digest::MAX.is_zero());
        assert_eq!(Digest::ZERO.leading_zero_bits(), 256);
        assert_eq!(Digest::MAX.leading_zero_bits(), 0);
        assert!(Digest::ZERO < Digest::MAX);
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0b0001_0000;
        assert_eq!(Digest::from_bytes(bytes).leading_zero_bits(), 3);

        let mut bytes = [0u8; 32];
        bytes[2] = 0b1000_0000;
        assert_eq!(Digest::from_bytes(bytes).leading_zero_bits(), 16);
    }

    #[test]
    fn target_construction() {
        let t = Digest::target_with_leading_zero_bits(0);
        assert_eq!(t, Digest::MAX);

        let t8 = Digest::target_with_leading_zero_bits(8);
        assert_eq!(t8.as_bytes()[0], 0);
        assert_eq!(t8.as_bytes()[1], 0xff);
        assert_eq!(t8.leading_zero_bits(), 8);

        let t12 = Digest::target_with_leading_zero_bits(12);
        assert_eq!(t12.as_bytes()[0], 0);
        assert_eq!(t12.as_bytes()[1], 0x0f);
        assert_eq!(t12.leading_zero_bits(), 12);

        let t256 = Digest::target_with_leading_zero_bits(256);
        assert!(t256.is_zero());
    }

    #[test]
    fn meets_target_is_monotone() {
        let hash = sha256(b"pow attempt");
        let easy = Digest::target_with_leading_zero_bits(0);
        let hard = Digest::target_with_leading_zero_bits(200);
        assert!(hash.meets_target(&easy));
        assert!(!hash.meets_target(&hard));
    }

    #[test]
    fn ordering_is_bigendian_numeric() {
        let mut lo = [0u8; 32];
        lo[31] = 1;
        let mut hi = [0u8; 32];
        hi[0] = 1;
        assert!(Digest::from_bytes(lo) < Digest::from_bytes(hi));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let d = Digest::ZERO;
        assert!(!format!("{d:?}").is_empty());
        assert_eq!(format!("{d}").len(), 64);
        assert_eq!(d.short().len(), 8);
    }

    #[test]
    fn prefix_u64_matches_bytes() {
        let mut bytes = [0u8; 32];
        bytes[7] = 5;
        assert_eq!(Digest::from_bytes(bytes).prefix_u64(), 5);
    }
}
