//! Key material, signatures and addresses shared by all ledgers.
//!
//! The ledgers never care *which* hash-based scheme produced a
//! signature; they verify a [`Signature`] against a [`PublicKey`] and
//! derive an [`Address`] from a public key. This module provides that
//! uniform surface:
//!
//! * [`Keypair`] — a signing identity. UTXO outputs use one-time
//!   [`Keypair::lamport`]/[`Keypair::wots`] keys (a fresh key per
//!   output, matching address-hygiene practice in Bitcoin); account
//!   chains use many-time [`Keypair::mss`] keys.
//! * [`PublicKey`] — the compact commitment a verifier checks against.
//! * [`Address`] — `H(public key)`, the pay-to-public-key-hash rule.
//! * [`Signature`] — scheme-tagged signature with unified `verify`.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode};
use crate::digest::Digest;
use crate::lamport::{LamportKeypair, LamportSignature};
use crate::mss::{KeyExhausted, MssKeypair, MssSignature};
use crate::sha256::{sha256, Sha256};
use crate::wots::{WotsKeypair, WotsSignature};

/// A compact public-key commitment (32 bytes regardless of scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PublicKey(pub Digest);

impl PublicKey {
    /// Derives the pay-to-public-key-hash address for this key.
    pub fn address(&self) -> Address {
        let mut h = Sha256::new();
        h.update(b"address");
        h.update(self.0.as_bytes());
        Address(h.finalize())
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk:{}", self.0.short())
    }
}

impl Encode for PublicKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for PublicKey {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(PublicKey(Digest::decode(input)?))
    }
}

/// A ledger address: the hash of a public key.
///
/// Addresses identify UTXO output owners, Ethereum-style accounts and
/// Nano-style account chains alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub Digest);

impl Address {
    /// The all-zero address, used for burn/coinbase sentinels.
    pub const ZERO: Address = Address(Digest::ZERO);

    /// A short human-readable form for logs and example output.
    pub fn short(&self) -> String {
        self.0.short()
    }

    /// Deterministically derives a labelled test address. Only for
    /// examples and tests that don't need a real keypair behind the
    /// address.
    pub fn from_label(label: &str) -> Address {
        Address(sha256(label.as_bytes()))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr:{}", self.0.short())
    }
}

impl Encode for Address {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for Address {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Address(Digest::decode(input)?))
    }
}

/// A scheme-tagged signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signature {
    /// Lamport one-time signature (largest, simplest).
    Lamport(LamportSignature),
    /// Winternitz one-time signature (compact one-time).
    Wots(WotsSignature),
    /// Merkle many-time signature (account chains).
    Mss(MssSignature),
}

impl Signature {
    /// Verifies the signature over `msg` against `public`.
    pub fn verify(&self, msg: &Digest, public: &PublicKey) -> bool {
        match self {
            Signature::Lamport(sig) => sig.verify(msg, &public.0),
            Signature::Wots(sig) => sig.verify(msg, &public.0),
            Signature::Mss(sig) => sig.verify(msg, &public.0),
        }
    }

    /// Encoded size in bytes (ledger-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Signature::Lamport(sig) => {
                out.push(0);
                sig.encode(out);
            }
            Signature::Wots(sig) => {
                out.push(1);
                sig.encode(out);
            }
            Signature::Mss(sig) => {
                out.push(2);
                sig.encode(out);
            }
        }
    }
}

impl Decode for Signature {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(Signature::Lamport(LamportSignature::decode(input)?)),
            1 => Ok(Signature::Wots(WotsSignature::decode(input)?)),
            2 => Ok(Signature::Mss(MssSignature::decode(input)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// A signing identity wrapping one of the hash-based schemes.
///
/// # Example
///
/// ```
/// use dlt_crypto::keys::Keypair;
/// use dlt_crypto::sha256::sha256;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut account = Keypair::mss_from_seed([1u8; 32], 3);
/// let msg = sha256(b"send 10");
/// let sig = account.sign(&msg)?;
/// assert!(sig.verify(&msg, &account.public_key()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum Keypair {
    /// One-time Lamport key.
    Lamport(LamportKeypair),
    /// One-time WOTS key.
    Wots(WotsKeypair),
    /// Many-time MSS key.
    Mss(MssKeypair),
}

impl Keypair {
    /// Generates a fresh one-time Lamport keypair.
    pub fn lamport<R: dlt_testkit::rng::RngCore + ?Sized>(rng: &mut R) -> Self {
        Keypair::Lamport(LamportKeypair::generate(rng))
    }

    /// Generates a fresh one-time WOTS keypair.
    pub fn wots<R: dlt_testkit::rng::RngCore + ?Sized>(rng: &mut R) -> Self {
        Keypair::Wots(WotsKeypair::generate(rng))
    }

    /// Generates a fresh many-time MSS keypair.
    pub fn mss<R: dlt_testkit::rng::RngCore + ?Sized>(rng: &mut R) -> Self {
        Keypair::Mss(MssKeypair::generate(rng))
    }

    /// Derives a many-time MSS keypair from a seed with `2^height`
    /// signatures of capacity.
    pub fn mss_from_seed(seed: [u8; 32], height: u32) -> Self {
        Keypair::Mss(MssKeypair::from_seed(seed, height))
    }

    /// Derives a one-time WOTS keypair from a seed.
    pub fn wots_from_seed(seed: [u8; 32]) -> Self {
        Keypair::Wots(WotsKeypair::from_seed(seed))
    }

    /// The public key verifiers check signatures against.
    pub fn public_key(&self) -> PublicKey {
        let digest = match self {
            Keypair::Lamport(kp) => kp.public_digest(),
            Keypair::Wots(kp) => kp.public_digest(),
            Keypair::Mss(kp) => kp.public_digest(),
        };
        PublicKey(digest)
    }

    /// This identity's ledger address.
    pub fn address(&self) -> Address {
        self.public_key().address()
    }

    /// Signs a message digest.
    ///
    /// # Errors
    ///
    /// Returns [`KeyExhausted`] when an MSS key has spent all leaf keys.
    /// One-time keys never fail here, but signing twice with them is a
    /// caller bug (the schemes become forgeable); ledgers avoid it by
    /// construction.
    pub fn sign(&mut self, msg: &Digest) -> Result<Signature, KeyExhausted> {
        match self {
            Keypair::Lamport(kp) => Ok(Signature::Lamport(kp.sign(msg))),
            Keypair::Wots(kp) => Ok(Signature::Wots(kp.sign(msg))),
            Keypair::Mss(kp) => Ok(Signature::Mss(kp.sign(msg)?)),
        }
    }

    /// Remaining signature capacity (`None` = one-time key, unsigned
    /// state unknown to the keypair itself).
    pub fn remaining(&self) -> Option<u32> {
        match self {
            Keypair::Mss(kp) => Some(kp.remaining()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_exact;
    use dlt_testkit::rng::Xoshiro256StarStar;

    #[test]
    fn address_derivation_is_deterministic() {
        let kp = Keypair::wots_from_seed([1u8; 32]);
        assert_eq!(kp.address(), kp.public_key().address());
        assert_eq!(kp.address(), Keypair::wots_from_seed([1u8; 32]).address());
    }

    #[test]
    fn different_keys_different_addresses() {
        let a = Keypair::wots_from_seed([1u8; 32]);
        let b = Keypair::wots_from_seed([2u8; 32]);
        assert_ne!(a.address(), b.address());
    }

    #[test]
    fn all_schemes_sign_and_verify() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let msg = sha256(b"unified message");
        for mut kp in [
            Keypair::lamport(&mut rng),
            Keypair::wots(&mut rng),
            Keypair::mss_from_seed([3u8; 32], 2),
        ] {
            let public = kp.public_key();
            let sig = kp.sign(&msg).unwrap();
            assert!(sig.verify(&msg, &public));
            assert!(!sig.verify(&sha256(b"other"), &public));
        }
    }

    #[test]
    fn signature_codec_round_trip_all_schemes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let msg = sha256(b"codec");
        for mut kp in [
            Keypair::lamport(&mut rng),
            Keypair::wots(&mut rng),
            Keypair::mss_from_seed([4u8; 32], 2),
        ] {
            let public = kp.public_key();
            let sig = kp.sign(&msg).unwrap();
            let back: Signature = decode_exact(&sig.encode_to_vec()).unwrap();
            assert_eq!(back, sig);
            assert!(back.verify(&msg, &public));
        }
    }

    #[test]
    fn signature_decode_rejects_bad_tag() {
        assert!(matches!(
            decode_exact::<Signature>(&[9]),
            Err(DecodeError::InvalidTag(9))
        ));
    }

    #[test]
    fn cross_scheme_verification_fails() {
        let mut wots = Keypair::wots_from_seed([5u8; 32]);
        let mut mss = Keypair::mss_from_seed([5u8; 32], 2);
        let msg = sha256(b"cross");
        let wots_sig = wots.sign(&msg).unwrap();
        let mss_sig = mss.sign(&msg).unwrap();
        assert!(!wots_sig.verify(&msg, &mss.public_key()));
        assert!(!mss_sig.verify(&msg, &wots.public_key()));
    }

    #[test]
    fn mss_remaining_reported() {
        let mut kp = Keypair::mss_from_seed([6u8; 32], 1);
        assert_eq!(kp.remaining(), Some(2));
        kp.sign(&sha256(b"x")).unwrap();
        assert_eq!(kp.remaining(), Some(1));
        let one_time = Keypair::wots_from_seed([6u8; 32]);
        assert_eq!(one_time.remaining(), None);
    }

    #[test]
    fn address_from_label_stable() {
        assert_eq!(Address::from_label("alice"), Address::from_label("alice"));
        assert_ne!(Address::from_label("alice"), Address::from_label("bob"));
    }

    #[test]
    fn address_codec_round_trip() {
        let addr = Address::from_label("codec");
        let back: Address = decode_exact(&addr.encode_to_vec()).unwrap();
        assert_eq!(back, addr);
    }

    #[test]
    fn display_forms_are_short() {
        let kp = Keypair::wots_from_seed([7u8; 32]);
        assert!(kp.public_key().to_string().starts_with("pk:"));
        assert!(kp.address().to_string().starts_with("addr:"));
    }
}
