//! A compact, deterministic binary codec.
//!
//! Every on-ledger structure in the workspace implements [`Encode`] and
//! [`Decode`]. The encoding serves two purposes:
//!
//! 1. **Hashing preimages.** Block and transaction identifiers are the
//!    hash of the encoded bytes, so the encoding must be deterministic
//!    (no map iteration order, no floats).
//! 2. **Ledger-size accounting.** The paper's §V compares on-disk ledger
//!    sizes; we measure the encoded size of each ledger's contents.
//!
//! Integers use LEB128-style varints so that small values (the common
//! case for amounts, heights and counts) stay small, mirroring the
//! compact-size encodings real ledgers use.

use std::fmt;

use crate::digest::Digest;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A varint ran past its maximum width or was non-canonical.
    InvalidVarint,
    /// A length prefix exceeded the sanity limit.
    LengthTooLarge(u64),
    /// An enum tag byte had no corresponding variant.
    InvalidTag(u8),
    /// Trailing bytes remained after [`decode_exact`] consumed a value.
    TrailingBytes(usize),
    /// A domain-specific validity check failed during decoding.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("unexpected end of input"),
            DecodeError::InvalidVarint => f.write_str("invalid varint encoding"),
            DecodeError::LengthTooLarge(n) => write!(f, "length prefix too large: {n}"),
            DecodeError::InvalidTag(t) => write!(f, "invalid enum tag: {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sanity cap on decoded collection lengths, to stop a hostile length
/// prefix from triggering a huge allocation.
const MAX_LEN: u64 = 16 * 1024 * 1024;

/// Types that can serialise themselves into the deterministic codec.
pub trait Encode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Returns the encoded representation as a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Number of bytes [`Encode::encode`] would produce. The default
    /// implementation encodes into a scratch buffer; hot types may
    /// override it.
    fn encoded_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// Types that can deserialise themselves from the deterministic codec.
///
/// Decoding consumes from the front of `input`, advancing the slice.
pub trait Decode: Sized {
    /// Decodes one value from the front of `input`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bytes are malformed.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Decodes a value and requires the input to be fully consumed.
///
/// # Errors
///
/// Fails if decoding fails or bytes remain.
pub fn decode_exact<T: Decode>(mut input: &[u8]) -> Result<T, DecodeError> {
    let value = T::decode(&mut input)?;
    if input.is_empty() {
        Ok(value)
    } else {
        Err(DecodeError::TrailingBytes(input.len()))
    }
}

/// Writes a `u64` as a LEB128 varint.
pub fn write_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint `u64`.
///
/// # Errors
///
/// Fails on truncation or a varint longer than 10 bytes.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(DecodeError::UnexpectedEnd)?;
        *input = rest;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::InvalidVarint);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::InvalidVarint);
        }
    }
}

/// Number of bytes the varint encoding of `value` occupies.
pub fn varint_len(value: u64) -> usize {
    match value {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0x0fff_ffff => 4,
        0x1000_0000..=0x7_ffff_ffff => 5,
        0x8_0000_0000..=0x3ff_ffff_ffff => 6,
        0x400_0000_0000..=0x1_ffff_ffff_ffff => 7,
        0x2_0000_0000_0000..=0xff_ffff_ffff_ffff => 8,
        0x100_0000_0000_0000..=0x7fff_ffff_ffff_ffff => 9,
        _ => 10,
    }
}

fn read_n<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::UnexpectedEnd);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for u8 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(read_n(input, 1)?[0])
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

macro_rules! impl_varint_codec {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                write_varint(u64::from(*self), out);
            }
            fn encoded_len(&self) -> usize {
                varint_len(u64::from(*self))
            }
        }
        impl Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let v = read_varint(input)?;
                <$ty>::try_from(v).map_err(|_| DecodeError::InvalidVarint)
            }
        }
    )*};
}

impl_varint_codec!(u16, u32, u64);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(*self as u64, out);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = read_varint(input)?;
        usize::try_from(v).map_err(|_| DecodeError::InvalidVarint)
    }
}

/// `f64` encodes as its IEEE-754 bit pattern, big-endian, 8 bytes.
///
/// Floats never appear in hashing preimages (block and transaction
/// identity stays float-free); this impl exists so *configuration*
/// payloads — latency models, rate parameters — can use the same codec
/// as everything else. The bit-pattern encoding is exact and
/// deterministic, including for negative zero.
impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_be_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for f64 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = read_n(input, 8)?;
        let arr: [u8; 8] = bytes.try_into().expect("read_n returned 8 bytes");
        Ok(f64::from_bits(u64::from_be_bytes(arr)))
    }
}

impl Encode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for Digest {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = read_n(input, 32)?;
        let arr: [u8; 32] = bytes.try_into().expect("read_n returned 32 bytes");
        Ok(Digest::from_bytes(arr))
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = Vec::<u8>::decode(input)?;
        String::from_utf8(bytes).map_err(|_| DecodeError::Invalid("non-utf8 string"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        for item in self {
            item.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_varint(input)?;
        if len > MAX_LEN {
            return Err(DecodeError::LengthTooLarge(len));
        }
        let mut out = Vec::with_capacity((len as usize).min(1024));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode_to_vec();
        assert_eq!(bytes.len(), value.encoded_len(), "encoded_len mismatch");
        let back: T = decode_exact(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn varint_round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            assert_eq!(buf.len(), varint_len(v), "len for {v}");
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(u64::MAX, &mut buf);
        buf.pop();
        let mut slice = buf.as_slice();
        assert_eq!(read_varint(&mut slice), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes can't be a u64.
        let buf = [0xffu8; 11];
        let mut slice = &buf[..];
        assert!(read_varint(&mut slice).is_err());
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(true);
        round_trip(false);
        round_trip(12345u32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(String::from("hello ledger"));
        round_trip(vec![1u8, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip((7u32, String::from("pair")));
        round_trip(vec![sha256(b"a"), sha256(b"b")]);
    }

    #[test]
    fn bool_rejects_bad_tag() {
        assert_eq!(decode_exact::<bool>(&[2]), Err(DecodeError::InvalidTag(2)));
    }

    #[test]
    fn digest_round_trip() {
        round_trip(sha256(b"digest"));
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.0f64, -0.0, 1.5, -3.25, f64::MIN_POSITIVE, f64::MAX, 0.4] {
            let bytes = v.encode_to_vec();
            assert_eq!(bytes.len(), 8);
            let back: f64 = decode_exact(&bytes).expect("decode");
            assert_eq!(back.to_bits(), v.to_bits(), "bit-exact for {v}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 5u64.encode_to_vec();
        bytes.push(0);
        assert_eq!(
            decode_exact::<u64>(&bytes),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = Vec::new();
        write_varint(u64::MAX, &mut buf);
        let err = decode_exact::<Vec<u8>>(&buf).unwrap_err();
        assert!(matches!(err, DecodeError::LengthTooLarge(_)));
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        write_varint(2, &mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_exact::<String>(&buf),
            Err(DecodeError::Invalid("non-utf8 string"))
        );
    }

    #[test]
    fn u16_range_enforced() {
        let bytes = 70_000u64.encode_to_vec();
        assert!(decode_exact::<u16>(&bytes).is_err());
    }
}
