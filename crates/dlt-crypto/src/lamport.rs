//! Lamport one-time signatures.
//!
//! A Lamport signature over a 256-bit message digest reveals, for every
//! message bit, one of two secret preimages committed to by the public
//! key. Security rests solely on the preimage resistance of the
//! underlying hash (our [`sha256`](crate::sha256)), which makes the
//! scheme a clean from-scratch substitute for the ECDSA/ed25519
//! signatures real ledgers use (see DESIGN.md §2): ledger logic only
//! needs *unforgeability* and *public verifiability*, which Lamport
//! provides.
//!
//! Being one-time, Lamport keys fit the UTXO model (one fresh key per
//! output, exactly how address-reuse-avoiding Bitcoin wallets behave);
//! account chains use the many-time [`mss`](crate::mss) scheme instead.
//!
//! To keep public keys compact (a single digest rather than 16 KiB), the
//! public key here is a *commitment*: `H(pk_0,0 ‖ pk_0,1 ‖ … ‖ pk_255,1)`
//! where `pk_b,v = H(secret_b,v)`. A signature then reveals, per bit,
//! the selected secret preimage *and* the public hash of the opposite
//! slot, which lets the verifier recompute the commitment. This is the
//! standard hash-commitment packaging of Lamport's scheme.
//!
//! Key material is derived deterministically from a 32-byte seed, so a
//! keypair stores just its seed plus the cached public commitment.

use crate::codec::{Decode, DecodeError, Encode};
use crate::digest::Digest;
use crate::sha256::{sha256, Sha256};

/// Number of message bits signed (a SHA-256 digest).
pub const MSG_BITS: usize = 256;

/// Domain-separation prefixes keep the PRF, public parts and commitment
/// from colliding with each other or with other schemes in the crate.
const DOM_SECRET: &[u8] = b"lamport-secret";
const DOM_COMMIT: &[u8] = b"lamport-public";

/// Derives the secret preimage for (`bit`, `value`) from a seed.
fn secret_part(seed: &[u8; 32], bit: u16, value: u8) -> Digest {
    let mut h = Sha256::new();
    h.update(DOM_SECRET);
    h.update(seed);
    h.update(&bit.to_be_bytes());
    h.update(&[value]);
    h.finalize()
}

/// Extracts bit `index` of a digest (0 = most significant bit of byte 0).
fn bit_of(msg: &Digest, index: usize) -> u8 {
    let byte = msg.as_bytes()[index / 8];
    (byte >> (7 - (index % 8))) & 1
}

/// A Lamport one-time keypair.
///
/// # Example
///
/// ```
/// use dlt_crypto::lamport::LamportKeypair;
/// use dlt_crypto::sha256::sha256;
///
/// let keypair = LamportKeypair::from_seed([7u8; 32]);
/// let msg = sha256(b"pay 5 to carol");
/// let sig = keypair.sign(&msg);
/// assert!(sig.verify(&msg, &keypair.public_digest()));
/// ```
#[derive(Debug, Clone)]
pub struct LamportKeypair {
    seed: [u8; 32],
    public_digest: Digest,
}

impl LamportKeypair {
    /// Derives a keypair deterministically from a seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut h = Sha256::new();
        h.update(DOM_COMMIT);
        for bit in 0..MSG_BITS as u16 {
            for value in 0..2u8 {
                let pk_part = sha256(secret_part(&seed, bit, value).as_bytes());
                h.update(pk_part.as_bytes());
            }
        }
        LamportKeypair {
            seed,
            public_digest: h.finalize(),
        }
    }

    /// Generates a keypair from an RNG.
    pub fn generate<R: dlt_testkit::rng::RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed)
    }

    /// The compact commitment to the public key (what addresses hash).
    pub fn public_digest(&self) -> Digest {
        self.public_digest
    }

    /// Signs a message digest by revealing one preimage per message bit,
    /// alongside the public hash of the unrevealed slot.
    ///
    /// Signing two *different* messages with the same Lamport key
    /// reveals enough preimages to forge; callers must treat keypairs as
    /// strictly one-time (the ledgers enforce this by construction).
    pub fn sign(&self, msg: &Digest) -> LamportSignature {
        let mut revealed = Vec::with_capacity(MSG_BITS);
        let mut opposite_public = Vec::with_capacity(MSG_BITS);
        for bit in 0..MSG_BITS {
            let value = bit_of(msg, bit);
            revealed.push(secret_part(&self.seed, bit as u16, value));
            let other = secret_part(&self.seed, bit as u16, 1 - value);
            opposite_public.push(sha256(other.as_bytes()));
        }
        LamportSignature {
            revealed,
            opposite_public,
        }
    }
}

/// A Lamport signature: per message bit, the revealed secret preimage
/// and the public hash of the opposite slot (2 × 256 × 32 B = 16 KiB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportSignature {
    revealed: Vec<Digest>,
    opposite_public: Vec<Digest>,
}

impl LamportSignature {
    /// Verifies the signature against a message digest and the signer's
    /// public-key commitment.
    ///
    /// Recomputes the commitment by hashing, for every bit, the pair
    /// `(pk_bit,0, pk_bit,1)` where the slot selected by the message bit
    /// is `H(revealed)` and the other slot is taken from the signature.
    pub fn verify(&self, msg: &Digest, public_digest: &Digest) -> bool {
        if self.revealed.len() != MSG_BITS || self.opposite_public.len() != MSG_BITS {
            return false;
        }
        let mut h = Sha256::new();
        h.update(DOM_COMMIT);
        for bit in 0..MSG_BITS {
            let value = bit_of(msg, bit);
            let revealed_pk = sha256(self.revealed[bit].as_bytes());
            let (pk0, pk1) = if value == 0 {
                (revealed_pk, self.opposite_public[bit])
            } else {
                (self.opposite_public[bit], revealed_pk)
            };
            h.update(pk0.as_bytes());
            h.update(pk1.as_bytes());
        }
        h.finalize() == *public_digest
    }

    /// Encoded size of the signature in bytes (for ledger-size
    /// accounting).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for LamportSignature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.revealed.encode(out);
        self.opposite_public.encode(out);
    }
}

impl Decode for LamportSignature {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let revealed = Vec::<Digest>::decode(input)?;
        let opposite_public = Vec::<Digest>::decode(input)?;
        if revealed.len() != MSG_BITS || opposite_public.len() != MSG_BITS {
            return Err(DecodeError::Invalid("lamport signature arity"));
        }
        Ok(LamportSignature {
            revealed,
            opposite_public,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_exact;
    use dlt_testkit::rng::Xoshiro256StarStar;

    #[test]
    fn sign_verify_round_trip() {
        let kp = LamportKeypair::from_seed([1u8; 32]);
        let msg = sha256(b"message");
        let sig = kp.sign(&msg);
        assert!(sig.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = LamportKeypair::from_seed([2u8; 32]);
        let sig = kp.sign(&sha256(b"original"));
        assert!(!sig.verify(&sha256(b"forged"), &kp.public_digest()));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = LamportKeypair::from_seed([3u8; 32]);
        let kp2 = LamportKeypair::from_seed([4u8; 32]);
        let msg = sha256(b"message");
        let sig = kp1.sign(&msg);
        assert!(!sig.verify(&msg, &kp2.public_digest()));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = LamportKeypair::from_seed([5u8; 32]);
        let msg = sha256(b"message");
        let mut sig = kp.sign(&msg);
        sig.revealed[17] = sha256(b"garbage");
        assert!(!sig.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = LamportKeypair::from_seed([9u8; 32]);
        let b = LamportKeypair::from_seed([9u8; 32]);
        assert_eq!(a.public_digest(), b.public_digest());
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = LamportKeypair::from_seed([10u8; 32]);
        let b = LamportKeypair::from_seed([11u8; 32]);
        assert_ne!(a.public_digest(), b.public_digest());
    }

    #[test]
    fn generate_uses_rng() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let a = LamportKeypair::generate(&mut rng);
        let b = LamportKeypair::generate(&mut rng);
        assert_ne!(a.public_digest(), b.public_digest());
    }

    #[test]
    fn codec_round_trip() {
        let kp = LamportKeypair::from_seed([6u8; 32]);
        let msg = sha256(b"encode me");
        let sig = kp.sign(&msg);
        let bytes = sig.encode_to_vec();
        let back: LamportSignature = decode_exact(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(back.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn decode_rejects_wrong_arity() {
        let short = LamportSignature {
            revealed: vec![Digest::ZERO; 10],
            opposite_public: vec![Digest::ZERO; 10],
        };
        let bytes = short.encode_to_vec();
        assert!(decode_exact::<LamportSignature>(&bytes).is_err());
    }

    #[test]
    fn signature_size_is_16kib_plus_overhead() {
        let kp = LamportKeypair::from_seed([7u8; 32]);
        let sig = kp.sign(&sha256(b"size"));
        let size = sig.size_bytes();
        assert!(size >= 2 * 256 * 32, "size {size}");
        assert!(size < 2 * 256 * 32 + 16, "size {size}");
    }
}
