//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! Provides a streaming hasher ([`Sha256`]) and one-shot helpers
//! ([`sha256`], [`double_sha256`], [`sha256_concat`]). The
//! implementation is pure safe Rust and is validated against the FIPS
//! 180-4 / NIST test vectors in the unit tests.
//!
//! Blockchains conventionally use the *double* hash
//! `SHA-256(SHA-256(x))` for block and transaction identifiers; the DAG
//! side uses the single hash. Both are exposed here so each ledger can
//! match its reference implementation.

use crate::digest::Digest;

/// SHA-256 round constants: the first 32 bits of the fractional parts of
/// the cube roots of the first 64 prime numbers (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A streaming SHA-256 hasher.
///
/// # Example
///
/// ```
/// use dlt_crypto::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let digest = hasher.finalize();
/// assert_eq!(
///     digest.to_hex(),
///     "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes processed so far (excluding what is
    /// buffered).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        // Fill a partially-filled buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.len += 64;
                self.buf_len = 0;
            }
        }
        // Process whole blocks directly from the input.
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            self.len += 64;
            data = &data[64..];
        }
        // Buffer the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash computation and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let total_bits = (self.len + self.buf_len as u64).wrapping_mul(8);
        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Pad with zeros until the message length is 56 mod 64, then the
        // 64-bit big-endian bit length.
        let rem = (self.len as usize + self.buf_len + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        let mut tail = Vec::with_capacity(1 + zeros + 8);
        tail.extend_from_slice(&pad[..1 + zeros]);
        tail.extend_from_slice(&total_bits.to_be_bytes());
        self.update(&tail);
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest::from_bytes(out)
    }

    /// The SHA-256 compression function over one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Computes `SHA-256(data)` in one shot.
///
/// # Example
///
/// ```
/// use dlt_crypto::sha256::sha256;
/// assert_eq!(
///     sha256(b"abc").to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Computes the blockchain-conventional double hash `SHA-256(SHA-256(data))`.
pub fn double_sha256(data: &[u8]) -> Digest {
    sha256(sha256(data).as_bytes())
}

/// Hashes the concatenation of two digests — the Merkle-tree parent rule.
pub fn sha256_concat(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // FIPS 180-4 test vector for a 448-bit message (forces padding
        // into a second block).
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn streaming_many_small_updates() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn double_hash_is_hash_of_hash() {
        let d = double_sha256(b"block");
        assert_eq!(d, sha256(sha256(b"block").as_bytes()));
    }

    #[test]
    fn concat_matches_manual() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        let mut buf = Vec::new();
        buf.extend_from_slice(a.as_bytes());
        buf.extend_from_slice(b.as_bytes());
        assert_eq!(sha256_concat(&a, &b), sha256(&buf));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Known-answer computation via streaming consistency: lengths
        // 55, 56, 57, 63, 64, 65 hit every padding branch.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129] {
            let data = vec![0xabu8; len];
            let one = sha256(&data);
            let mut h = Sha256::new();
            for byte in &data {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }
}
