//! A Merkle Patricia Trie with a hash-addressed node store.
//!
//! Ethereum keeps its global state (account → nonce/balance/…) in a
//! Merkle Patricia Trie whose root hash is committed in every block
//! header (paper §II-A, §V-A). Because nodes are addressed by their
//! hash, consecutive states share all unchanged subtrees — the per-block
//! *state delta* is exactly the set of new nodes. That property is what
//! makes the paper's two Ethereum pruning strategies expressible:
//!
//! * **Delta pruning:** forget old roots and [`TrieDb::collect_garbage`]
//!   everything unreachable from the roots still of interest.
//! * **Fast sync:** copy the node closure of a recent "pivot" root
//!   ([`TrieDb::extract_reachable`]) instead of replaying history.
//!
//! The trie maps arbitrary byte keys to byte values. Keys are converted
//! to nibble (4-bit) paths; nodes are `Leaf`, `Extension` or `Branch`
//! as in Ethereum's design, with path-copying updates so every version
//! remains readable by its root.
//!
//! # Example
//!
//! ```
//! use dlt_crypto::trie::TrieDb;
//!
//! let mut db = TrieDb::new();
//! let v0 = TrieDb::EMPTY_ROOT;
//! let v1 = db.insert(v0, b"alice", b"100".to_vec());
//! let v2 = db.insert(v1, b"bob", b"50".to_vec());
//! // Both versions stay readable:
//! assert_eq!(db.get(v1, b"bob"), None);
//! assert_eq!(db.get(v2, b"bob"), Some(&b"50"[..]));
//! assert_eq!(db.get(v2, b"alice"), Some(&b"100"[..]));
//! ```

use std::collections::{HashMap, HashSet, VecDeque};

use crate::codec::{Decode, DecodeError, Encode};
use crate::digest::Digest;
use crate::sha256::sha256;

/// Converts a byte key into its nibble path (high nibble first).
fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Length of the shared prefix of two nibble slices.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A trie node. Paths are nibble sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Terminal node holding the remainder of a key path and its value.
    Leaf {
        /// Remaining nibbles of the key below this node's position.
        path: Vec<u8>,
        /// The stored value.
        value: Vec<u8>,
    },
    /// Path-compression node: a shared nibble run above a single child.
    Extension {
        /// The compressed nibble run (never empty).
        path: Vec<u8>,
        /// Hash of the child node (always a `Branch`).
        child: Digest,
    },
    /// 16-way fan-out node, optionally holding a value for the key that
    /// ends exactly here.
    Branch {
        /// Child node hashes indexed by next nibble.
        children: Box<[Option<Digest>; 16]>,
        /// Value for a key terminating at this node.
        value: Option<Vec<u8>>,
    },
}

impl Encode for Node {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Node::Leaf { path, value } => {
                out.push(0);
                path.encode(out);
                value.encode(out);
            }
            Node::Extension { path, child } => {
                out.push(1);
                path.encode(out);
                child.encode(out);
            }
            Node::Branch { children, value } => {
                out.push(2);
                for child in children.iter() {
                    child.encode(out);
                }
                value.encode(out);
            }
        }
    }
}

impl Decode for Node {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(Node::Leaf {
                path: Vec::<u8>::decode(input)?,
                value: Vec::<u8>::decode(input)?,
            }),
            1 => Ok(Node::Extension {
                path: Vec::<u8>::decode(input)?,
                child: Digest::decode(input)?,
            }),
            2 => {
                let mut children: [Option<Digest>; 16] = Default::default();
                for slot in children.iter_mut() {
                    *slot = Option::<Digest>::decode(input)?;
                }
                Ok(Node::Branch {
                    children: Box::new(children),
                    value: Option::<Vec<u8>>::decode(input)?,
                })
            }
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Node {
    /// The node's content hash (its address in the store).
    pub fn hash(&self) -> Digest {
        sha256(&self.encode_to_vec())
    }
}

/// A hash-addressed store of trie nodes holding any number of trie
/// versions (roots).
///
/// All mutating operations are *path-copying*: they never modify or
/// remove existing nodes, they only add new ones and return the new
/// root. Old roots therefore remain fully readable until explicitly
/// garbage-collected.
#[derive(Debug, Clone, Default)]
pub struct TrieDb {
    nodes: HashMap<Digest, Node>,
}

impl TrieDb {
    /// The root digest of the empty trie.
    pub const EMPTY_ROOT: Digest = Digest::ZERO;

    /// Creates an empty node store.
    pub fn new() -> Self {
        TrieDb::default()
    }

    /// Number of nodes currently stored (across all versions).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total encoded size of all stored nodes in bytes — the measure
    /// the ledger-size experiments use for "state database size".
    pub fn total_bytes(&self) -> usize {
        self.nodes.values().map(Encode::encoded_len).sum()
    }

    /// Fetches a node by hash.
    pub fn node(&self, hash: &Digest) -> Option<&Node> {
        self.nodes.get(hash)
    }

    fn put(&mut self, node: Node) -> Digest {
        let hash = node.hash();
        self.nodes.entry(hash).or_insert(node);
        hash
    }

    /// Looks up `key` in the trie version identified by `root`.
    pub fn get(&self, root: Digest, key: &[u8]) -> Option<&[u8]> {
        if root == Self::EMPTY_ROOT {
            return None;
        }
        let mut nibbles = to_nibbles(key);
        let mut current = root;
        loop {
            let node = self.nodes.get(&current)?;
            match node {
                Node::Leaf { path, value } => {
                    return if *path == nibbles {
                        Some(value.as_slice())
                    } else {
                        None
                    };
                }
                Node::Extension { path, child } => {
                    if nibbles.len() < path.len() || nibbles[..path.len()] != path[..] {
                        return None;
                    }
                    nibbles.drain(..path.len());
                    current = *child;
                }
                Node::Branch { children, value } => {
                    if nibbles.is_empty() {
                        return value.as_deref();
                    }
                    let idx = nibbles.remove(0) as usize;
                    current = children[idx]?;
                }
            }
        }
    }

    /// Inserts (or replaces) `key → value` in version `root`, returning
    /// the new version's root.
    pub fn insert(&mut self, root: Digest, key: &[u8], value: Vec<u8>) -> Digest {
        let nibbles = to_nibbles(key);
        let new_root = self.insert_at(root, &nibbles, value);
        debug_assert!(new_root != Self::EMPTY_ROOT);
        new_root
    }

    fn insert_at(&mut self, node_hash: Digest, path: &[u8], value: Vec<u8>) -> Digest {
        if node_hash == Self::EMPTY_ROOT {
            return self.put(Node::Leaf {
                path: path.to_vec(),
                value,
            });
        }
        let node = self
            .nodes
            .get(&node_hash)
            .cloned()
            .expect("dangling trie node reference");
        match node {
            Node::Leaf {
                path: leaf_path,
                value: leaf_value,
            } => {
                if leaf_path == path {
                    return self.put(Node::Leaf {
                        path: leaf_path,
                        value,
                    });
                }
                let cp = common_prefix_len(&leaf_path, path);
                // Split into a branch at the divergence point.
                let mut children: [Option<Digest>; 16] = Default::default();
                let mut branch_value: Option<Vec<u8>> = None;

                let old_rest = &leaf_path[cp..];
                if old_rest.is_empty() {
                    branch_value = Some(leaf_value);
                } else {
                    let child = self.put(Node::Leaf {
                        path: old_rest[1..].to_vec(),
                        value: leaf_value,
                    });
                    children[old_rest[0] as usize] = Some(child);
                }

                let new_rest = &path[cp..];
                if new_rest.is_empty() {
                    branch_value = Some(value);
                } else {
                    let child = self.put(Node::Leaf {
                        path: new_rest[1..].to_vec(),
                        value,
                    });
                    children[new_rest[0] as usize] = Some(child);
                }

                let branch = self.put(Node::Branch {
                    children: Box::new(children),
                    value: branch_value,
                });
                if cp > 0 {
                    self.put(Node::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })
                } else {
                    branch
                }
            }
            Node::Extension {
                path: ext_path,
                child,
            } => {
                let cp = common_prefix_len(&ext_path, path);
                if cp == ext_path.len() {
                    // Fully consumed the extension; recurse into child.
                    let new_child = self.insert_at(child, &path[cp..], value);
                    return self.put(Node::Extension {
                        path: ext_path,
                        child: new_child,
                    });
                }
                // Split the extension at the divergence point.
                let mut children: [Option<Digest>; 16] = Default::default();
                let mut branch_value: Option<Vec<u8>> = None;

                // Remainder of the old extension below the split.
                let old_rest = &ext_path[cp..];
                let old_child = if old_rest.len() == 1 {
                    child
                } else {
                    self.put(Node::Extension {
                        path: old_rest[1..].to_vec(),
                        child,
                    })
                };
                children[old_rest[0] as usize] = Some(old_child);

                // The inserted key's remainder.
                let new_rest = &path[cp..];
                if new_rest.is_empty() {
                    branch_value = Some(value);
                } else {
                    let leaf = self.put(Node::Leaf {
                        path: new_rest[1..].to_vec(),
                        value,
                    });
                    children[new_rest[0] as usize] = Some(leaf);
                }

                let branch = self.put(Node::Branch {
                    children: Box::new(children),
                    value: branch_value,
                });
                if cp > 0 {
                    self.put(Node::Extension {
                        path: path[..cp].to_vec(),
                        child: branch,
                    })
                } else {
                    branch
                }
            }
            Node::Branch {
                mut children,
                value: branch_value,
            } => {
                if path.is_empty() {
                    return self.put(Node::Branch {
                        children,
                        value: Some(value),
                    });
                }
                let idx = path[0] as usize;
                let new_child = match children[idx] {
                    Some(existing) => self.insert_at(existing, &path[1..], value),
                    None => self.put(Node::Leaf {
                        path: path[1..].to_vec(),
                        value,
                    }),
                };
                children[idx] = Some(new_child);
                self.put(Node::Branch {
                    children,
                    value: branch_value,
                })
            }
        }
    }

    /// Removes `key` from version `root`, returning the new root
    /// (`EMPTY_ROOT` if the trie became empty, or the same root if the
    /// key was absent).
    pub fn remove(&mut self, root: Digest, key: &[u8]) -> Digest {
        if root == Self::EMPTY_ROOT {
            return root;
        }
        let nibbles = to_nibbles(key);
        match self.remove_at(root, &nibbles) {
            RemoveOutcome::Unchanged => root,
            RemoveOutcome::Removed(Some(node)) => self.put(node),
            RemoveOutcome::Removed(None) => Self::EMPTY_ROOT,
        }
    }

    fn remove_at(&mut self, node_hash: Digest, path: &[u8]) -> RemoveOutcome {
        let node = self
            .nodes
            .get(&node_hash)
            .cloned()
            .expect("dangling trie node reference");
        match node {
            Node::Leaf {
                path: leaf_path, ..
            } => {
                if leaf_path == path {
                    RemoveOutcome::Removed(None)
                } else {
                    RemoveOutcome::Unchanged
                }
            }
            Node::Extension {
                path: ext_path,
                child,
            } => {
                if path.len() < ext_path.len() || path[..ext_path.len()] != ext_path[..] {
                    return RemoveOutcome::Unchanged;
                }
                match self.remove_at(child, &path[ext_path.len()..]) {
                    RemoveOutcome::Unchanged => RemoveOutcome::Unchanged,
                    RemoveOutcome::Removed(rest) => RemoveOutcome::Removed(
                        rest.map(|child_node| self.merge_extension(ext_path, child_node)),
                    ),
                }
            }
            Node::Branch {
                mut children,
                value,
            } => {
                if path.is_empty() {
                    if value.is_none() {
                        return RemoveOutcome::Unchanged;
                    }
                    return RemoveOutcome::Removed(self.normalise_branch(children, None));
                }
                let idx = path[0] as usize;
                let Some(child) = children[idx] else {
                    return RemoveOutcome::Unchanged;
                };
                match self.remove_at(child, &path[1..]) {
                    RemoveOutcome::Unchanged => RemoveOutcome::Unchanged,
                    RemoveOutcome::Removed(rest) => {
                        children[idx] = rest.map(|node| self.put(node));
                        RemoveOutcome::Removed(self.normalise_branch(children, value))
                    }
                }
            }
        }
    }

    /// Prepends `prefix` onto a node that a collapsed branch left
    /// behind, producing a merged node.
    fn merge_extension(&mut self, mut prefix: Vec<u8>, node: Node) -> Node {
        match node {
            Node::Leaf { path, value } => {
                prefix.extend_from_slice(&path);
                Node::Leaf {
                    path: prefix,
                    value,
                }
            }
            Node::Extension { path, child } => {
                prefix.extend_from_slice(&path);
                Node::Extension {
                    path: prefix,
                    child,
                }
            }
            branch @ Node::Branch { .. } => {
                let child = self.put(branch);
                Node::Extension {
                    path: prefix,
                    child,
                }
            }
        }
    }

    /// Rebuilds a branch after a removal, collapsing it when it no
    /// longer justifies a 16-way node.
    fn normalise_branch(
        &mut self,
        children: Box<[Option<Digest>; 16]>,
        value: Option<Vec<u8>>,
    ) -> Option<Node> {
        let child_count = children.iter().filter(|c| c.is_some()).count();
        match (child_count, &value) {
            (0, None) => None,
            (0, Some(_)) => Some(Node::Leaf {
                path: Vec::new(),
                value: value.expect("checked Some"),
            }),
            (1, None) => {
                let (idx, child_hash) = children
                    .iter()
                    .enumerate()
                    .find_map(|(i, c)| c.map(|h| (i, h)))
                    .expect("exactly one child");
                let child_node = self
                    .nodes
                    .get(&child_hash)
                    .cloned()
                    .expect("dangling trie node reference");
                Some(self.merge_extension(vec![idx as u8], child_node))
            }
            _ => Some(Node::Branch { children, value }),
        }
    }

    /// Iterates all `(key, value)` pairs reachable from `root`, in
    /// lexicographic key order.
    pub fn iter(&self, root: Digest) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        if root != Self::EMPTY_ROOT {
            self.walk(root, &mut Vec::new(), &mut out);
        }
        out
    }

    fn walk(&self, node_hash: Digest, prefix: &mut Vec<u8>, out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
        let Some(node) = self.nodes.get(&node_hash) else {
            return;
        };
        match node {
            Node::Leaf { path, value } => {
                let mut full = prefix.clone();
                full.extend_from_slice(path);
                out.push((from_nibbles(&full), value.clone()));
            }
            Node::Extension { path, child } => {
                let len = prefix.len();
                prefix.extend_from_slice(path);
                self.walk(*child, prefix, out);
                prefix.truncate(len);
            }
            Node::Branch { children, value } => {
                if let Some(v) = value {
                    out.push((from_nibbles(prefix), v.clone()));
                }
                let children = children.clone();
                for (i, child) in children.iter().enumerate() {
                    if let Some(c) = child {
                        prefix.push(i as u8);
                        self.walk(*c, prefix, out);
                        prefix.pop();
                    }
                }
            }
        }
    }

    /// The set of node hashes reachable from `root`.
    pub fn reachable(&self, root: Digest) -> HashSet<Digest> {
        let mut seen = HashSet::new();
        if root == Self::EMPTY_ROOT {
            return seen;
        }
        let mut queue = VecDeque::from([root]);
        while let Some(hash) = queue.pop_front() {
            if !seen.insert(hash) {
                continue;
            }
            match self.nodes.get(&hash) {
                Some(Node::Extension { child, .. }) => queue.push_back(*child),
                Some(Node::Branch { children, .. }) => {
                    queue.extend(children.iter().flatten().copied());
                }
                _ => {}
            }
        }
        seen
    }

    /// Drops every node not reachable from any of `live_roots` — the
    /// "discard historical state deltas" pruning of paper §V-A.
    ///
    /// Returns the number of nodes collected.
    pub fn collect_garbage(&mut self, live_roots: &[Digest]) -> usize {
        let mut live = HashSet::new();
        for &root in live_roots {
            live.extend(self.reachable(root));
        }
        let before = self.nodes.len();
        self.nodes.retain(|hash, _| live.contains(hash));
        before - self.nodes.len()
    }

    /// Copies the node closure of `root` into a fresh store — the state
    /// download step of Ethereum's fast sync (paper §V-A). Every copied
    /// node is re-verified against its hash address.
    ///
    /// Returns `None` if the closure is incomplete (a node is missing)
    /// or a node fails hash verification.
    pub fn extract_reachable(&self, root: Digest) -> Option<TrieDb> {
        let mut out = TrieDb::new();
        if root == Self::EMPTY_ROOT {
            return Some(out);
        }
        for hash in self.reachable(root) {
            let node = self.nodes.get(&hash)?;
            if node.hash() != hash {
                return None;
            }
            out.nodes.insert(hash, node.clone());
        }
        Some(out)
    }
}

/// Result of a recursive removal.
enum RemoveOutcome {
    /// Key was absent; nothing changed.
    Unchanged,
    /// Key removed; the subtree collapsed to the inline node (or
    /// vanished entirely).
    Removed(Option<Node>),
}

/// Converts a (complete) nibble path back into bytes.
fn from_nibbles(nibbles: &[u8]) -> Vec<u8> {
    debug_assert!(nibbles.len().is_multiple_of(2), "keys are whole bytes");
    nibbles
        .chunks_exact(2)
        .map(|pair| (pair[0] << 4) | pair[1])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i}").into_bytes(),
            format!("value-{i}").into_bytes(),
        )
    }

    #[test]
    fn empty_get_returns_none() {
        let db = TrieDb::new();
        assert_eq!(db.get(TrieDb::EMPTY_ROOT, b"missing"), None);
    }

    #[test]
    fn single_insert_get() {
        let mut db = TrieDb::new();
        let root = db.insert(TrieDb::EMPTY_ROOT, b"a", b"1".to_vec());
        assert_eq!(db.get(root, b"a"), Some(&b"1"[..]));
        assert_eq!(db.get(root, b"b"), None);
    }

    #[test]
    fn overwrite_value() {
        let mut db = TrieDb::new();
        let r1 = db.insert(TrieDb::EMPTY_ROOT, b"a", b"1".to_vec());
        let r2 = db.insert(r1, b"a", b"2".to_vec());
        assert_ne!(r1, r2);
        assert_eq!(db.get(r1, b"a"), Some(&b"1"[..]));
        assert_eq!(db.get(r2, b"a"), Some(&b"2"[..]));
    }

    #[test]
    fn many_inserts_all_readable() {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for i in 0..200 {
            let (k, v) = kv(i);
            root = db.insert(root, &k, v);
        }
        for i in 0..200 {
            let (k, v) = kv(i);
            assert_eq!(db.get(root, &k), Some(v.as_slice()), "key {i}");
        }
        assert_eq!(db.get(root, b"key-200"), None);
    }

    #[test]
    fn prefix_keys_coexist() {
        // Keys where one is a prefix of another exercise branch values.
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        root = db.insert(root, b"ab", b"short".to_vec());
        root = db.insert(root, b"abcd", b"long".to_vec());
        root = db.insert(root, b"abce", b"long2".to_vec());
        assert_eq!(db.get(root, b"ab"), Some(&b"short"[..]));
        assert_eq!(db.get(root, b"abcd"), Some(&b"long"[..]));
        assert_eq!(db.get(root, b"abce"), Some(&b"long2"[..]));
        assert_eq!(db.get(root, b"abc"), None);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let keys: Vec<(Vec<u8>, Vec<u8>)> = (0..50).map(kv).collect();
        let mut db1 = TrieDb::new();
        let mut r1 = TrieDb::EMPTY_ROOT;
        for (k, v) in &keys {
            r1 = db1.insert(r1, k, v.clone());
        }
        let mut db2 = TrieDb::new();
        let mut r2 = TrieDb::EMPTY_ROOT;
        for (k, v) in keys.iter().rev() {
            r2 = db2.insert(r2, k, v.clone());
        }
        assert_eq!(r1, r2, "root hash must be insertion-order independent");
    }

    #[test]
    fn old_versions_stay_readable() {
        let mut db = TrieDb::new();
        let r1 = db.insert(TrieDb::EMPTY_ROOT, b"alice", b"100".to_vec());
        let r2 = db.insert(r1, b"alice", b"90".to_vec());
        let r3 = db.insert(r2, b"bob", b"10".to_vec());
        assert_eq!(db.get(r1, b"alice"), Some(&b"100"[..]));
        assert_eq!(db.get(r2, b"alice"), Some(&b"90"[..]));
        assert_eq!(db.get(r3, b"alice"), Some(&b"90"[..]));
        assert_eq!(db.get(r3, b"bob"), Some(&b"10"[..]));
        assert_eq!(db.get(r2, b"bob"), None);
    }

    #[test]
    fn remove_missing_key_is_noop() {
        let mut db = TrieDb::new();
        let root = db.insert(TrieDb::EMPTY_ROOT, b"a", b"1".to_vec());
        assert_eq!(db.remove(root, b"zz"), root);
        assert_eq!(db.remove(TrieDb::EMPTY_ROOT, b"zz"), TrieDb::EMPTY_ROOT);
    }

    #[test]
    fn remove_only_key_empties_trie() {
        let mut db = TrieDb::new();
        let root = db.insert(TrieDb::EMPTY_ROOT, b"a", b"1".to_vec());
        assert_eq!(db.remove(root, b"a"), TrieDb::EMPTY_ROOT);
    }

    #[test]
    fn remove_restores_previous_root() {
        // Because updates are path-copying and structural, deleting the
        // key just inserted must restore the exact previous root hash.
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for i in 0..30 {
            let (k, v) = kv(i);
            root = db.insert(root, &k, v);
        }
        let before = root;
        let with_extra = db.insert(root, b"extra", b"x".to_vec());
        let after = db.remove(with_extra, b"extra");
        assert_eq!(after, before);
    }

    #[test]
    fn remove_each_key_in_turn() {
        let keys: Vec<(Vec<u8>, Vec<u8>)> = (0..40).map(kv).collect();
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for (k, v) in &keys {
            root = db.insert(root, k, v.clone());
        }
        for (i, (k, _)) in keys.iter().enumerate() {
            root = db.remove(root, k);
            assert_eq!(db.get(root, k), None, "removed key {i}");
            for (k2, v2) in keys.iter().skip(i + 1) {
                assert_eq!(db.get(root, k2), Some(v2.as_slice()));
            }
        }
        assert_eq!(root, TrieDb::EMPTY_ROOT);
    }

    #[test]
    fn iter_returns_sorted_pairs() {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for k in ["delta", "alpha", "charlie", "bravo"] {
            root = db.insert(root, k.as_bytes(), k.to_uppercase().into_bytes());
        }
        let items = db.iter(root);
        let keys: Vec<String> = items
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, ["alpha", "bravo", "charlie", "delta"]);
    }

    #[test]
    fn gc_drops_only_unreachable() {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        let mut roots = Vec::new();
        for i in 0..20 {
            let (k, v) = kv(i);
            root = db.insert(root, &k, v);
            roots.push(root);
        }
        let total = db.node_count();
        let latest = *roots.last().unwrap();
        let collected = db.collect_garbage(&[latest]);
        assert!(collected > 0);
        assert_eq!(db.node_count(), total - collected);
        // Latest version fully intact:
        for i in 0..20 {
            let (k, v) = kv(i);
            assert_eq!(db.get(latest, &k), Some(v.as_slice()));
        }
        assert_eq!(db.node_count(), db.reachable(latest).len());
    }

    #[test]
    fn gc_with_multiple_live_roots() {
        let mut db = TrieDb::new();
        let r1 = db.insert(TrieDb::EMPTY_ROOT, b"a", b"1".to_vec());
        let r2 = db.insert(r1, b"b", b"2".to_vec());
        let r3 = db.insert(r2, b"c", b"3".to_vec());
        db.collect_garbage(&[r1, r3]);
        assert_eq!(db.get(r1, b"a"), Some(&b"1"[..]));
        assert_eq!(db.get(r3, b"c"), Some(&b"3"[..]));
        let _ = r2; // r2 may share all nodes with r1/r3 ancestry
    }

    #[test]
    fn extract_reachable_is_complete_and_verified() {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for i in 0..50 {
            let (k, v) = kv(i);
            root = db.insert(root, &k, v);
        }
        let synced = db.extract_reachable(root).expect("complete closure");
        for i in 0..50 {
            let (k, v) = kv(i);
            assert_eq!(synced.get(root, &k), Some(v.as_slice()));
        }
        assert_eq!(synced.node_count(), db.reachable(root).len());
        assert!(synced.node_count() <= db.node_count());
    }

    #[test]
    fn extract_detects_missing_node() {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for i in 0..10 {
            let (k, v) = kv(i);
            root = db.insert(root, &k, v);
        }
        // Corrupt the store by dropping one reachable node.
        let victim = *db
            .reachable(root)
            .iter()
            .find(|h| **h != root)
            .expect("multi-node trie");
        db.nodes.remove(&victim);
        assert!(db.extract_reachable(root).is_none());
    }

    #[test]
    fn structural_sharing_reduces_delta() {
        let mut db = TrieDb::new();
        let mut root = TrieDb::EMPTY_ROOT;
        for i in 0..100 {
            let (k, v) = kv(i);
            root = db.insert(root, &k, v);
        }
        let before_nodes = db.reachable(root).len();
        let new_root = db.insert(root, b"key-5", b"updated".to_vec());
        let delta: Vec<_> = db
            .reachable(new_root)
            .difference(&db.reachable(root))
            .copied()
            .collect();
        // The delta must be a path, not the whole trie.
        assert!(
            delta.len() < before_nodes / 4,
            "delta {} vs total {}",
            delta.len(),
            before_nodes
        );
    }

    #[test]
    fn node_codec_round_trip() {
        use crate::codec::decode_exact;
        let leaf = Node::Leaf {
            path: vec![1, 2, 3],
            value: b"v".to_vec(),
        };
        let ext = Node::Extension {
            path: vec![4, 5],
            child: sha256(b"child"),
        };
        let mut children: [Option<Digest>; 16] = Default::default();
        children[3] = Some(sha256(b"c3"));
        children[15] = Some(sha256(b"c15"));
        let branch = Node::Branch {
            children: Box::new(children),
            value: Some(b"bv".to_vec()),
        };
        for node in [leaf, ext, branch] {
            let back: Node = decode_exact(&node.encode_to_vec()).unwrap();
            assert_eq!(back, node);
            assert_eq!(back.hash(), node.hash());
        }
    }

    #[test]
    fn total_bytes_grows_with_content() {
        let mut db = TrieDb::new();
        assert_eq!(db.total_bytes(), 0);
        let mut root = TrieDb::EMPTY_ROOT;
        root = db.insert(root, b"k", vec![0u8; 100]);
        let one = db.total_bytes();
        assert!(one > 100);
        let _ = db.insert(root, b"k2", vec![0u8; 100]);
        assert!(db.total_bytes() > one);
    }
}
