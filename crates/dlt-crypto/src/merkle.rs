//! Binary Merkle trees with inclusion proofs.
//!
//! Blockchains hash the transactions of a block into a Merkle tree and
//! store only the root in the header (paper §II-A, Fig. 1); light
//! verification and Plasma-style child-chain commitments rely on the
//! inclusion proofs. The tree here uses the Bitcoin convention of
//! duplicating the last node of an odd level.

use crate::codec::{Decode, DecodeError, Encode};
use crate::digest::Digest;
use crate::sha256::sha256_concat;

/// A fully materialised binary Merkle tree over a list of leaf digests.
///
/// Levels are stored bottom-up: `levels[0]` are the leaves, the last
/// level is the single root.
///
/// # Example
///
/// ```
/// use dlt_crypto::merkle::MerkleTree;
/// use dlt_crypto::sha256::sha256;
///
/// let leaves: Vec<_> = (0..5u8).map(|i| sha256(&[i])).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// for (i, leaf) in leaves.iter().enumerate() {
///     let proof = tree.prove(i).unwrap();
///     assert!(proof.verify(&tree.root(), leaf));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds a tree from leaf digests.
    ///
    /// An empty leaf list produces the conventional "empty root"
    /// [`Digest::ZERO`] (real chains never have empty blocks thanks to
    /// the coinbase transaction, but the case must not panic).
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        let leaf_count = leaves.len();
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![Digest::ZERO]],
                leaf_count,
            };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                // Bitcoin convention: duplicate the last node of an odd
                // level.
                let right = pair.get(1).unwrap_or(left);
                next.push(sha256_concat(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels, leaf_count }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The leaves the tree was built from.
    pub fn leaves(&self) -> &[Digest] {
        &self.levels[0]
    }

    /// Produces an inclusion proof for the leaf at `index`, or `None`
    /// if the index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::with_capacity(self.levels.len());
        let mut pos = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_pos = pos ^ 1;
            // Odd level: the sibling of a trailing node is itself.
            let sibling = *level.get(sibling_pos).unwrap_or(&level[pos]);
            path.push(ProofStep {
                sibling,
                sibling_on_left: sibling_pos < pos,
            });
            pos /= 2;
        }
        Some(MerkleProof { index, path })
    }
}

/// One step of a Merkle proof: a sibling digest and its side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling node's digest.
    pub sibling: Digest,
    /// Whether the sibling sits to the left of the running hash.
    pub sibling_on_left: bool,
}

/// An inclusion proof: the authentication path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Authentication path, bottom-up.
    pub path: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verifies that `leaf` is included under `root` at this proof's
    /// position.
    pub fn verify(&self, root: &Digest, leaf: &Digest) -> bool {
        *root == self.compute_root(leaf)
    }

    /// Folds the authentication path over `leaf`, returning the implied
    /// root. Exposed so [`mss`](crate::mss) can compare it directly.
    pub fn compute_root(&self, leaf: &Digest) -> Digest {
        let mut acc = *leaf;
        for step in &self.path {
            acc = if step.sibling_on_left {
                sha256_concat(&step.sibling, &acc)
            } else {
                sha256_concat(&acc, &step.sibling)
            };
        }
        acc
    }

    /// Proof size in bytes when encoded (for light-client accounting).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for ProofStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sibling.encode(out);
        self.sibling_on_left.encode(out);
    }
    fn encoded_len(&self) -> usize {
        33
    }
}

impl Decode for ProofStep {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ProofStep {
            sibling: Digest::decode(input)?,
            sibling_on_left: bool::decode(input)?,
        })
    }
}

impl Encode for MerkleProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.path.encode(out);
    }
}

impl Decode for MerkleProof {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(MerkleProof {
            index: usize::decode(input)?,
            path: Vec::<ProofStep>::decode(input)?,
        })
    }
}

/// Computes just the Merkle root of a leaf list without materialising
/// the tree (the common case when validating an incoming block).
pub fn merkle_root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return Digest::ZERO;
    }
    let mut level = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = &pair[0];
            let right = pair.get(1).unwrap_or(left);
            next.push(sha256_concat(left, right));
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_exact;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| sha256(&(i as u64).to_be_bytes())).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::from_leaves(l.clone());
        assert_eq!(tree.root(), l[0]);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::from_leaves(vec![]);
        assert_eq!(tree.root(), Digest::ZERO);
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn two_leaves_root_is_concat_hash() {
        let l = leaves(2);
        let tree = MerkleTree::from_leaves(l.clone());
        assert_eq!(tree.root(), sha256_concat(&l[0], &l[1]));
    }

    #[test]
    fn odd_level_duplicates_last() {
        let l = leaves(3);
        let tree = MerkleTree::from_leaves(l.clone());
        let left = sha256_concat(&l[0], &l[1]);
        let right = sha256_concat(&l[2], &l[2]);
        assert_eq!(tree.root(), sha256_concat(&left, &right));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_positions() {
        for n in 1..=17 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
            assert!(tree.prove(n).is_none());
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), &l[4]));
        assert!(!proof.verify(&tree.root(), &sha256(b"not a leaf")));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&sha256(b"bad root"), &l[3]));
    }

    #[test]
    fn tampering_any_step_breaks_proof() {
        let l = leaves(16);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(5).unwrap();
        for step in 0..proof.path.len() {
            let mut bad = proof.clone();
            bad.path[step].sibling = sha256(b"tampered");
            assert!(!bad.verify(&tree.root(), &l[5]), "step {step}");
        }
    }

    #[test]
    fn merkle_root_matches_tree() {
        for n in 0..20 {
            let l = leaves(n);
            assert_eq!(merkle_root(&l), MerkleTree::from_leaves(l.clone()).root());
        }
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let l = leaves(7);
        let base = merkle_root(&l);
        for i in 0..l.len() {
            let mut changed = l.clone();
            changed[i] = sha256(b"mutated");
            assert_ne!(merkle_root(&changed), base, "leaf {i}");
        }
    }

    #[test]
    fn proof_codec_round_trip() {
        let l = leaves(9);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(8).unwrap();
        let back: MerkleProof = decode_exact(&proof.encode_to_vec()).unwrap();
        assert_eq!(back, proof);
        assert!(back.verify(&tree.root(), &l[8]));
    }

    #[test]
    fn proof_length_is_logarithmic() {
        let tree = MerkleTree::from_leaves(leaves(1024));
        let proof = tree.prove(77).unwrap();
        assert_eq!(proof.path.len(), 10);
        assert!(proof.size_bytes() < 11 * 33 + 8);
    }
}
