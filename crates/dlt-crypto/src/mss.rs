//! A Merkle signature scheme (MSS): many-time signatures from one-time
//! keys.
//!
//! An account on a ledger signs many blocks with the same identity; a
//! one-time scheme alone cannot do that. MSS (the ancestor of XMSS)
//! builds a Merkle tree whose leaves are the public keys of `2^h`
//! [WOTS](crate::wots) keypairs. The account's public key is the tree
//! root; signature *i* consists of the WOTS signature under leaf key
//! *i* plus the authentication path proving that leaf key belongs to the
//! root.
//!
//! The keypair tracks which leaves are spent; [`MssKeypair::sign`]
//! returns an error once all `2^h` leaves are used, making accidental
//! one-time-key reuse impossible by construction.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode};
use crate::digest::Digest;
use crate::merkle::{MerkleProof, MerkleTree};
use crate::sha256::Sha256;
use crate::wots::{WotsKeypair, WotsSignature};

/// Default tree height: 2⁶ = 64 signatures per account, enough for the
/// simulated workloads while keeping keygen fast.
pub const DEFAULT_HEIGHT: u32 = 6;

/// Derives the WOTS seed for leaf `index` from the master seed.
fn leaf_seed(seed: &[u8; 32], index: u32) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"mss-leaf");
    h.update(seed);
    h.update(&index.to_be_bytes());
    h.finalize().into_bytes()
}

/// A many-time Merkle signature keypair.
///
/// # Example
///
/// ```
/// use dlt_crypto::mss::MssKeypair;
/// use dlt_crypto::sha256::sha256;
///
/// # fn main() -> Result<(), dlt_crypto::mss::KeyExhausted> {
/// let mut kp = MssKeypair::from_seed([1u8; 32], 3); // 8 signatures
/// let public = kp.public_digest();
/// let sig_a = kp.sign(&sha256(b"block 1"))?;
/// let sig_b = kp.sign(&sha256(b"block 2"))?;
/// assert!(sig_a.verify(&sha256(b"block 1"), &public));
/// assert!(sig_b.verify(&sha256(b"block 2"), &public));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MssKeypair {
    seed: [u8; 32],
    height: u32,
    tree: MerkleTree,
    next_leaf: u32,
}

impl MssKeypair {
    /// Derives a keypair with `2^height` one-time leaf keys from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (keygen cost grows as `2^height`; 65 536
    /// leaf keys is already beyond any simulated account's needs).
    pub fn from_seed(seed: [u8; 32], height: u32) -> Self {
        assert!(height <= 16, "MSS height {height} too large");
        let leaf_count = 1u32 << height;
        let leaves: Vec<Digest> = (0..leaf_count)
            .map(|i| WotsKeypair::from_seed(leaf_seed(&seed, i)).public_digest())
            .collect();
        MssKeypair {
            seed,
            height,
            tree: MerkleTree::from_leaves(leaves),
            next_leaf: 0,
        }
    }

    /// Generates a keypair with the [`DEFAULT_HEIGHT`] from an RNG.
    pub fn generate<R: dlt_testkit::rng::RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed, DEFAULT_HEIGHT)
    }

    /// The account's public key: the Merkle root over leaf public keys.
    pub fn public_digest(&self) -> Digest {
        self.tree.root()
    }

    /// Number of signatures still available.
    pub fn remaining(&self) -> u32 {
        (1u32 << self.height) - self.next_leaf
    }

    /// Total signature capacity (`2^height`).
    pub fn capacity(&self) -> u32 {
        1u32 << self.height
    }

    /// Signs a message digest with the next unused leaf key.
    ///
    /// # Errors
    ///
    /// Returns [`KeyExhausted`] when all `2^height` leaf keys are spent.
    pub fn sign(&mut self, msg: &Digest) -> Result<MssSignature, KeyExhausted> {
        if self.next_leaf >= self.capacity() {
            return Err(KeyExhausted);
        }
        let index = self.next_leaf;
        self.next_leaf += 1;
        let wots = WotsKeypair::from_seed(leaf_seed(&self.seed, index));
        let auth_path = self
            .tree
            .prove(index as usize)
            .expect("index < capacity, so the leaf exists");
        Ok(MssSignature {
            leaf_index: index,
            wots_sig: wots.sign(msg),
            auth_path,
        })
    }
}

/// Error returned when an [`MssKeypair`] has no unused leaf keys left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyExhausted;

impl fmt::Display for KeyExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("all one-time leaf keys of this MSS keypair are spent")
    }
}

impl std::error::Error for KeyExhausted {}

/// An MSS signature: a WOTS signature under one leaf key plus the
/// authentication path from that leaf to the account's public root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MssSignature {
    /// Which leaf key signed.
    pub leaf_index: u32,
    /// The one-time signature.
    pub wots_sig: WotsSignature,
    /// Merkle path from the leaf public key to the root.
    pub auth_path: MerkleProof,
}

impl MssSignature {
    /// Verifies against a message digest and the account's public root.
    ///
    /// Recovers the leaf public key from the WOTS signature, then checks
    /// the authentication path connects it to `public_digest`.
    pub fn verify(&self, msg: &Digest, public_digest: &Digest) -> bool {
        if self.auth_path.index != self.leaf_index as usize {
            return false;
        }
        match self.wots_sig.recover_public(msg) {
            Some(leaf_pk) => self.auth_path.compute_root(&leaf_pk) == *public_digest,
            None => false,
        }
    }

    /// Encoded size in bytes (for ledger-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for MssSignature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.leaf_index.encode(out);
        self.wots_sig.encode(out);
        self.auth_path.encode(out);
    }
}

impl Decode for MssSignature {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(MssSignature {
            leaf_index: u32::decode(input)?,
            wots_sig: WotsSignature::decode(input)?,
            auth_path: MerkleProof::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_exact;
    use crate::sha256::sha256;

    #[test]
    fn sign_verify_round_trip() {
        let mut kp = MssKeypair::from_seed([1u8; 32], 2);
        let msg = sha256(b"message");
        let sig = kp.sign(&msg).unwrap();
        assert!(sig.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn many_signatures_same_public_key() {
        let mut kp = MssKeypair::from_seed([2u8; 32], 3);
        let public = kp.public_digest();
        for i in 0..8u32 {
            let msg = sha256(&i.to_be_bytes());
            let sig = kp.sign(&msg).unwrap();
            assert_eq!(sig.leaf_index, i);
            assert!(sig.verify(&msg, &public), "sig {i}");
        }
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut kp = MssKeypair::from_seed([3u8; 32], 1);
        assert_eq!(kp.capacity(), 2);
        kp.sign(&sha256(b"a")).unwrap();
        assert_eq!(kp.remaining(), 1);
        kp.sign(&sha256(b"b")).unwrap();
        assert_eq!(kp.remaining(), 0);
        assert_eq!(kp.sign(&sha256(b"c")), Err(KeyExhausted));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = MssKeypair::from_seed([4u8; 32], 2);
        let sig = kp.sign(&sha256(b"original")).unwrap();
        assert!(!sig.verify(&sha256(b"forged"), &kp.public_digest()));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut kp1 = MssKeypair::from_seed([5u8; 32], 2);
        let kp2 = MssKeypair::from_seed([6u8; 32], 2);
        let msg = sha256(b"message");
        let sig = kp1.sign(&msg).unwrap();
        assert!(!sig.verify(&msg, &kp2.public_digest()));
    }

    #[test]
    fn mismatched_leaf_index_rejected() {
        let mut kp = MssKeypair::from_seed([7u8; 32], 2);
        let msg = sha256(b"message");
        let mut sig = kp.sign(&msg).unwrap();
        sig.leaf_index = 3;
        assert!(!sig.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut kp = MssKeypair::from_seed([8u8; 32], 3);
        let msg = sha256(b"message");
        let mut sig = kp.sign(&msg).unwrap();
        sig.auth_path.path[1].sibling = sha256(b"tampered");
        assert!(!sig.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn codec_round_trip() {
        let mut kp = MssKeypair::from_seed([9u8; 32], 2);
        let msg = sha256(b"encode");
        let sig = kp.sign(&msg).unwrap();
        let back: MssSignature = decode_exact(&sig.encode_to_vec()).unwrap();
        assert_eq!(back, sig);
        assert!(back.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn deterministic_from_seed() {
        assert_eq!(
            MssKeypair::from_seed([10u8; 32], 2).public_digest(),
            MssKeypair::from_seed([10u8; 32], 2).public_digest()
        );
    }
}
