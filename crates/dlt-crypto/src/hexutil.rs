//! Minimal hexadecimal encoding/decoding.
//!
//! The workspace avoids external encoding crates; this module provides
//! the two functions everything else needs.

use std::fmt;

/// Encodes bytes as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(dlt_crypto::hexutil::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hex character.
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength);
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = val(pair[0]).ok_or(DecodeHexError::InvalidChar(pair[0] as char))?;
        let lo = val(pair[1]).ok_or(DecodeHexError::InvalidChar(pair[1] as char))?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Error produced by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// Input length was not a multiple of two.
    OddLength,
    /// Input contained a character outside `[0-9a-fA-F]`.
    InvalidChar(char),
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength => f.write_str("hex string has odd length"),
            DecodeHexError::InvalidChar(c) => write!(f, "invalid hex character {c:?}"),
        }
    }
}

impl std::error::Error for DecodeHexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength));
    }

    #[test]
    fn invalid_char_rejected() {
        assert_eq!(decode("zz"), Err(DecodeHexError::InvalidChar('z')));
    }
}
