//! Winternitz one-time signatures (WOTS).
//!
//! WOTS trades signing/verification hashing for much smaller signatures
//! than [Lamport](crate::lamport): with the Winternitz parameter
//! `w = 16` a signature is 67 × 32 B ≈ 2.1 KiB instead of 16 KiB.
//!
//! The message digest is split into 64 base-16 digits; a checksum of
//! `Σ (15 − dᵢ)` (three more digits) prevents an attacker from bumping a
//! digit upward. For each digit `d`, the signature releases the `d`-th
//! element of a hash chain; the verifier completes the chain to its end
//! and recomputes the public-key commitment.
//!
//! WOTS is the leaf scheme of the many-time [`mss`](crate::mss)
//! signatures used by account chains.

use crate::codec::{Decode, DecodeError, Encode};
use crate::digest::Digest;
use crate::sha256::Sha256;

/// Winternitz parameter: digits are base-16 (4 bits).
pub const W: u32 = 16;
/// Number of message digits (256 bits / 4 bits per digit).
pub const LEN_1: usize = 64;
/// Number of checksum digits (max checksum 64 × 15 = 960 < 16³).
pub const LEN_2: usize = 3;
/// Total number of hash chains in a key.
pub const LEN: usize = LEN_1 + LEN_2;

const DOM_SECRET: &[u8] = b"wots-secret";
const DOM_CHAIN: &[u8] = b"wots-chain";
const DOM_COMMIT: &[u8] = b"wots-public";

/// Derives the chain-`i` secret start value from a seed.
fn secret_start(seed: &[u8; 32], chain: u16) -> Digest {
    let mut h = Sha256::new();
    h.update(DOM_SECRET);
    h.update(seed);
    h.update(&chain.to_be_bytes());
    h.finalize()
}

/// Applies the chaining function from position `from` to position `to`.
///
/// Each step is domain-separated by chain index and position, which
/// prevents cross-chain value reuse.
fn chain(mut value: Digest, chain_index: u16, from: u32, to: u32) -> Digest {
    debug_assert!(from <= to && to < W);
    for position in from..to {
        let mut h = Sha256::new();
        h.update(DOM_CHAIN);
        h.update(&chain_index.to_be_bytes());
        h.update(&position.to_be_bytes());
        h.update(value.as_bytes());
        value = h.finalize();
    }
    value
}

/// Splits a digest into `LEN_1` base-16 digits plus `LEN_2` checksum
/// digits.
fn digits_with_checksum(msg: &Digest) -> [u8; LEN] {
    let mut digits = [0u8; LEN];
    for (i, byte) in msg.as_bytes().iter().enumerate() {
        digits[i * 2] = byte >> 4;
        digits[i * 2 + 1] = byte & 0x0f;
    }
    let checksum: u32 = digits[..LEN_1]
        .iter()
        .map(|&d| (W - 1) - u32::from(d))
        .sum();
    // Encode the checksum in LEN_2 base-16 digits, most significant
    // first.
    digits[LEN_1] = ((checksum >> 8) & 0x0f) as u8;
    digits[LEN_1 + 1] = ((checksum >> 4) & 0x0f) as u8;
    digits[LEN_1 + 2] = (checksum & 0x0f) as u8;
    digits
}

/// Commits to the full set of chain-end public values with one digest.
fn commit(chain_ends: &[Digest; LEN]) -> Digest {
    let mut h = Sha256::new();
    h.update(DOM_COMMIT);
    for end in chain_ends {
        h.update(end.as_bytes());
    }
    h.finalize()
}

/// A WOTS one-time keypair.
///
/// # Example
///
/// ```
/// use dlt_crypto::wots::WotsKeypair;
/// use dlt_crypto::sha256::sha256;
///
/// let kp = WotsKeypair::from_seed([3u8; 32]);
/// let msg = sha256(b"settle channel 7");
/// let sig = kp.sign(&msg);
/// assert!(sig.verify(&msg, &kp.public_digest()));
/// ```
#[derive(Debug, Clone)]
pub struct WotsKeypair {
    seed: [u8; 32],
    public_digest: Digest,
}

impl WotsKeypair {
    /// Derives a keypair deterministically from a seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut ends = [Digest::ZERO; LEN];
        for (i, end) in ends.iter_mut().enumerate() {
            let start = secret_start(&seed, i as u16);
            *end = chain(start, i as u16, 0, W - 1);
        }
        WotsKeypair {
            seed,
            public_digest: commit(&ends),
        }
    }

    /// Generates a keypair from an RNG.
    pub fn generate<R: dlt_testkit::rng::RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed)
    }

    /// The compact commitment to the public key.
    pub fn public_digest(&self) -> Digest {
        self.public_digest
    }

    /// Signs a message digest.
    ///
    /// As with all one-time schemes, signing two different messages with
    /// the same key compromises it.
    pub fn sign(&self, msg: &Digest) -> WotsSignature {
        let digits = digits_with_checksum(msg);
        let mut parts = Vec::with_capacity(LEN);
        for (i, &d) in digits.iter().enumerate() {
            let start = secret_start(&self.seed, i as u16);
            parts.push(chain(start, i as u16, 0, u32::from(d)));
        }
        WotsSignature { parts }
    }
}

/// A WOTS signature: one intermediate chain value per digit (~2.1 KiB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WotsSignature {
    parts: Vec<Digest>,
}

impl WotsSignature {
    /// Verifies against a message digest and public-key commitment by
    /// completing every chain and recomputing the commitment.
    pub fn verify(&self, msg: &Digest, public_digest: &Digest) -> bool {
        match self.recover_public(msg) {
            Some(recovered) => recovered == *public_digest,
            None => false,
        }
    }

    /// Recomputes the public-key commitment this signature corresponds
    /// to for `msg`. Returns `None` if the signature is structurally
    /// invalid. Exposed for the [`mss`](crate::mss) scheme, whose
    /// verification continues up a Merkle tree from this value.
    pub fn recover_public(&self, msg: &Digest) -> Option<Digest> {
        if self.parts.len() != LEN {
            return None;
        }
        let digits = digits_with_checksum(msg);
        let mut ends = [Digest::ZERO; LEN];
        for (i, &d) in digits.iter().enumerate() {
            ends[i] = chain(self.parts[i], i as u16, u32::from(d), W - 1);
        }
        Some(commit(&ends))
    }

    /// Encoded size in bytes (for ledger-size accounting).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for WotsSignature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.parts.encode(out);
    }
}

impl Decode for WotsSignature {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let parts = Vec::<Digest>::decode(input)?;
        if parts.len() != LEN {
            return Err(DecodeError::Invalid("wots signature arity"));
        }
        Ok(WotsSignature { parts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_exact;
    use crate::sha256::sha256;

    #[test]
    fn sign_verify_round_trip() {
        let kp = WotsKeypair::from_seed([1u8; 32]);
        let msg = sha256(b"message");
        assert!(kp.sign(&msg).verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = WotsKeypair::from_seed([2u8; 32]);
        let sig = kp.sign(&sha256(b"original"));
        assert!(!sig.verify(&sha256(b"forged"), &kp.public_digest()));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = WotsKeypair::from_seed([3u8; 32]);
        let kp2 = WotsKeypair::from_seed([4u8; 32]);
        let msg = sha256(b"message");
        assert!(!kp1.sign(&msg).verify(&msg, &kp2.public_digest()));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = WotsKeypair::from_seed([5u8; 32]);
        let msg = sha256(b"message");
        let mut sig = kp.sign(&msg);
        sig.parts[30] = sha256(b"tamper");
        assert!(!sig.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn checksum_blocks_digit_increase() {
        // The classic WOTS attack without a checksum: advance a chain
        // value by hashing it once to sign a message whose digit is one
        // higher. The checksum digits must make that fail.
        let kp = WotsKeypair::from_seed([6u8; 32]);
        let msg = sha256(b"victim message");
        let sig = kp.sign(&msg);
        // Find another digest that differs in some digits; the forged
        // signature below simply replays the original parts.
        let other = sha256(b"attacker message");
        assert!(!sig.verify(&other, &kp.public_digest()));
    }

    #[test]
    fn digits_and_checksum_shape() {
        let msg = sha256(b"digits");
        let digits = digits_with_checksum(&msg);
        assert!(digits.iter().all(|&d| d < 16));
        let checksum: u32 = digits[..LEN_1].iter().map(|&d| 15 - u32::from(d)).sum();
        let encoded = (u32::from(digits[LEN_1]) << 8)
            | (u32::from(digits[LEN_1 + 1]) << 4)
            | u32::from(digits[LEN_1 + 2]);
        assert_eq!(checksum, encoded);
    }

    #[test]
    fn all_zero_and_all_one_messages() {
        // Extreme digit patterns exercise chain endpoints (0 and w-1).
        let kp = WotsKeypair::from_seed([7u8; 32]);
        for msg in [Digest::ZERO, Digest::MAX] {
            let sig = kp.sign(&msg);
            assert!(sig.verify(&msg, &kp.public_digest()));
        }
    }

    #[test]
    fn deterministic_from_seed() {
        assert_eq!(
            WotsKeypair::from_seed([8u8; 32]).public_digest(),
            WotsKeypair::from_seed([8u8; 32]).public_digest()
        );
    }

    #[test]
    fn codec_round_trip() {
        let kp = WotsKeypair::from_seed([9u8; 32]);
        let msg = sha256(b"encode");
        let sig = kp.sign(&msg);
        let back: WotsSignature = decode_exact(&sig.encode_to_vec()).unwrap();
        assert_eq!(back, sig);
        assert!(back.verify(&msg, &kp.public_digest()));
    }

    #[test]
    fn decode_rejects_wrong_arity() {
        let bad = WotsSignature {
            parts: vec![Digest::ZERO; 5],
        };
        assert!(decode_exact::<WotsSignature>(&bad.encode_to_vec()).is_err());
    }

    #[test]
    fn signature_much_smaller_than_lamport() {
        let kp = WotsKeypair::from_seed([10u8; 32]);
        let sig = kp.sign(&sha256(b"size"));
        assert!(sig.size_bytes() < 3 * 1024, "size {}", sig.size_bytes());
    }
}
