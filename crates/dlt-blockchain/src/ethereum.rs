//! The Ethereum-like reference chain: account state trie + gas-limited
//! blocks + receipts + pruning/fast-sync (paper §II-A, §V-A, §VI-A).
//!
//! [`EthereumChain`] produces blocks whose capacity is a **dynamic gas
//! limit** ("a dynamic block size not measured in bytes but rather in
//! gas … this value is dynamic and will adapt to network conditions"):
//! each block may nudge the limit up or down by 1/1024, moving toward
//! target utilisation, exactly the mainnet miner-voting rule.
//!
//! Every block header commits to the post-execution state root and the
//! receipts root. Because [`StateDb`] is a persistent (path-copying)
//! trie, reorgs simply re-point at another root — and the two §V-A
//! size-reduction strategies are direct operations:
//!
//! * [`EthereumChain::prune_state_deltas`] — drop all trie nodes not
//!   reachable from the newest `keep` roots (discarding historical
//!   deltas);
//! * [`EthereumChain::fast_sync`] — build a *new* node from the pivot
//!   block (head − `pivot_offset`): recent headers/blocks + receipts +
//!   the pivot's verified state closure, never replaying history.

use std::collections::BTreeMap;

use dlt_crypto::keys::Address;
use dlt_crypto::Digest;

use crate::account::{receipts_root, AccountError, AccountTx, Receipt, StateDb};
use crate::block::{Block, BlockHeader, LedgerTx};
use crate::chain::{ChainStore, InsertOutcome};
use crate::mempool::Mempool;

/// Chain parameters (defaults follow the paper's Ethereum description).
#[derive(Debug, Clone)]
pub struct EthereumParams {
    /// Block reward credited to the producer.
    pub block_reward: u64,
    /// Starting gas limit.
    pub initial_gas_limit: u64,
    /// Hard floor for the gas limit.
    pub min_gas_limit: u64,
    /// The limit moves by `limit / adjustment_quotient` per block
    /// (mainnet: 1024).
    pub adjustment_quotient: u64,
    /// Blocks to wait before confirmation ("five to eleven for
    /// Ethereum" — default to the midpoint).
    pub confirmation_depth: u64,
    /// Mempool capacity.
    pub mempool_capacity: usize,
}

impl Default for EthereumParams {
    fn default() -> Self {
        EthereumParams {
            block_reward: 2,
            initial_gas_limit: 8_000_000,
            min_gas_limit: 5_000,
            adjustment_quotient: 1024,
            confirmation_depth: 8,
            mempool_capacity: 300_000,
        }
    }
}

/// Errors from full (structural + state) validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EthereumError {
    /// Chain-structure rejection.
    Structure(crate::chain::BlockError),
    /// State-execution rejection (names the offending block).
    Semantics {
        /// The invalid block.
        block: Digest,
        /// The underlying account-model error.
        error: AccountError,
    },
}

impl std::fmt::Display for EthereumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EthereumError::Structure(e) => write!(f, "structural rejection: {e}"),
            EthereumError::Semantics { block, error } => {
                write!(f, "block {} invalid: {error}", block.short())
            }
        }
    }
}

impl std::error::Error for EthereumError {}

/// The assembled Ethereum-like system.
pub struct EthereumChain {
    params: EthereumParams,
    chain: ChainStore<AccountTx>,
    state: StateDb,
    /// Post-execution state root per connected, validated block.
    roots: BTreeMap<Digest, Digest>,
    /// Receipts per connected, validated block.
    receipts: BTreeMap<Digest, Vec<Receipt>>,
    mempool: Mempool<AccountTx>,
}

impl EthereumChain {
    /// Creates a chain whose genesis state allocates the given
    /// `(address, amount)` pairs.
    pub fn new(params: EthereumParams, allocations: &[(Address, u64)]) -> Self {
        let mut state = StateDb::new();
        let mut root = StateDb::empty_root();
        for (address, amount) in allocations {
            root = state.credit(root, address, *amount);
        }
        let genesis_header = BlockHeader {
            parent: Digest::ZERO,
            height: 0,
            merkle_root: Digest::ZERO,
            state_root: root,
            receipts_root: Digest::ZERO,
            timestamp_micros: 0,
            difficulty: 1,
            nonce: 0,
            gas_used: 0,
            gas_limit: params.initial_gas_limit,
            proposer: Address::ZERO,
        };
        let genesis = Block::new(genesis_header, vec![]);
        let genesis_id = genesis.id();
        let mut roots = BTreeMap::new();
        roots.insert(genesis_id, root);
        EthereumChain {
            mempool: Mempool::new(params.mempool_capacity),
            params,
            chain: ChainStore::new(genesis, false),
            state,
            roots,
            receipts: BTreeMap::new(),
        }
    }

    /// The chain parameters.
    pub fn params(&self) -> &EthereumParams {
        &self.params
    }

    /// The block store.
    pub fn chain(&self) -> &ChainStore<AccountTx> {
        &self.chain
    }

    /// The state database (trie sizes, pruning).
    pub fn state(&self) -> &StateDb {
        &self.state
    }

    /// The mempool.
    pub fn mempool(&self) -> &Mempool<AccountTx> {
        &self.mempool
    }

    /// The state root of the active tip.
    pub fn tip_root(&self) -> Digest {
        self.roots[&self.chain.tip()]
    }

    /// Reads an account at the active tip.
    pub fn account(&self, address: &Address) -> crate::account::AccountState {
        self.state.account(self.tip_root(), address)
    }

    /// An account's balance at the active tip.
    pub fn balance(&self, address: &Address) -> u64 {
        self.account(address).balance
    }

    /// Receipts of a connected block, if it validated.
    pub fn block_receipts(&self, block: &Digest) -> Option<&[Receipt]> {
        self.receipts.get(block).map(Vec::as_slice)
    }

    /// Offers a transaction to the mempool.
    pub fn submit_tx(&mut self, tx: AccountTx) -> bool {
        self.mempool.insert(tx)
    }

    /// The gas limit a child of `parent` must use: move toward the
    /// parent's utilisation by at most `limit / quotient` (the miner
    /// gas-limit vote; we target full blocks when demand exists and
    /// decay toward the floor otherwise, matching the mainnet
    /// dynamics the paper references).
    pub fn next_gas_limit(&self, parent: &BlockHeader) -> u64 {
        let limit = parent.gas_limit.max(self.params.min_gas_limit);
        let step = (limit / self.params.adjustment_quotient).max(1);
        // Miners vote up when blocks are ≥ ⅔ full, down otherwise.
        let next = if parent.gas_used * 3 >= limit * 2 {
            limit + step
        } else {
            limit.saturating_sub(step)
        };
        next.max(self.params.min_gas_limit)
    }

    /// Assembles, executes and stores a block on the current tip.
    pub fn produce_block(&mut self, producer: Address, timestamp_micros: u64) -> Block<AccountTx> {
        let parent_id = self.chain.tip();
        let parent = self.chain.header(&parent_id).expect("tip exists").clone();
        let height = parent.height + 1;
        let gas_limit = self.next_gas_limit(&parent);
        let parent_root = self.roots[&parent_id];

        // Real Ethereum block building: per-sender queues in nonce
        // order, repeatedly taking the best-paying executable head.
        // Consider the whole pool — a capacity-bounded candidate subset
        // would cut nonce chains arbitrarily and stall senders.
        let candidates = self.mempool.select_for_block(u64::MAX);
        let mut queues: BTreeMap<Address, Vec<AccountTx>> = BTreeMap::new();
        for tx in candidates {
            queues.entry(tx.sender()).or_default().push(tx);
        }
        for queue in queues.values_mut() {
            // Highest nonce first so `pop()` yields the lowest.
            queue.sort_by_key(|tx| std::cmp::Reverse(tx.nonce));
        }

        let mut scratch_root = parent_root;
        let mut included = Vec::new();
        let mut gas_used = 0u64;
        // The best-paying head among all sender queues, each round.
        while let Some(best_sender) = queues
            .iter()
            .filter_map(|(sender, queue)| queue.last().map(|tx| (*sender, tx)))
            .max_by_key(|(_, tx)| (tx.gas_price, tx.id()))
            .map(|(sender, _)| sender)
        {
            let queue = queues.get_mut(&best_sender).expect("sender has a queue");
            let tx = queue.pop().expect("head exists");
            if gas_used + tx.gas_used() > gas_limit {
                // No room for this sender's next nonce; its successors
                // can't jump the queue either.
                queues.remove(&best_sender);
                continue;
            }
            match self.state.apply_tx(scratch_root, &tx, &producer) {
                Ok((root, _)) => {
                    scratch_root = root;
                    gas_used += tx.gas_used();
                    included.push(tx);
                }
                Err(AccountError::BadNonce { expected, got }) if got > expected => {
                    // Nonce gap: a predecessor wasn't among this
                    // block's candidates. The transaction stays in the
                    // mempool for a later block; this sender just can't
                    // contribute more to *this* one.
                    queues.remove(&best_sender);
                }
                Err(_) => {
                    // Genuinely unexecutable (stale nonce, bad funds,
                    // bad signature): evict it and skip everything
                    // stacked behind it for this block.
                    self.mempool.remove_confirmed([tx.id()]);
                    queues.remove(&best_sender);
                }
            }
            if queues
                .get(&best_sender)
                .is_some_and(|queue| queue.is_empty())
            {
                queues.remove(&best_sender);
            }
        }

        // Execute for real to obtain the committed roots.
        let mut header = BlockHeader {
            parent: parent_id,
            height,
            merkle_root: Digest::ZERO,
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros,
            difficulty: 1,
            nonce: 0,
            gas_used,
            gas_limit,
            proposer: producer,
        };
        // Compute roots on a trial block with zero commitments.
        let trial = Block::new(header.clone(), included.clone());
        let (state_root, receipts) = self
            .state
            .apply_block(parent_root, &trial, &producer, self.params.block_reward)
            .expect("locally selected transactions execute");
        header.state_root = state_root;
        header.receipts_root = receipts_root(&receipts);
        let block = Block::new(header, included);
        self.receive_block(block.clone())
            .expect("locally assembled blocks validate");
        block
    }

    /// Validates and integrates a block (extension, side chain or
    /// reorg). Applied branches re-execute against the state trie and
    /// must match their headers' state/receipts roots.
    ///
    /// # Errors
    ///
    /// Structural rejections and branches that fail execution or root
    /// commitments; the offending branch is expunged and the previous
    /// chain restored.
    pub fn receive_block(
        &mut self,
        block: Block<AccountTx>,
    ) -> Result<InsertOutcome, EthereumError> {
        let outcome = self.chain.insert(block);
        match &outcome {
            InsertOutcome::Rejected(err) => return Err(EthereumError::Structure(*err)),
            InsertOutcome::Extended { applied, .. } => {
                self.validate_branch(applied.clone(), &[])?;
            }
            InsertOutcome::Reorged {
                reverted, applied, ..
            } => {
                self.validate_branch(applied.clone(), reverted)?;
            }
            InsertOutcome::SideChain | InsertOutcome::AwaitingParent | InsertOutcome::Duplicate => {
            }
        }
        Ok(outcome)
    }

    /// Executes `applied` blocks oldest-first; on failure the branch is
    /// invalidated (the persistent trie needs no rollback — old roots
    /// never died).
    fn validate_branch(
        &mut self,
        applied: Vec<Digest>,
        reverted: &[Digest],
    ) -> Result<(), EthereumError> {
        for id in &applied {
            if self.roots.contains_key(id) {
                continue; // already validated on a previous adoption
            }
            let block = self
                .chain
                .block(id)
                .expect("applied blocks are stored")
                .clone();
            let parent_root = self.roots[&block.header.parent];
            let producer = block.header.proposer;
            match self
                .state
                .apply_block(parent_root, &block, &producer, self.params.block_reward)
            {
                Ok((root, receipts)) => {
                    self.roots.insert(*id, root);
                    self.receipts.insert(*id, receipts);
                }
                Err(error) => {
                    self.chain.invalidate(id);
                    return Err(EthereumError::Semantics { block: *id, error });
                }
            }
        }
        // Mempool bookkeeping.
        let mut reinstated = Vec::new();
        for id in reverted {
            if let Some(block) = self.chain.block(id) {
                reinstated.extend(block.txs.iter().cloned());
            }
        }
        self.mempool.reinstate(reinstated);
        for id in &applied {
            if let Some(block) = self.chain.block(id) {
                let ids: Vec<Digest> = block.txs.iter().map(LedgerTx::id).collect();
                self.mempool.remove_confirmed(ids);
            }
        }
        Ok(())
    }

    /// Drops state trie nodes unreachable from the newest `keep` active
    /// roots — the "deltas can be discarded without harming the chain
    /// integrity" pruning of §V-A. Returns the number of nodes
    /// collected.
    pub fn prune_state_deltas(&mut self, keep: usize) -> usize {
        let active = self.chain.active_chain();
        let start = active.len().saturating_sub(keep.max(1));
        let live_roots: Vec<Digest> = active[start..]
            .iter()
            .filter_map(|id| self.roots.get(id).copied())
            .collect();
        // Forget the root index for pruned heights too.
        let keep_set: std::collections::BTreeSet<Digest> =
            active[start..].iter().copied().collect();
        self.roots.retain(|block, _| keep_set.contains(block));
        self.receipts.retain(|block, _| keep_set.contains(block));
        self.state.trie_mut().collect_garbage(&live_roots)
    }

    /// Fast sync (§V-A): builds a fresh node from this one's data
    /// without replaying history. The new node receives
    ///
    /// 1. all block headers+bodies and receipts from the pivot
    ///    (`head − pivot_offset`) onward,
    /// 2. the pivot's state-trie closure, verified node-by-node.
    ///
    /// Returns the synced chain and the number of bytes transferred
    /// (the "download size" the experiment reports).
    ///
    /// Full historical blocks *before* the pivot are deliberately not
    /// transferred — that is the entire point of fast sync.
    pub fn fast_sync(&self, pivot_offset: u64) -> Option<(FastSyncedNode, usize)> {
        let active = self.chain.active_chain();
        let pivot_height = self.chain.tip_height().saturating_sub(pivot_offset);
        let pivot_id = active[pivot_height as usize];
        let pivot_root = *self.roots.get(&pivot_id)?;

        // State download, verified against hashes.
        let trie = self.state.trie().extract_reachable(pivot_root)?;
        let mut bytes = trie.total_bytes();

        // Blocks + receipts from pivot onward.
        let mut blocks = Vec::new();
        for id in &active[pivot_height as usize..] {
            let block = self.chain.block(id)?.clone();
            bytes += block.size_bytes();
            if let Some(receipts) = self.receipts.get(id) {
                bytes += receipts
                    .iter()
                    .map(dlt_crypto::codec::Encode::encoded_len)
                    .sum::<usize>();
            }
            blocks.push(block);
        }
        Some((
            FastSyncedNode {
                pivot_height,
                pivot_root,
                blocks,
                trie,
            },
            bytes,
        ))
    }

    /// Expunges a block and its descendants, falling back to the best
    /// surviving branch (used by the PoS finality layer to undo a
    /// reorg that violated a finalized checkpoint).
    pub fn invalidate(&mut self, id: &Digest) -> Vec<Digest> {
        let removed = self.chain.invalidate(id);
        for gone in &removed {
            self.roots.remove(gone);
            self.receipts.remove(gone);
        }
        removed
    }

    /// Whether a transaction is confirmed at the configured depth.
    pub fn is_confirmed(&self, tx_id: &Digest) -> bool {
        for (height, block_id) in self.chain.active_chain().iter().enumerate() {
            let block = self.chain.block(block_id).expect("active blocks stored");
            if block.txs.iter().any(|t| t.id() == *tx_id) {
                let confs = self.chain.tip_height() - height as u64 + 1;
                return confs >= self.params.confirmation_depth;
            }
        }
        false
    }
}

/// The result of a fast sync: everything a freshly syncing node holds.
pub struct FastSyncedNode {
    /// Height of the pivot block.
    pub pivot_height: u64,
    /// The state root at the pivot.
    pub pivot_root: Digest,
    /// Blocks from the pivot to the head.
    pub blocks: Vec<Block<AccountTx>>,
    /// The pivot state's verified trie closure.
    pub trie: dlt_crypto::trie::TrieDb,
}

impl FastSyncedNode {
    /// Reads an account from the synced state.
    pub fn account(&self, address: &Address) -> crate::account::AccountState {
        match self.trie.get(self.pivot_root, address.0.as_bytes()) {
            None => crate::account::AccountState::default(),
            Some(bytes) => {
                let mut slice = bytes;
                <crate::account::AccountState as dlt_crypto::codec::Decode>::decode(&mut slice)
                    .expect("synced states are well-formed")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountHolder;

    fn setup(balance: u64) -> (EthereumChain, AccountHolder) {
        let alice = AccountHolder::from_seed([1u8; 32], 6);
        let chain = EthereumChain::new(EthereumParams::default(), &[(alice.address(), balance)]);
        (chain, alice)
    }

    #[test]
    fn genesis_allocates_state() {
        let (chain, alice) = setup(1_000_000);
        assert_eq!(chain.balance(&alice.address()), 1_000_000);
        assert_eq!(chain.chain().tip_height(), 0);
    }

    #[test]
    fn produced_block_executes_transactions() {
        let (mut chain, mut alice) = setup(100_000_000);
        let bob = Address::from_label("bob");
        chain.submit_tx(alice.transfer(bob, 1_000, 1));
        chain.submit_tx(alice.transfer(bob, 2_000, 1));
        let producer = Address::from_label("validator");
        let block = chain.produce_block(producer, 15_000_000);
        assert_eq!(block.txs.len(), 2);
        assert_eq!(chain.balance(&bob), 3_000);
        // Producer: reward + both fees.
        assert_eq!(
            chain.balance(&producer),
            chain.params().block_reward + block.total_fee()
        );
        assert!(chain.mempool().is_empty());
        // Receipts committed and retrievable.
        let receipts = chain.block_receipts(&block.id()).unwrap();
        assert_eq!(receipts.len(), 2);
        assert!(receipts.iter().all(|r| r.success));
    }

    #[test]
    fn out_of_order_nonces_land_in_one_block() {
        let (mut chain, mut alice) = setup(100_000_000);
        let bob = Address::from_label("bob");
        let t0 = alice.transfer(bob, 1, 1);
        let t1 = alice.transfer(bob, 2, 5); // higher fee rate: selected first
        chain.submit_tx(t1);
        chain.submit_tx(t0);
        let block = chain.produce_block(Address::from_label("v"), 1);
        assert_eq!(block.txs.len(), 2, "both nonces included");
        assert_eq!(chain.balance(&bob), 3);
    }

    #[test]
    fn state_roots_differ_per_block_and_old_roots_survive() {
        let (mut chain, mut alice) = setup(100_000_000);
        let bob = Address::from_label("bob");
        let r0 = chain.tip_root();
        chain.submit_tx(alice.transfer(bob, 100, 1));
        chain.produce_block(Address::from_label("v"), 1);
        let r1 = chain.tip_root();
        assert_ne!(r0, r1);
        // Historical state still readable — the "state delta" idea.
        assert_eq!(chain.state().account(r0, &bob).balance, 0);
        assert_eq!(chain.state().account(r1, &bob).balance, 100);
    }

    #[test]
    fn gas_limit_adapts_to_demand() {
        let (mut chain, mut alice) = setup(u64::MAX / 4);
        // Empty blocks: limit decays.
        let l0 = chain
            .chain()
            .header(&chain.chain().tip())
            .unwrap()
            .gas_limit;
        chain.produce_block(Address::from_label("v"), 1);
        let l1 = chain
            .chain()
            .header(&chain.chain().tip())
            .unwrap()
            .gas_limit;
        assert!(l1 < l0, "empty block lowers the limit ({l1} < {l0})");

        // Saturated blocks: limit grows.
        // Fill well past 2/3 of the limit with payload-heavy txs.
        for _ in 0..55 {
            chain.submit_tx(alice.transfer_with_payload(Address::from_label("sink"), 1, 1, 2_000));
        }
        chain.produce_block(Address::from_label("v"), 2);
        let l2 = chain
            .chain()
            .header(&chain.chain().tip())
            .unwrap()
            .gas_limit;
        chain.produce_block(Address::from_label("v"), 3);
        let l3 = chain
            .chain()
            .header(&chain.chain().tip())
            .unwrap()
            .gas_limit;
        assert!(l3 > l2, "full blocks raise the limit ({l3} > {l2})");
    }

    #[test]
    fn reorg_switches_state_root() {
        let (mut chain, mut alice) = setup(100_000_000);
        let genesis_id = chain.chain().genesis();
        let genesis_root = chain.tip_root();
        let bob = Address::from_label("bob");
        chain.submit_tx(alice.transfer(bob, 500, 1));
        chain.produce_block(Address::from_label("v"), 1);
        assert_eq!(chain.balance(&bob), 500);

        // Rival empty branch of length 2 from genesis.
        let rival = Address::from_label("rival");
        let mk = |parent: Digest, height: u64, root: Digest, ts: u64| {
            let header = BlockHeader {
                parent,
                height,
                merkle_root: Digest::ZERO,
                state_root: root,
                receipts_root: Digest::ZERO,
                timestamp_micros: ts,
                difficulty: 1,
                nonce: 0,
                gas_used: 0,
                gas_limit: 8_000_000,
                proposer: rival,
            };
            Block::new(header, vec![])
        };
        // Empty blocks still credit the reward, so compute roots via a
        // scratch state.
        let mut scratch = chain.state().clone();
        let r1 = scratch.credit(genesis_root, &rival, chain.params().block_reward);
        let b1 = mk(genesis_id, 1, r1, 10);
        let r2 = scratch.credit(r1, &rival, chain.params().block_reward);
        let b2 = mk(b1.id(), 2, r2, 20);
        chain.receive_block(b1).unwrap();
        let outcome = chain.receive_block(b2).unwrap();
        assert!(matches!(outcome, InsertOutcome::Reorged { .. }));
        // Bob's payment is gone on the new branch; tx back in mempool.
        assert_eq!(chain.balance(&bob), 0);
        assert_eq!(chain.mempool().len(), 1);
        assert_eq!(chain.balance(&rival), 2 * chain.params().block_reward);
    }

    #[test]
    fn wrong_state_root_branch_rejected() {
        let (mut chain, _) = setup(1_000);
        let genesis_id = chain.chain().genesis();
        let header = BlockHeader {
            parent: genesis_id,
            height: 1,
            merkle_root: Digest::ZERO,
            state_root: dlt_crypto::sha256::sha256(b"lie"),
            receipts_root: Digest::ZERO,
            timestamp_micros: 1,
            difficulty: 1,
            nonce: 0,
            gas_used: 0,
            gas_limit: 8_000_000,
            proposer: Address::from_label("liar"),
        };
        let bad = Block::new(header, vec![]);
        let bad_id = bad.id();
        let err = chain.receive_block(bad).unwrap_err();
        assert_eq!(
            err,
            EthereumError::Semantics {
                block: bad_id,
                error: AccountError::StateRootMismatch
            }
        );
        // Chain fell back to genesis.
        assert_eq!(chain.chain().tip(), genesis_id);
        assert!(!chain.chain().contains(&bad_id));
    }

    #[test]
    fn prune_state_deltas_shrinks_trie_but_keeps_tip() {
        let (mut chain, mut alice) = setup(u64::MAX / 4);
        let bob = Address::from_label("bob");
        for i in 0..30 {
            chain.submit_tx(alice.transfer(bob, 10, 1));
            chain.produce_block(Address::from_label("v"), i);
        }
        let nodes_before = chain.state().trie().node_count();
        let collected = chain.prune_state_deltas(4);
        assert!(collected > 0, "history produced dead nodes");
        assert!(chain.state().trie().node_count() < nodes_before);
        // Tip state is fully intact.
        assert_eq!(chain.balance(&bob), 300);
    }

    #[test]
    fn fast_sync_transfers_recent_state_only() {
        let (mut chain, mut alice) = setup(u64::MAX / 4);
        let bob = Address::from_label("bob");
        for i in 0..40 {
            chain.submit_tx(alice.transfer(bob, 10, 1));
            chain.produce_block(Address::from_label("v"), i);
        }
        let full_bytes = chain.chain().total_bytes() + chain.state().trie().total_bytes();
        let (synced, sync_bytes) = chain.fast_sync(8).expect("sync succeeds");
        assert_eq!(synced.pivot_height, 32);
        assert_eq!(synced.blocks.len(), 9); // pivot..=head
        assert_eq!(synced.account(&bob).balance, 320); // state at pivot
        assert!(
            sync_bytes < full_bytes,
            "fast sync ({sync_bytes} B) cheaper than full history ({full_bytes} B)"
        );
    }

    #[test]
    fn confirmation_depth() {
        let (mut chain, mut alice) = setup(100_000_000);
        let tx = alice.transfer(Address::from_label("b"), 1, 1);
        let tx_id = tx.id();
        chain.submit_tx(tx);
        chain.produce_block(Address::from_label("v"), 0);
        assert!(!chain.is_confirmed(&tx_id));
        for i in 1..8 {
            chain.produce_block(Address::from_label("v"), i);
        }
        assert!(chain.is_confirmed(&tx_id));
    }
}
