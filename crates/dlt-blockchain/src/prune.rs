//! Ledger-size accounting and pruning (paper §V).
//!
//! "As every ledger contains all information since its genesis, its
//! size is constantly increasing." This module measures exactly what a
//! node must store under each retention policy the paper describes:
//!
//! * **Archival** — everything: headers, bodies, undo data, and the
//!   UTXO set / state trie.
//! * **Bitcoin prune mode** (§V-A) — "delete raw block data after the
//!   entire ledger has been downloaded and validated, keeping only a
//!   small subset": all headers, plus bodies and undo data for the most
//!   recent `keep_depth` blocks (needed "to relay recent blocks to
//!   peers and handle soft forks"), plus the full UTXO set.
//! * **Ethereum state pruning / fast sync** — measured directly on
//!   [`EthereumChain`] via
//!   `prune_state_deltas` and `fast_sync`; the helpers here snapshot
//!   its archival/pruned sizes for the experiment tables.

use crate::bitcoin::BitcoinChain;
use crate::block::LedgerTx;
use crate::ethereum::EthereumChain;

/// Byte counts per storage component of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageBreakdown {
    /// Block headers (always kept — they are the proof chain).
    pub headers_bytes: usize,
    /// Raw transaction bodies.
    pub bodies_bytes: usize,
    /// Undo data (Bitcoin) for reorg handling.
    pub undo_bytes: usize,
    /// The current-state component: UTXO set or state trie.
    pub state_bytes: usize,
    /// Receipts (Ethereum).
    pub receipts_bytes: usize,
}

impl StorageBreakdown {
    /// Total bytes across all components.
    pub fn total(&self) -> usize {
        self.headers_bytes
            + self.bodies_bytes
            + self.undo_bytes
            + self.state_bytes
            + self.receipts_bytes
    }
}

impl std::fmt::Display for StorageBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "headers={} bodies={} undo={} state={} receipts={} total={}",
            self.headers_bytes,
            self.bodies_bytes,
            self.undo_bytes,
            self.state_bytes,
            self.receipts_bytes,
            self.total()
        )
    }
}

/// What an archival (non-pruned) Bitcoin-like node stores.
pub fn bitcoin_archival_size(chain: &BitcoinChain) -> StorageBreakdown {
    let mut out = StorageBreakdown::default();
    for id in chain.chain().active_chain() {
        let block = chain.chain().block(id).expect("active blocks stored");
        let header = block.header.size_bytes();
        out.headers_bytes += header;
        out.bodies_bytes += block.size_bytes() - header;
        out.undo_bytes += chain.undo_size_of(id).unwrap_or(0);
    }
    out.state_bytes = chain.ledger().size_bytes();
    out
}

/// What a Bitcoin-like node in prune mode stores: every header, but
/// bodies and undo data only for the `keep_depth` most recent active
/// blocks, plus the full UTXO set.
pub fn bitcoin_pruned_size(chain: &BitcoinChain, keep_depth: u64) -> StorageBreakdown {
    let mut out = StorageBreakdown::default();
    let tip_height = chain.chain().tip_height();
    let keep_from = tip_height.saturating_sub(keep_depth.saturating_sub(1));
    for (height, id) in chain.chain().active_chain().iter().enumerate() {
        let block = chain.chain().block(id).expect("active blocks stored");
        let header = block.header.size_bytes();
        out.headers_bytes += header;
        if height as u64 >= keep_from {
            out.bodies_bytes += block.size_bytes() - header;
            out.undo_bytes += chain.undo_size_of(id).unwrap_or(0);
        }
    }
    out.state_bytes = chain.ledger().size_bytes();
    out
}

/// What an archival Ethereum-like node stores: all blocks, receipts,
/// and *every version* of the state trie.
pub fn ethereum_archival_size(chain: &EthereumChain) -> StorageBreakdown {
    let mut out = StorageBreakdown::default();
    for id in chain.chain().active_chain() {
        let block = chain.chain().block(id).expect("active blocks stored");
        let header = block.header.size_bytes();
        out.headers_bytes += header;
        out.bodies_bytes += block.size_bytes() - header;
        if let Some(receipts) = chain.block_receipts(id) {
            out.receipts_bytes += receipts
                .iter()
                .map(dlt_crypto::codec::Encode::encoded_len)
                .sum::<usize>();
        }
    }
    out.state_bytes = chain.state().trie().total_bytes();
    out
}

/// Per-transaction footprint of the active chain: total active-chain
/// bytes divided by the number of (non-coinbase) transactions. The
/// §V comparison normalises ledger growth this way.
pub fn bytes_per_tx<T: LedgerTx>(chain: &crate::chain::ChainStore<T>) -> Option<f64> {
    let mut bytes = 0usize;
    let mut txs = 0usize;
    for block in chain.iter_active() {
        bytes += block.size_bytes();
        txs += block.txs.len();
    }
    if txs == 0 {
        None
    } else {
        Some(bytes as f64 / txs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitcoin::BitcoinParams;
    use crate::utxo::Wallet;
    use dlt_crypto::keys::Address;

    fn busy_chain(blocks: u64) -> BitcoinChain {
        let mut wallet = Wallet::new(1);
        let allocations: Vec<(Address, u64)> = (0..blocks)
            .map(|_| (wallet.new_address(), 10_000))
            .collect();
        let mut chain = BitcoinChain::new(BitcoinParams::default(), &allocations);
        for i in 1..=blocks {
            let tx = wallet
                .build_transfer(chain.ledger(), Address::from_label("sink"), 100, 1)
                .expect("funded");
            chain.submit_tx(tx);
            chain.mine_block(Address::from_label("miner"), i * 600_000_000);
        }
        chain
    }

    #[test]
    fn pruned_is_smaller_than_archival() {
        let chain = busy_chain(12);
        let archival = bitcoin_archival_size(&chain);
        let pruned = bitcoin_pruned_size(&chain, 3);
        assert!(pruned.total() < archival.total());
        // Headers and state identical; bodies/undo shrink.
        assert_eq!(pruned.headers_bytes, archival.headers_bytes);
        assert_eq!(pruned.state_bytes, archival.state_bytes);
        assert!(pruned.bodies_bytes < archival.bodies_bytes);
        assert!(pruned.undo_bytes <= archival.undo_bytes);
    }

    #[test]
    fn keeping_everything_equals_archival() {
        let chain = busy_chain(5);
        let archival = bitcoin_archival_size(&chain);
        let pruned = bitcoin_pruned_size(&chain, 100);
        assert_eq!(pruned, archival);
    }

    #[test]
    fn archival_grows_with_chain() {
        let small = bitcoin_archival_size(&busy_chain(3));
        let large = bitcoin_archival_size(&busy_chain(10));
        assert!(large.total() > small.total());
    }

    #[test]
    fn bytes_per_tx_reasonable() {
        let chain = busy_chain(5);
        let per_tx = bytes_per_tx(chain.chain()).expect("has txs");
        // A WOTS-signed UTXO tx is ~2.3 KB; blocks add coinbase+header.
        assert!(per_tx > 500.0 && per_tx < 10_000.0, "bytes/tx {per_tx}");
    }

    #[test]
    fn ethereum_archival_includes_receipts_and_state() {
        use crate::account::AccountHolder;
        use crate::ethereum::{EthereumChain, EthereumParams};
        let mut alice = AccountHolder::from_seed([2u8; 32], 5);
        let mut chain =
            EthereumChain::new(EthereumParams::default(), &[(alice.address(), 10_000_000)]);
        for i in 0..5 {
            chain.submit_tx(alice.transfer(Address::from_label("b"), 10, 1));
            chain.produce_block(Address::from_label("v"), i);
        }
        let size = ethereum_archival_size(&chain);
        assert!(size.receipts_bytes > 0);
        assert!(size.state_bytes > 0);
        assert!(size.bodies_bytes > 0);
        assert!(size.total() > size.state_bytes);
    }

    #[test]
    fn display_is_informative() {
        let chain = busy_chain(2);
        let text = bitcoin_archival_size(&chain).to_string();
        assert!(text.contains("total="));
    }
}
