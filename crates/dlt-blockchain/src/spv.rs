//! Simplified Payment Verification: the blockchain light client.
//!
//! The paper's §V node taxonomy includes nodes that do not hold ledger
//! data. On a blockchain that role is the SPV client of Nakamoto's
//! §8: keep only the *header chain* (80-ish bytes per block instead of
//! megabytes), verify its hash linkage, work and difficulty, and check
//! individual transactions against a header's Merkle root using an
//! inclusion proof served by a full node.
//!
//! Security model: an SPV client trusts that the most-work header chain
//! it knows is the honest one — it can verify *inclusion* and *work*,
//! but not semantic validity; that is exactly the §IV confidence
//! trade-off, so [`SpvClient::verify_inclusion`] is its central query.

use dlt_crypto::merkle::MerkleProof;
use dlt_crypto::Digest;

use crate::block::BlockHeader;
use crate::pow::pow_valid;

/// Why a header or proof was rejected by the light client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpvError {
    /// The header does not link to the client's current tip.
    DoesNotExtendTip,
    /// The header's height is inconsistent.
    BadHeight,
    /// The header fails its own proof-of-work target.
    BadPow,
    /// The referenced header is unknown to the client.
    UnknownHeader,
    /// The Merkle proof does not connect the transaction to the
    /// header's Merkle root.
    BadProof,
}

impl std::fmt::Display for SpvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            SpvError::DoesNotExtendTip => "header does not extend the known tip",
            SpvError::BadHeight => "header height inconsistent",
            SpvError::BadPow => "header fails proof of work",
            SpvError::UnknownHeader => "unknown header",
            SpvError::BadProof => "merkle proof does not match header root",
        };
        f.write_str(text)
    }
}

impl std::error::Error for SpvError {}

/// A header-only light client.
///
/// # Example
///
/// ```
/// use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
/// use dlt_blockchain::spv::SpvClient;
/// use dlt_blockchain::utxo::Wallet;
/// use dlt_crypto::keys::Address;
///
/// // A full node runs the chain…
/// let mut wallet = Wallet::new(1);
/// let funded = wallet.new_address();
/// let mut chain = BitcoinChain::new(BitcoinParams::default(), &[(funded, 1000)]);
/// let genesis_header = chain
///     .chain()
///     .header(&chain.chain().genesis())
///     .unwrap()
///     .clone();
/// chain.mine_block(Address::from_label("miner"), 600_000_000);
///
/// // …the light client follows only headers.
/// let mut spv = SpvClient::new(genesis_header, false);
/// let tip = chain.chain().tip();
/// spv.accept_header(chain.chain().header(&tip).unwrap().clone()).unwrap();
/// assert_eq!(spv.tip_height(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpvClient {
    headers: Vec<BlockHeader>,
    /// Ids by height (headers[i].id(), cached).
    ids: Vec<Digest>,
    verify_pow: bool,
}

impl SpvClient {
    /// Starts a client from a trusted genesis header. `verify_pow`
    /// enables the hash-target check (off for sampled-PoW simulations).
    pub fn new(genesis: BlockHeader, verify_pow: bool) -> Self {
        assert!(genesis.is_genesis(), "SPV clients anchor at genesis");
        let id = genesis.id();
        SpvClient {
            headers: vec![genesis],
            ids: vec![id],
            verify_pow,
        }
    }

    /// Height of the best known header.
    pub fn tip_height(&self) -> u64 {
        (self.headers.len() - 1) as u64
    }

    /// Id of the best known header.
    pub fn tip(&self) -> Digest {
        *self.ids.last().expect("non-empty")
    }

    /// Total bytes this client stores — the §V "light" footprint.
    pub fn storage_bytes(&self) -> usize {
        use dlt_crypto::codec::Encode;
        self.headers.iter().map(|h| h.encoded_len() + 32).sum()
    }

    /// Accepts the next header if it extends the tip with valid
    /// linkage, height and (optionally) work.
    ///
    /// # Errors
    ///
    /// See [`SpvError`]. Reorg support is intentionally simple: feed
    /// the client the active chain (real SPV clients track competing
    /// header branches; the confidence mathematics is identical).
    pub fn accept_header(&mut self, header: BlockHeader) -> Result<(), SpvError> {
        if header.parent != self.tip() {
            return Err(SpvError::DoesNotExtendTip);
        }
        if header.height != self.tip_height() + 1 {
            return Err(SpvError::BadHeight);
        }
        if self.verify_pow && !pow_valid(&header) {
            return Err(SpvError::BadPow);
        }
        self.ids.push(header.id());
        self.headers.push(header);
        Ok(())
    }

    /// Verifies that a transaction is included in the block at
    /// `height`, given a Merkle proof from a full node, and returns
    /// the §IV-A confirmation count.
    ///
    /// # Errors
    ///
    /// [`SpvError::UnknownHeader`] for out-of-range heights,
    /// [`SpvError::BadProof`] if the proof doesn't bind `tx_id` to the
    /// header's Merkle root.
    pub fn verify_inclusion(
        &self,
        height: u64,
        tx_id: &Digest,
        proof: &MerkleProof,
    ) -> Result<u64, SpvError> {
        let header = self
            .headers
            .get(height as usize)
            .ok_or(SpvError::UnknownHeader)?;
        if !proof.verify(&header.merkle_root, tx_id) {
            return Err(SpvError::BadProof);
        }
        Ok(self.tip_height() - height + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitcoin::{BitcoinChain, BitcoinParams};
    use crate::block::LedgerTx;
    use crate::utxo::Wallet;
    use dlt_crypto::keys::Address;
    use dlt_crypto::merkle::MerkleTree;

    /// A full node, its SPV follower, and a funded wallet.
    fn setup() -> (BitcoinChain, SpvClient, Wallet) {
        let mut wallet = Wallet::new(1);
        let allocations: Vec<(Address, u64)> =
            (0..4).map(|_| (wallet.new_address(), 1_000)).collect();
        let chain = BitcoinChain::new(BitcoinParams::default(), &allocations);
        let genesis = chain
            .chain()
            .header(&chain.chain().genesis())
            .unwrap()
            .clone();
        let spv = SpvClient::new(genesis, false);
        (chain, spv, wallet)
    }

    fn sync(spv: &mut SpvClient, chain: &BitcoinChain) {
        for id in chain.chain().active_chain() {
            let header = chain.chain().header(id).unwrap().clone();
            if header.height > spv.tip_height() {
                spv.accept_header(header).unwrap();
            }
        }
    }

    #[test]
    fn follows_headers_and_verifies_payment() {
        let (mut chain, mut spv, mut wallet) = setup();
        let tx = wallet
            .build_transfer(chain.ledger(), Address::from_label("shop"), 100, 1)
            .unwrap();
        let tx_id = tx.id();
        chain.submit_tx(tx);
        for i in 1..=4u64 {
            chain.mine_block(Address::from_label("m"), i * 600_000_000);
        }
        sync(&mut spv, &chain);
        assert_eq!(spv.tip_height(), 4);

        // The full node serves a proof for the payment in block 1.
        let block1_id = chain.chain().active_at(1).unwrap();
        let block1 = chain.chain().block(&block1_id).unwrap();
        let leaves: Vec<Digest> = block1.txs.iter().map(LedgerTx::id).collect();
        let index = leaves.iter().position(|l| *l == tx_id).unwrap();
        let tree = MerkleTree::from_leaves(leaves);
        let proof = tree.prove(index).unwrap();

        let confirmations = spv.verify_inclusion(1, &tx_id, &proof).unwrap();
        assert_eq!(confirmations, 4);
    }

    #[test]
    fn forged_proof_rejected() {
        let (mut chain, mut spv, mut wallet) = setup();
        let tx = wallet
            .build_transfer(chain.ledger(), Address::from_label("shop"), 100, 1)
            .unwrap();
        let tx_id = tx.id();
        chain.submit_tx(tx);
        chain.mine_block(Address::from_label("m"), 600_000_000);
        sync(&mut spv, &chain);

        // Proof from the wrong block (genesis) does not bind.
        let genesis = chain.chain().block(&chain.chain().genesis()).unwrap();
        let leaves: Vec<Digest> = genesis.txs.iter().map(LedgerTx::id).collect();
        let tree = MerkleTree::from_leaves(leaves);
        let wrong_proof = tree.prove(0).unwrap();
        assert_eq!(
            spv.verify_inclusion(1, &tx_id, &wrong_proof),
            Err(SpvError::BadProof)
        );
    }

    #[test]
    fn rejects_non_linking_headers() {
        let (mut chain, mut spv, _) = setup();
        chain.mine_block(Address::from_label("m"), 600_000_000);
        chain.mine_block(Address::from_label("m"), 1_200_000_000);
        // Skip a header: block 2 doesn't link to the client's tip
        // (genesis).
        let tip = chain.chain().tip();
        let header2 = chain.chain().header(&tip).unwrap().clone();
        assert_eq!(spv.accept_header(header2), Err(SpvError::DoesNotExtendTip));
    }

    #[test]
    fn storage_is_headers_only() {
        let (mut chain, mut spv, mut wallet) = setup();
        for i in 1..=10u64 {
            if let Some(tx) = wallet.build_transfer(chain.ledger(), Address::from_label("s"), 10, 1)
            {
                chain.submit_tx(tx);
            }
            chain.mine_block(Address::from_label("m"), i * 600_000_000);
        }
        sync(&mut spv, &chain);
        let full = chain.chain().total_bytes();
        let light = spv.storage_bytes();
        assert!(
            light * 5 < full,
            "headers-only ({light} B) ≪ full chain ({full} B)"
        );
    }

    #[test]
    fn unknown_height_rejected() {
        let (_, spv, _) = setup();
        let proof = MerkleTree::from_leaves(vec![Digest::ZERO])
            .prove(0)
            .unwrap();
        assert_eq!(
            spv.verify_inclusion(5, &Digest::ZERO, &proof),
            Err(SpvError::UnknownHeader)
        );
    }

    #[test]
    fn pow_checked_when_enabled() {
        let (chain, _, _) = setup();
        let genesis = chain
            .chain()
            .header(&chain.chain().genesis())
            .unwrap()
            .clone();
        let mut spv = SpvClient::new(genesis.clone(), true);
        let mut header = genesis;
        header.parent = spv.tip();
        header.height = 1;
        header.difficulty = u64::MAX; // unmined
        assert_eq!(spv.accept_header(header), Err(SpvError::BadPow));
    }
}
