//! The Bitcoin-like reference chain: UTXO ledger + most-work chain +
//! mempool in one stateful system (paper §II-A, §IV-A, §V-A, §VI-A).
//!
//! [`BitcoinChain`] is the single-process "reference implementation"
//! the experiments and examples drive: it assembles blocks (1 MB byte
//! capacity, 10-minute target by default), fully validates incoming
//! blocks against the UTXO set — including across reorgs, where a
//! semantically invalid winning branch is rejected and the store falls
//! back (`invalidateblock` behaviour) — and keeps per-block *undo data*
//! so the active chain can be rolled back, which is also what Bitcoin's
//! prune mode must retain (§V-A).

use std::collections::BTreeMap;

use dlt_crypto::keys::Address;
use dlt_crypto::Digest;

use crate::block::{Block, BlockHeader, LedgerTx};
use crate::chain::{ChainStore, InsertOutcome};
use crate::difficulty::RetargetParams;
use crate::mempool::Mempool;
use crate::utxo::{BlockUndo, UtxoError, UtxoLedger, UtxoTx};

/// Chain parameters (defaults follow the paper's Bitcoin description).
#[derive(Debug, Clone)]
pub struct BitcoinParams {
    /// Block subsidy paid to the coinbase.
    pub subsidy: u64,
    /// Maximum block size in bytes ("a maximum block size of 1 MB").
    pub max_block_bytes: u64,
    /// Difficulty retargeting ("a block is mined roughly every 10
    /// minutes").
    pub retarget: RetargetParams,
    /// Blocks to wait before treating a transaction as confirmed
    /// ("six for Bitcoin").
    pub confirmation_depth: u64,
    /// Mempool capacity.
    pub mempool_capacity: usize,
}

impl Default for BitcoinParams {
    fn default() -> Self {
        BitcoinParams {
            subsidy: 50,
            max_block_bytes: 1_000_000,
            retarget: RetargetParams::bitcoin_like(),
            confirmation_depth: 6,
            mempool_capacity: 300_000,
        }
    }
}

/// Errors surfaced when a block fails full (structural + UTXO)
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitcoinError {
    /// Chain-structure rejection.
    Structure(crate::chain::BlockError),
    /// UTXO-semantics rejection (names the offending block).
    Semantics {
        /// The invalid block.
        block: Digest,
        /// The underlying UTXO error.
        error: UtxoError,
    },
}

impl std::fmt::Display for BitcoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitcoinError::Structure(e) => write!(f, "structural rejection: {e}"),
            BitcoinError::Semantics { block, error } => {
                write!(f, "block {} invalid: {error}", block.short())
            }
        }
    }
}

impl std::error::Error for BitcoinError {}

/// The assembled Bitcoin-like system.
pub struct BitcoinChain {
    params: BitcoinParams,
    chain: ChainStore<UtxoTx>,
    ledger: UtxoLedger,
    /// Undo data for every block on the *active* chain (what prune
    /// mode keeps for recent blocks).
    undo: BTreeMap<Digest, BlockUndo>,
    mempool: Mempool<UtxoTx>,
}

impl BitcoinChain {
    /// Creates a chain whose genesis coinbase allocates the given
    /// `(address, amount)` pairs.
    pub fn new(params: BitcoinParams, allocations: &[(Address, u64)]) -> Self {
        let outputs: Vec<crate::utxo::TxOutput> = allocations
            .iter()
            .map(|(recipient, amount)| crate::utxo::TxOutput {
                amount: *amount,
                recipient: *recipient,
            })
            .collect();
        let mut coinbase = UtxoTx::coinbase(0, 0, Address::ZERO);
        coinbase.outputs = outputs;
        let genesis_header = BlockHeader {
            parent: Digest::ZERO,
            height: 0,
            merkle_root: Digest::ZERO,
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros: 0,
            difficulty: 1,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        };
        let genesis = Block::new(genesis_header, vec![coinbase]);
        let mut ledger = UtxoLedger::new();
        let total: u64 = allocations.iter().map(|(_, v)| *v).sum();
        let undo_genesis = ledger
            .apply_block(&genesis, total)
            .expect("genesis allocation is valid by construction");
        let genesis_id = genesis.id();
        let mut undo = BTreeMap::new();
        undo.insert(genesis_id, undo_genesis);
        BitcoinChain {
            mempool: Mempool::new(params.mempool_capacity),
            params,
            chain: ChainStore::new(genesis, false),
            ledger,
            undo,
        }
    }

    /// The chain parameters.
    pub fn params(&self) -> &BitcoinParams {
        &self.params
    }

    /// The block store (fork structure, confirmations, sizes).
    pub fn chain(&self) -> &ChainStore<UtxoTx> {
        &self.chain
    }

    /// The UTXO set for the active chain.
    pub fn ledger(&self) -> &UtxoLedger {
        &self.ledger
    }

    /// The mempool.
    pub fn mempool(&self) -> &Mempool<UtxoTx> {
        &self.mempool
    }

    /// Total undo-data bytes currently retained (prune accounting).
    pub fn undo_bytes(&self) -> usize {
        self.undo.values().map(BlockUndo::size_bytes).sum()
    }

    /// Undo-data bytes for one active block, if retained.
    pub fn undo_size_of(&self, id: &Digest) -> Option<usize> {
        self.undo.get(id).map(BlockUndo::size_bytes)
    }

    /// Offers a transaction to the mempool.
    pub fn submit_tx(&mut self, tx: UtxoTx) -> bool {
        self.mempool.insert(tx)
    }

    /// Assembles, applies and stores a block on the current tip,
    /// crediting `miner`. Returns the block.
    ///
    /// # Panics
    ///
    /// Panics if mempool contents that were valid against the active
    /// ledger fail to apply (an internal-consistency bug).
    pub fn mine_block(&mut self, miner: Address, timestamp_micros: u64) -> Block<UtxoTx> {
        let parent_id = self.chain.tip();
        let parent = self.chain.header(&parent_id).expect("tip exists");
        let height = parent.height + 1;

        // Select txs; drop any that no longer apply (e.g. inputs spent
        // by a reorg) instead of failing the whole block.
        let mut scratch = self.ledger.clone();
        let mut txs = vec![UtxoTx::coinbase(height, 0, miner)]; // placeholder
        let mut fees = 0u64;
        let candidates = self
            .mempool
            .select_for_block(self.params.max_block_bytes.saturating_sub(200));
        for tx in candidates {
            let trial = Block::new(
                BlockHeader {
                    parent: parent_id,
                    height,
                    ..self.header_template(timestamp_micros)
                },
                vec![UtxoTx::coinbase(height, 0, miner), tx.clone()],
            );
            // Validate the candidate alone on the scratch ledger state.
            match scratch.apply_block(&trial, 0) {
                Ok(_) => {
                    fees += tx.fee();
                    txs.push(tx);
                }
                Err(_) => {
                    self.mempool.remove_confirmed([tx.id()]);
                }
            }
        }
        txs[0] = UtxoTx::coinbase(height, self.params.subsidy + fees, miner);

        let header = BlockHeader {
            parent: parent_id,
            height,
            ..self.header_template(timestamp_micros)
        };
        let block = Block::new(header, txs);
        self.receive_block(block.clone())
            .expect("locally assembled blocks are valid");
        block
    }

    fn header_template(&self, timestamp_micros: u64) -> BlockHeader {
        BlockHeader {
            parent: Digest::ZERO,
            height: 0,
            merkle_root: Digest::ZERO,
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros,
            difficulty: 1,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        }
    }

    /// Validates and integrates a block, handling extension, side
    /// chains, and reorgs with full UTXO re-validation. On a reorg the
    /// abandoned branch's transactions return to the mempool.
    ///
    /// # Errors
    ///
    /// Structurally invalid blocks and branches hiding semantic
    /// violations (double spends, bad signatures) are rejected; in the
    /// latter case the offending branch is expunged and the previous
    /// active chain restored.
    pub fn receive_block(&mut self, block: Block<UtxoTx>) -> Result<InsertOutcome, BitcoinError> {
        let outcome = self.chain.insert(block);
        match &outcome {
            InsertOutcome::Rejected(err) => return Err(BitcoinError::Structure(*err)),
            InsertOutcome::Extended { applied, .. } => {
                self.apply_branch(applied.clone(), Vec::new())?;
            }
            InsertOutcome::Reorged {
                reverted, applied, ..
            } => {
                self.apply_branch(applied.clone(), reverted.clone())?;
            }
            InsertOutcome::SideChain | InsertOutcome::AwaitingParent | InsertOutcome::Duplicate => {
            }
        }
        Ok(outcome)
    }

    /// Reverts `reverted` (newest first) and applies `applied` (oldest
    /// first) to the UTXO ledger; restores the old branch if the new
    /// one is invalid.
    fn apply_branch(
        &mut self,
        applied: Vec<Digest>,
        reverted: Vec<Digest>,
    ) -> Result<(), BitcoinError> {
        // Roll back the abandoned branch.
        for id in &reverted {
            let undo = self
                .undo
                .remove(id)
                .expect("active blocks always have undo data");
            self.ledger.revert_block(undo);
        }

        // Apply the new branch, collecting undo as we go.
        let mut done: Vec<Digest> = Vec::new();
        let mut failure: Option<(Digest, UtxoError)> = None;
        for id in &applied {
            let block = self.chain.block(id).expect("applied blocks are stored");
            match self.ledger.apply_block(&block.clone(), self.params.subsidy) {
                Ok(undo) => {
                    self.undo.insert(*id, undo);
                    done.push(*id);
                }
                Err(err) => {
                    failure = Some((*id, err));
                    break;
                }
            }
        }

        if let Some((bad_block, error)) = failure {
            // Unwind the partial application…
            for id in done.iter().rev() {
                let undo = self.undo.remove(id).expect("just inserted");
                self.ledger.revert_block(undo);
            }
            // …drop the poisoned branch from the store…
            self.chain.invalidate(&bad_block);
            // …and restore the previously-active branch (it validated
            // before, so this cannot fail).
            for id in reverted.iter().rev() {
                let block = self
                    .chain
                    .block(id)
                    .expect("reverted blocks remain stored")
                    .clone();
                let undo = self
                    .ledger
                    .apply_block(&block, self.params.subsidy)
                    .expect("previously active branch re-applies cleanly");
                self.undo.insert(*id, undo);
            }
            return Err(BitcoinError::Semantics {
                block: bad_block,
                error,
            });
        }

        // Mempool bookkeeping: orphaned txs return, confirmed txs leave.
        let mut reinstated = Vec::new();
        for id in &reverted {
            if let Some(block) = self.chain.block(id) {
                reinstated.extend(block.txs.iter().filter(|t| !t.is_coinbase()).cloned());
            }
        }
        self.mempool.reinstate(reinstated);
        for id in &applied {
            if let Some(block) = self.chain.block(id) {
                let ids: Vec<Digest> = block.txs.iter().map(LedgerTx::id).collect();
                self.mempool.remove_confirmed(ids);
            }
        }
        Ok(())
    }

    /// Whether a transaction is confirmed at the chain's configured
    /// depth: included in an active block with ≥ `confirmation_depth`
    /// confirmations (§IV-A).
    pub fn is_confirmed(&self, tx_id: &Digest) -> bool {
        for (height, block_id) in self.chain.active_chain().iter().enumerate() {
            let block = self.chain.block(block_id).expect("active blocks stored");
            if block.txs.iter().any(|t| t.id() == *tx_id) {
                let confs = self.chain.tip_height() - height as u64 + 1;
                return confs >= self.params.confirmation_depth;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utxo::Wallet;

    fn setup(funds: u64) -> (BitcoinChain, Wallet, Address) {
        let mut wallet = Wallet::new(1);
        let funded = wallet.new_address();
        let chain = BitcoinChain::new(BitcoinParams::default(), &[(funded, funds)]);
        (chain, wallet, funded)
    }

    #[test]
    fn genesis_allocates_funds() {
        let (chain, wallet, funded) = setup(1000);
        assert_eq!(chain.ledger().balance(&funded), 1000);
        assert_eq!(wallet.balance(chain.ledger()), 1000);
        assert_eq!(chain.chain().tip_height(), 0);
    }

    #[test]
    fn mine_empty_block_pays_subsidy() {
        let (mut chain, _, _) = setup(1000);
        let miner = Address::from_label("miner");
        let block = chain.mine_block(miner, 600_000_000);
        assert_eq!(block.header.height, 1);
        assert_eq!(chain.chain().tip(), block.id());
        assert_eq!(chain.ledger().balance(&miner), 50);
    }

    #[test]
    fn submitted_tx_gets_mined_and_confirmed_at_depth() {
        let (mut chain, mut wallet, _) = setup(1000);
        let to = Address::from_label("shop");
        let tx = wallet
            .build_transfer(chain.ledger(), to, 100, 5)
            .expect("funded");
        let tx_id = tx.id();
        assert!(chain.submit_tx(tx));
        assert_eq!(chain.mempool().len(), 1);

        let miner = Address::from_label("miner");
        chain.mine_block(miner, 600_000_000);
        assert_eq!(chain.ledger().balance(&to), 100);
        assert_eq!(chain.ledger().balance(&miner), 55); // subsidy + fee
        assert!(chain.mempool().is_empty());
        assert!(!chain.is_confirmed(&tx_id), "1 conf < 6");
        for i in 2..=6 {
            chain.mine_block(miner, 600_000_000 * i);
        }
        assert!(chain.is_confirmed(&tx_id), "6 confs");
    }

    #[test]
    fn reorg_reverts_and_reinstates_transactions() {
        let (mut chain, mut wallet, _) = setup(1000);
        let genesis_id = chain.chain().genesis();
        let to = Address::from_label("shop");
        let tx = wallet.build_transfer(chain.ledger(), to, 100, 0).unwrap();
        let tx_id = tx.id();
        chain.submit_tx(tx);
        chain.mine_block(Address::from_label("miner-a"), 1_000_000);
        assert_eq!(chain.ledger().balance(&to), 100);

        // A competing branch of two empty blocks from genesis wins.
        let rival = Address::from_label("rival");
        let b1 = {
            let header = BlockHeader {
                parent: genesis_id,
                height: 1,
                timestamp_micros: 2_000_000,
                ..chain.header_template(0)
            };
            Block::new(header, vec![UtxoTx::coinbase(1, 50, rival)])
        };
        let b2 = {
            let header = BlockHeader {
                parent: b1.id(),
                height: 2,
                timestamp_micros: 3_000_000,
                ..chain.header_template(0)
            };
            Block::new(header, vec![UtxoTx::coinbase(2, 50, rival)])
        };
        chain.receive_block(b1).unwrap();
        let outcome = chain.receive_block(b2).unwrap();
        assert!(matches!(outcome, InsertOutcome::Reorged { .. }));

        // The payment was orphaned: balance gone, tx back in mempool.
        assert_eq!(chain.ledger().balance(&to), 0);
        assert!(chain.mempool().contains(&tx_id));
        assert_eq!(chain.ledger().balance(&rival), 100);

        // Mining on the new branch re-includes it.
        chain.mine_block(Address::from_label("miner-a"), 4_000_000);
        assert_eq!(chain.ledger().balance(&to), 100);
        assert!(!chain.mempool().contains(&tx_id));
    }

    #[test]
    fn double_spend_branch_is_rejected_and_chain_restored() {
        let (mut chain, mut wallet, _) = setup(1000);
        let genesis_id = chain.chain().genesis();
        // Honest chain: one block with a real payment.
        let to = Address::from_label("shop");
        let tx = wallet.build_transfer(chain.ledger(), to, 100, 0).unwrap();
        chain.submit_tx(tx.clone());
        let honest = chain.mine_block(Address::from_label("miner"), 1_000_000);

        // Attacker branch: two blocks, the second containing the same
        // tx twice (a blatant double spend).
        let attacker = Address::from_label("attacker");
        let a1 = {
            let header = BlockHeader {
                parent: genesis_id,
                height: 1,
                timestamp_micros: 2_000_000,
                ..chain.header_template(0)
            };
            Block::new(header, vec![UtxoTx::coinbase(1, 50, attacker)])
        };
        let a2 = {
            let header = BlockHeader {
                parent: a1.id(),
                height: 2,
                timestamp_micros: 3_000_000,
                ..chain.header_template(0)
            };
            Block::new(
                header,
                vec![UtxoTx::coinbase(2, 50, attacker), tx.clone(), tx.clone()],
            )
        };
        chain.receive_block(a1).unwrap();
        let err = chain.receive_block(a2).unwrap_err();
        assert!(matches!(err, BitcoinError::Semantics { .. }));

        // The honest chain is restored, payment intact.
        assert_eq!(chain.chain().tip(), honest.id());
        assert_eq!(chain.ledger().balance(&to), 100);
        assert_eq!(chain.ledger().balance(&attacker), 0);
    }

    #[test]
    fn block_capacity_limits_inclusion() {
        // Three separately funded outputs so three independent txs can
        // be built before any of them is mined.
        let mut wallet = Wallet::new(1);
        let allocations: Vec<(Address, u64)> =
            (0..3).map(|_| (wallet.new_address(), 1_000)).collect();
        let mut chain = BitcoinChain::new(BitcoinParams::default(), &allocations);
        // Shrink capacity so only ~1 tx fits (a WOTS-signed tx is ~2.3 KB).
        chain.params.max_block_bytes = 3_000;
        let to = Address::from_label("x");
        for _ in 0..3 {
            let tx = wallet.build_transfer(chain.ledger(), to, 10, 1).unwrap();
            chain.submit_tx(tx);
        }
        assert_eq!(chain.mempool().len(), 3);
        chain.mine_block(Address::from_label("m"), 1_000_000);
        // Not everything fit.
        assert!(!chain.mempool().is_empty(), "backlog remains");
        assert!(chain.ledger().balance(&to) < 30);
    }

    #[test]
    fn undo_bytes_accumulate_with_chain() {
        let (mut chain, _, _) = setup(10);
        let before = chain.undo_bytes();
        for i in 1..=5 {
            chain.mine_block(Address::from_label("m"), i * 1_000_000);
        }
        assert!(chain.undo_bytes() > before);
    }
}
