//! Proof-of-stake: stake-weighted election, slashing, and checkpoint
//! finality (paper §III-A-2 and §IV-A).
//!
//! "Validators deposit their stake in the smart contract, which in turn
//! picks the validator allowed to create a block. The more tokens a
//! validator stakes, it has a higher chance to create the next block.
//! If an incorrect block is submitted …, the validator's stake is
//! burned." — [`ValidatorSet`] implements exactly that: deposits,
//! deterministic stake-weighted proposer selection per slot, and
//! burning via [`ValidatorSet::slash`].
//!
//! [`EquivocationDetector`] catches the canonical slashable offence — a
//! proposer signing two different blocks for the same slot — and
//! [`CasperFfg`] implements the announced finality gadget ("Casper FFG
//! …, a proof of stake based finality system that is supposed to
//! introduce non-reversible checkpoints"): validators cast
//! source→target checkpoint votes; a checkpoint with ≥⅔ of total stake
//! is *justified*, and a justified checkpoint whose direct child
//! checkpoint is justified becomes *finalized*.

use std::collections::{BTreeMap, BTreeSet};

use dlt_crypto::keys::Address;
use dlt_crypto::sha256::Sha256;
use dlt_crypto::Digest;

/// The staked validator registry.
#[derive(Debug, Clone, Default)]
pub struct ValidatorSet {
    deposits: BTreeMap<Address, u64>,
    slashed: BTreeSet<Address>,
    burned_total: u64,
}

impl ValidatorSet {
    /// Creates an empty validator set.
    pub fn new() -> Self {
        ValidatorSet::default()
    }

    /// Deposits stake for a validator (adds to any existing deposit).
    ///
    /// Slashed validators cannot re-enter.
    pub fn deposit(&mut self, validator: Address, amount: u64) -> bool {
        if self.slashed.contains(&validator) {
            return false;
        }
        *self.deposits.entry(validator).or_insert(0) += amount;
        true
    }

    /// Withdraws a validator's full deposit (exit), returning it.
    pub fn withdraw(&mut self, validator: &Address) -> u64 {
        self.deposits.remove(validator).unwrap_or(0)
    }

    /// A validator's current stake.
    pub fn stake_of(&self, validator: &Address) -> u64 {
        self.deposits.get(validator).copied().unwrap_or(0)
    }

    /// Sum of all active stake.
    pub fn total_stake(&self) -> u64 {
        self.deposits.values().sum()
    }

    /// Number of active validators.
    pub fn len(&self) -> usize {
        self.deposits.len()
    }

    /// Whether no validator has stake.
    pub fn is_empty(&self) -> bool {
        self.deposits.is_empty()
    }

    /// Total stake burned by slashing so far.
    pub fn burned_total(&self) -> u64 {
        self.burned_total
    }

    /// Iterates `(validator, stake)` pairs in address order.
    pub fn stakes(&self) -> impl Iterator<Item = (Address, u64)> + '_ {
        self.deposits.iter().map(|(a, s)| (*a, *s))
    }

    /// Whether a validator has been slashed.
    pub fn is_slashed(&self, validator: &Address) -> bool {
        self.slashed.contains(validator)
    }

    /// Burns a validator's entire deposit — "burning stake has the same
    /// economic effect as dismantling an attacker's mining equipment".
    /// Returns the burned amount.
    pub fn slash(&mut self, validator: &Address) -> u64 {
        let burned = self.deposits.remove(validator).unwrap_or(0);
        self.slashed.insert(*validator);
        self.burned_total += burned;
        burned
    }

    /// Deterministically selects the slot's proposer, weighted by
    /// stake: validator `v` wins with probability `stake(v) / total`.
    /// The seed is typically `H(parent block id ‖ slot)` so every node
    /// computes the same winner.
    ///
    /// Returns `None` when no stake is deposited (no blocks can be
    /// proposed — the PoS analogue of "if there are no miners, no
    /// blocks can be mined").
    pub fn select_proposer(&self, parent: &Digest, slot: u64) -> Option<Address> {
        let total = self.total_stake();
        if total == 0 {
            return None;
        }
        let mut h = Sha256::new();
        h.update(b"pos-proposer");
        h.update(parent.as_bytes());
        h.update(&slot.to_be_bytes());
        let point = h.finalize().prefix_u64() % total;
        let mut cursor = 0u64;
        for (validator, stake) in &self.deposits {
            cursor += stake;
            if point < cursor {
                return Some(*validator);
            }
        }
        unreachable!("point < total implies a validator is selected")
    }
}

/// Evidence that a proposer equivocated: two different blocks signed
/// for the same slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivocationEvidence {
    /// The offending proposer.
    pub proposer: Address,
    /// The slot in which both blocks were produced.
    pub slot: u64,
    /// The first observed block.
    pub first: Digest,
    /// The conflicting block.
    pub second: Digest,
}

/// Watches proposals and reports double-signing.
#[derive(Debug, Clone, Default)]
pub struct EquivocationDetector {
    seen: BTreeMap<(Address, u64), Digest>,
}

impl EquivocationDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        EquivocationDetector::default()
    }

    /// Records a proposal; returns evidence if this proposer already
    /// produced a *different* block for the slot.
    pub fn observe(
        &mut self,
        proposer: Address,
        slot: u64,
        block: Digest,
    ) -> Option<EquivocationEvidence> {
        match self.seen.get(&(proposer, slot)) {
            None => {
                self.seen.insert((proposer, slot), block);
                None
            }
            Some(existing) if *existing == block => None,
            Some(existing) => Some(EquivocationEvidence {
                proposer,
                slot,
                first: *existing,
                second: block,
            }),
        }
    }
}

/// A checkpoint: the block starting an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Checkpoint {
    /// Epoch number (block height / epoch length).
    pub epoch: u64,
    /// The checkpoint block id.
    pub block: Digest,
}

/// A Casper FFG vote: a validator attests a source→target checkpoint
/// link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfgVote {
    /// The voting validator.
    pub validator: Address,
    /// A justified checkpoint the vote builds on.
    pub source: Checkpoint,
    /// The checkpoint being justified.
    pub target: Checkpoint,
}

/// Why a vote was rejected or what offence it constituted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FfgOutcome {
    /// Vote accepted, nothing new justified.
    Accepted,
    /// The target checkpoint reached ⅔ stake and is now justified.
    Justified(Checkpoint),
    /// Justifying the target also finalized the source (consecutive
    /// epochs) — the paper's "non-reversible checkpoint".
    Finalized {
        /// The newly finalized checkpoint.
        finalized: Checkpoint,
        /// The justified child that finalized it.
        justified: Checkpoint,
    },
    /// The voter is not a (non-slashed) validator.
    UnknownValidator,
    /// The source checkpoint is not justified.
    SourceNotJustified,
    /// Slashable: two votes with the same target epoch but different
    /// targets.
    DoubleVote,
    /// Slashable: a vote surrounding an earlier vote
    /// (`s1 < s2 < t2 < t1`).
    SurroundVote,
}

/// The Casper FFG finality gadget.
#[derive(Debug, Clone)]
pub struct CasperFfg {
    validators: ValidatorSet,
    /// Stake and voters accumulated per (source, target) link.
    votes: BTreeMap<(Checkpoint, Checkpoint), (u64, BTreeSet<Address>)>,
    justified: BTreeSet<Checkpoint>,
    finalized: Vec<Checkpoint>,
    /// Per-validator vote history for slashing-condition checks.
    history: BTreeMap<Address, Vec<FfgVote>>,
}

impl CasperFfg {
    /// Creates the gadget with the genesis checkpoint justified and
    /// finalized.
    pub fn new(validators: ValidatorSet, genesis: Digest) -> Self {
        let genesis_cp = Checkpoint {
            epoch: 0,
            block: genesis,
        };
        CasperFfg {
            validators,
            votes: BTreeMap::new(),
            justified: BTreeSet::from([genesis_cp]),
            finalized: vec![genesis_cp],
            history: BTreeMap::new(),
        }
    }

    /// The validator registry (for deposits/slashing around the gadget).
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// Mutable validator registry access.
    pub fn validators_mut(&mut self) -> &mut ValidatorSet {
        &mut self.validators
    }

    /// Whether a checkpoint is justified.
    pub fn is_justified(&self, cp: &Checkpoint) -> bool {
        self.justified.contains(cp)
    }

    /// Whether a checkpoint is finalized.
    pub fn is_finalized(&self, cp: &Checkpoint) -> bool {
        self.finalized.contains(cp)
    }

    /// The most recently finalized checkpoint.
    pub fn last_finalized(&self) -> Checkpoint {
        *self.finalized.last().expect("genesis is always finalized")
    }

    /// All finalized checkpoints in order.
    pub fn finalized_checkpoints(&self) -> &[Checkpoint] {
        &self.finalized
    }

    /// Processes a vote: slashing conditions first (double vote,
    /// surround vote — both burn the offender's stake immediately),
    /// then justification/finalization accounting.
    pub fn process_vote(&mut self, vote: FfgVote) -> FfgOutcome {
        let stake = self.validators.stake_of(&vote.validator);
        if stake == 0 {
            return FfgOutcome::UnknownValidator;
        }
        // Slashing condition checks against this validator's history.
        if let Some(prior_votes) = self.history.get(&vote.validator) {
            for prior in prior_votes {
                let double = prior.target.epoch == vote.target.epoch && prior.target != vote.target;
                let surrounds = |outer: &FfgVote, inner: &FfgVote| {
                    outer.source.epoch < inner.source.epoch
                        && inner.target.epoch < outer.target.epoch
                };
                if double {
                    self.validators.slash(&vote.validator);
                    return FfgOutcome::DoubleVote;
                }
                if surrounds(&vote, prior) || surrounds(prior, &vote) {
                    self.validators.slash(&vote.validator);
                    return FfgOutcome::SurroundVote;
                }
            }
        }
        if !self.justified.contains(&vote.source) {
            return FfgOutcome::SourceNotJustified;
        }

        self.history.entry(vote.validator).or_default().push(vote);
        let entry = self
            .votes
            .entry((vote.source, vote.target))
            .or_insert((0, BTreeSet::new()));
        if !entry.1.insert(vote.validator) {
            return FfgOutcome::Accepted; // duplicate identical vote
        }
        entry.0 += stake;

        let total = self.validators.total_stake();
        // ⅔ supermajority (strictly greater than 2/3 of remaining
        // active stake, computed without floating point).
        if entry.0 * 3 >= total * 2 && !self.justified.contains(&vote.target) {
            self.justified.insert(vote.target);
            if vote.target.epoch == vote.source.epoch + 1 && !self.is_finalized(&vote.source) {
                self.finalized.push(vote.source);
                return FfgOutcome::Finalized {
                    finalized: vote.source,
                    justified: vote.target,
                };
            }
            return FfgOutcome::Justified(vote.target);
        }
        FfgOutcome::Accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_crypto::sha256::sha256;

    fn addr(label: &str) -> Address {
        Address::from_label(label)
    }

    fn cp(epoch: u64, label: &str) -> Checkpoint {
        Checkpoint {
            epoch,
            block: sha256(label.as_bytes()),
        }
    }

    #[test]
    fn deposits_accumulate() {
        let mut set = ValidatorSet::new();
        assert!(set.deposit(addr("a"), 100));
        assert!(set.deposit(addr("a"), 50));
        assert!(set.deposit(addr("b"), 25));
        assert_eq!(set.stake_of(&addr("a")), 150);
        assert_eq!(set.total_stake(), 175);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn withdraw_removes_stake() {
        let mut set = ValidatorSet::new();
        set.deposit(addr("a"), 100);
        assert_eq!(set.withdraw(&addr("a")), 100);
        assert_eq!(set.total_stake(), 0);
        assert_eq!(set.withdraw(&addr("a")), 0);
    }

    #[test]
    fn slash_burns_and_bans() {
        let mut set = ValidatorSet::new();
        set.deposit(addr("evil"), 500);
        assert_eq!(set.slash(&addr("evil")), 500);
        assert_eq!(set.total_stake(), 0);
        assert_eq!(set.burned_total(), 500);
        assert!(set.is_slashed(&addr("evil")));
        // Cannot re-enter.
        assert!(!set.deposit(addr("evil"), 100));
        assert_eq!(set.total_stake(), 0);
    }

    #[test]
    fn proposer_selection_is_deterministic() {
        let mut set = ValidatorSet::new();
        set.deposit(addr("a"), 10);
        set.deposit(addr("b"), 10);
        let parent = sha256(b"parent");
        let p1 = set.select_proposer(&parent, 5).unwrap();
        let p2 = set.select_proposer(&parent, 5).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn empty_set_selects_nobody() {
        let set = ValidatorSet::new();
        assert_eq!(set.select_proposer(&sha256(b"p"), 0), None);
    }

    #[test]
    fn proposer_frequency_tracks_stake() {
        // "The more tokens a validator stakes, it has a higher chance to
        // create the next block."
        let mut set = ValidatorSet::new();
        set.deposit(addr("whale"), 900);
        set.deposit(addr("fish"), 100);
        let mut whale_wins = 0;
        let slots = 5000u64;
        for slot in 0..slots {
            let parent = sha256(&slot.to_be_bytes());
            if set.select_proposer(&parent, slot).unwrap() == addr("whale") {
                whale_wins += 1;
            }
        }
        let share = whale_wins as f64 / slots as f64;
        assert!((share - 0.9).abs() < 0.03, "whale share {share}");
    }

    #[test]
    fn equivocation_detected() {
        let mut det = EquivocationDetector::new();
        assert!(det.observe(addr("p"), 3, sha256(b"block-a")).is_none());
        // Same block again: fine (gossip duplicates).
        assert!(det.observe(addr("p"), 3, sha256(b"block-a")).is_none());
        // Different block, same slot: evidence.
        let ev = det.observe(addr("p"), 3, sha256(b"block-b")).unwrap();
        assert_eq!(ev.proposer, addr("p"));
        assert_eq!(ev.slot, 3);
        assert_ne!(ev.first, ev.second);
        // Different slot: fine.
        assert!(det.observe(addr("p"), 4, sha256(b"block-c")).is_none());
    }

    fn gadget(stakes: &[(&str, u64)]) -> (CasperFfg, Checkpoint) {
        let mut set = ValidatorSet::new();
        for (name, stake) in stakes {
            set.deposit(addr(name), *stake);
        }
        let genesis = sha256(b"genesis");
        let ffg = CasperFfg::new(set, genesis);
        (
            ffg,
            Checkpoint {
                epoch: 0,
                block: genesis,
            },
        )
    }

    #[test]
    fn supermajority_justifies_and_finalizes() {
        let (mut ffg, genesis) = gadget(&[("a", 1), ("b", 1), ("c", 1)]);
        let target = cp(1, "epoch1");
        let vote = |v: &str| FfgVote {
            validator: addr(v),
            source: genesis,
            target,
        };
        assert_eq!(ffg.process_vote(vote("a")), FfgOutcome::Accepted);
        // Two of three = 2/3: justified, and source (epoch 0, already
        // final) isn't re-finalized; target is consecutive so source
        // would finalize — but genesis is already finalized, so plain
        // justification is reported.
        let outcome = ffg.process_vote(vote("b"));
        assert_eq!(outcome, FfgOutcome::Justified(target));
        assert!(ffg.is_justified(&target));
    }

    #[test]
    fn consecutive_justification_finalizes_source() {
        let (mut ffg, genesis) = gadget(&[("a", 1), ("b", 1), ("c", 1)]);
        let e1 = cp(1, "epoch1");
        let e2 = cp(2, "epoch2");
        for v in ["a", "b", "c"] {
            ffg.process_vote(FfgVote {
                validator: addr(v),
                source: genesis,
                target: e1,
            });
        }
        assert!(ffg.is_justified(&e1));
        let mut outcomes = Vec::new();
        for v in ["a", "b"] {
            outcomes.push(ffg.process_vote(FfgVote {
                validator: addr(v),
                source: e1,
                target: e2,
            }));
        }
        assert_eq!(
            outcomes[1],
            FfgOutcome::Finalized {
                finalized: e1,
                justified: e2
            }
        );
        assert!(ffg.is_finalized(&e1));
        assert_eq!(ffg.last_finalized(), e1);
    }

    #[test]
    fn minority_never_justifies() {
        let (mut ffg, genesis) = gadget(&[("a", 1), ("b", 1), ("c", 1)]);
        let target = cp(1, "epoch1");
        assert_eq!(
            ffg.process_vote(FfgVote {
                validator: addr("a"),
                source: genesis,
                target
            }),
            FfgOutcome::Accepted
        );
        assert!(!ffg.is_justified(&target));
    }

    #[test]
    fn unknown_validator_rejected() {
        let (mut ffg, genesis) = gadget(&[("a", 1)]);
        assert_eq!(
            ffg.process_vote(FfgVote {
                validator: addr("stranger"),
                source: genesis,
                target: cp(1, "t")
            }),
            FfgOutcome::UnknownValidator
        );
    }

    #[test]
    fn unjustified_source_rejected() {
        let (mut ffg, _genesis) = gadget(&[("a", 1)]);
        assert_eq!(
            ffg.process_vote(FfgVote {
                validator: addr("a"),
                source: cp(5, "nowhere"),
                target: cp(6, "t")
            }),
            FfgOutcome::SourceNotJustified
        );
    }

    #[test]
    fn double_vote_slashes() {
        let (mut ffg, genesis) = gadget(&[("a", 10), ("b", 10), ("c", 10)]);
        ffg.process_vote(FfgVote {
            validator: addr("a"),
            source: genesis,
            target: cp(1, "t1"),
        });
        // Same target epoch, different block: slash.
        let outcome = ffg.process_vote(FfgVote {
            validator: addr("a"),
            source: genesis,
            target: cp(1, "t1-conflicting"),
        });
        assert_eq!(outcome, FfgOutcome::DoubleVote);
        assert!(ffg.validators().is_slashed(&addr("a")));
        assert_eq!(ffg.validators().total_stake(), 20);
        assert_eq!(ffg.validators().burned_total(), 10);
    }

    #[test]
    fn surround_vote_slashes() {
        let (mut ffg, genesis) = gadget(&[("a", 1), ("b", 1), ("c", 1)]);
        // Justify epochs 1 and 2 with honest votes from b and c … and a.
        let e1 = cp(1, "e1");
        let e2 = cp(2, "e2");
        for v in ["a", "b", "c"] {
            ffg.process_vote(FfgVote {
                validator: addr(v),
                source: genesis,
                target: e1,
            });
        }
        // a votes e1 -> e2 (inner vote).
        ffg.process_vote(FfgVote {
            validator: addr("a"),
            source: e1,
            target: e2,
        });
        // a then votes genesis -> e3, surrounding (e1 -> e2): slash.
        let outcome = ffg.process_vote(FfgVote {
            validator: addr("a"),
            source: genesis,
            target: cp(3, "e3"),
        });
        assert_eq!(outcome, FfgOutcome::SurroundVote);
        assert!(ffg.validators().is_slashed(&addr("a")));
    }

    #[test]
    fn duplicate_vote_counts_once() {
        let (mut ffg, genesis) = gadget(&[("a", 1), ("b", 1), ("c", 1)]);
        let target = cp(1, "t");
        let vote = FfgVote {
            validator: addr("a"),
            source: genesis,
            target,
        };
        ffg.process_vote(vote);
        ffg.process_vote(vote); // identical duplicate: no double-vote, no extra stake
        assert!(!ffg.is_justified(&target));
        assert!(!ffg.validators().is_slashed(&addr("a")));
    }
}
