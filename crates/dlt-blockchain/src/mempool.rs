//! The mempool: transactions waiting for block inclusion.
//!
//! The paper's scalability discussion (§VI) is anchored in pending
//! backlogs — "186,951 pending transactions in the Bitcoin network" —
//! which is precisely the mempool's occupancy under a saturating
//! workload. Block producers take the highest fee-*rate* (fee per
//! weight unit) transactions first, which is how both Bitcoin (fee per
//! byte) and Ethereum (gas price) prioritise.
//!
//! Orphaned transactions from reverted blocks are
//! [reinstated](Mempool::reinstate) — the paper: "orphaned transactions
//! need to be included in a new block".

use std::collections::BTreeMap;

use dlt_crypto::Digest;

use crate::block::LedgerTx;

/// A fee-rate-prioritised set of pending transactions.
#[derive(Debug, Clone)]
pub struct Mempool<T> {
    txs: BTreeMap<Digest, T>,
    capacity: usize,
}

impl<T: LedgerTx> Mempool<T> {
    /// Creates a mempool bounded to `capacity` transactions. When full,
    /// a new transaction only enters by evicting a lower fee-rate one.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            txs: BTreeMap::new(),
            capacity,
        }
    }

    /// Number of pending transactions — the "pending backlog" the
    /// scalability experiment reports.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Whether a transaction id is pending.
    pub fn contains(&self, id: &Digest) -> bool {
        self.txs.contains_key(id)
    }

    /// Total weight (bytes or gas) of all pending transactions.
    pub fn total_weight(&self) -> u64 {
        self.txs.values().map(LedgerTx::weight).sum()
    }

    /// Fee rate of a transaction: fee per weight unit.
    fn fee_rate(tx: &T) -> f64 {
        tx.fee() as f64 / tx.weight().max(1) as f64
    }

    /// Offers a transaction to the pool.
    ///
    /// Returns `true` if it was admitted. Duplicates are ignored; when
    /// the pool is full the lowest-fee-rate resident is evicted if the
    /// newcomer pays a strictly higher rate, otherwise the newcomer is
    /// refused (real mempool behaviour under backlog).
    pub fn insert(&mut self, tx: T) -> bool {
        let id = tx.id();
        if self.txs.contains_key(&id) {
            return false;
        }
        if self.txs.len() >= self.capacity {
            let Some((victim_id, victim_rate)) = self
                .txs
                .iter()
                .map(|(id, t)| (*id, Self::fee_rate(t)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN fee rates"))
            else {
                return false;
            };
            if Self::fee_rate(&tx) <= victim_rate {
                return false;
            }
            self.txs.remove(&victim_id);
        }
        self.txs.insert(id, tx);
        true
    }

    /// Removes transactions that were confirmed in a block.
    pub fn remove_confirmed(&mut self, ids: impl IntoIterator<Item = Digest>) {
        for id in ids {
            self.txs.remove(&id);
        }
    }

    /// Puts transactions from reverted (orphaned) blocks back into the
    /// pool so a later block can re-include them.
    pub fn reinstate(&mut self, txs: impl IntoIterator<Item = T>) {
        for tx in txs {
            self.insert(tx);
        }
    }

    /// Selects transactions for a new block: highest fee rate first,
    /// greedily, until adding the next candidate would exceed
    /// `capacity_weight`. The selected transactions stay in the pool
    /// until [confirmed](Mempool::remove_confirmed) — the block might
    /// lose a fork race.
    pub fn select_for_block(&self, capacity_weight: u64) -> Vec<T> {
        let mut candidates: Vec<&T> = self.txs.values().collect();
        candidates.sort_by(|a, b| {
            Self::fee_rate(b)
                .partial_cmp(&Self::fee_rate(a))
                .expect("no NaN fee rates")
                .then_with(|| a.id().cmp(&b.id()))
        });
        let mut out = Vec::new();
        let mut used = 0u64;
        for tx in candidates {
            let w = tx.weight();
            if used + w > capacity_weight {
                continue; // smaller later txs may still fit
            }
            used += w;
            out.push(tx.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testutil::TestTx;

    fn tx(tag: u64, fee: u64, weight: u64) -> TestTx {
        TestTx { tag, fee, weight }
    }

    #[test]
    fn insert_and_contains() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 5, 100);
        assert!(pool.insert(t.clone()));
        assert!(pool.contains(&t.id()));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total_weight(), 100);
    }

    #[test]
    fn duplicate_refused() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 5, 100);
        assert!(pool.insert(t.clone()));
        assert!(!pool.insert(t));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn selection_prefers_fee_rate_not_absolute_fee() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 10, 1000)); // rate 0.01
        pool.insert(tx(2, 5, 100)); // rate 0.05
        let selected = pool.select_for_block(100);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].tag, 2);
    }

    #[test]
    fn selection_respects_capacity() {
        let mut pool = Mempool::new(10);
        for i in 0..5 {
            pool.insert(tx(i, 10, 100));
        }
        let selected = pool.select_for_block(250);
        assert_eq!(selected.len(), 2);
        // Selected txs remain pooled until confirmed.
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn selection_skips_large_and_takes_smaller() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 100, 300)); // best rate but too big after first
        pool.insert(tx(2, 50, 300));
        pool.insert(tx(3, 1, 50)); // low rate but fits in the gap
        let selected = pool.select_for_block(350);
        let tags: Vec<u64> = selected.iter().map(|t| t.tag).collect();
        assert_eq!(tags, vec![1, 3]);
    }

    #[test]
    fn eviction_keeps_higher_fee_rates() {
        let mut pool = Mempool::new(2);
        pool.insert(tx(1, 1, 100)); // rate 0.01
        pool.insert(tx(2, 2, 100)); // rate 0.02
                                    // Better than tx 1 -> evicts it.
        assert!(pool.insert(tx(3, 5, 100)));
        assert_eq!(pool.len(), 2);
        assert!(!pool.contains(&tx(1, 1, 100).id()));
        // Worse than everything -> refused.
        assert!(!pool.insert(tx(4, 1, 1000)));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn remove_confirmed_clears_entries() {
        let mut pool = Mempool::new(10);
        let a = tx(1, 1, 10);
        let b = tx(2, 1, 10);
        pool.insert(a.clone());
        pool.insert(b.clone());
        pool.remove_confirmed(vec![a.id()]);
        assert!(!pool.contains(&a.id()));
        assert!(pool.contains(&b.id()));
    }

    #[test]
    fn reinstate_after_reorg() {
        let mut pool = Mempool::new(10);
        let orphaned = vec![tx(1, 1, 10), tx(2, 1, 10)];
        pool.reinstate(orphaned.clone());
        assert_eq!(pool.len(), 2);
        assert!(pool.contains(&orphaned[0].id()));
    }

    #[test]
    fn deterministic_tie_break() {
        let mut pool = Mempool::new(10);
        for i in 0..5 {
            pool.insert(tx(i, 10, 100)); // identical rates
        }
        let first = pool.select_for_block(500);
        let second = pool.select_for_block(500);
        assert_eq!(
            first.iter().map(|t| t.tag).collect::<Vec<_>>(),
            second.iter().map(|t| t.tag).collect::<Vec<_>>()
        );
    }
}
