//! The block store: fork tracking, most-work tip selection and reorgs
//! (paper §IV-A, Fig. 4).
//!
//! A [`ChainStore`] holds *every* valid block it has seen — the active
//! chain plus all side branches — exactly because a blockchain must
//! tolerate temporary soft forks: "two blocks claim the same
//! predecessor … the longer chain is adopted, while the shorter one is
//! discarded or orphaned". Tip selection is by accumulated work (the
//! sum of block difficulties), with first-seen winning ties, which is
//! Bitcoin's actual rule and degenerates to "longest chain" at constant
//! difficulty. The `e04` ablation compares this with naive
//! longest-chain selection.
//!
//! Blocks that arrive before their parent wait in a bounded orphan
//! pool and are connected when the parent shows up (out-of-order
//! gossip delivery is routine in the simulations).

use std::collections::BTreeMap;

use dlt_crypto::Digest;

use crate::block::{Block, BlockHeader, LedgerTx};
use crate::pow::pow_valid;

/// Why a block was rejected outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The header hash does not meet its difficulty target.
    BadPow,
    /// The header's Merkle root does not match the transactions.
    BadMerkleRoot,
    /// The height is not parent height + 1.
    BadHeight,
    /// A second genesis (parentless) block was offered.
    UnexpectedGenesis,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::BadPow => f.write_str("proof of work does not meet target"),
            BlockError::BadMerkleRoot => f.write_str("merkle root does not match transactions"),
            BlockError::BadHeight => f.write_str("height is not parent height + 1"),
            BlockError::UnexpectedGenesis => f.write_str("unexpected second genesis block"),
        }
    }
}

impl std::error::Error for BlockError {}

/// The effect of inserting one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The active tip advanced; `applied` lists newly active block ids
    /// in chain order (usually just the inserted block, more when the
    /// insertion connected waiting orphans).
    Extended {
        /// The new tip id.
        new_tip: Digest,
        /// Newly active blocks, oldest first.
        applied: Vec<Digest>,
    },
    /// The active chain switched branches: `reverted` blocks (newest
    /// first) were abandoned — the paper's "orphaned" blocks whose
    /// transactions must be re-included — and `applied` blocks (oldest
    /// first) became active.
    Reorged {
        /// The abandoned tip.
        old_tip: Digest,
        /// The new tip id.
        new_tip: Digest,
        /// Blocks leaving the active chain, newest first.
        reverted: Vec<Digest>,
        /// Blocks entering the active chain, oldest first.
        applied: Vec<Digest>,
    },
    /// Valid block on a side branch; the tip did not move.
    SideChain,
    /// Parent unknown; the block waits in the orphan pool.
    AwaitingParent,
    /// Already known (including already waiting as an orphan).
    Duplicate,
    /// Structurally invalid; not stored.
    Rejected(BlockError),
}

struct StoredBlock<T> {
    block: Block<T>,
    chainwork: u128,
    arrival: u64,
}

/// Maximum blocks the orphan pool holds before evicting the oldest.
const MAX_ORPHANS: usize = 1024;

/// A store of all observed blocks with most-work fork choice.
pub struct ChainStore<T> {
    blocks: BTreeMap<Digest, StoredBlock<T>>,
    children: BTreeMap<Digest, Vec<Digest>>,
    /// Orphans keyed by the missing parent id.
    orphans: BTreeMap<Digest, Vec<Block<T>>>,
    orphan_arrivals: Vec<Digest>,
    /// Active chain by height: `active[h]` is the active block at
    /// height `h`.
    active: Vec<Digest>,
    genesis: Digest,
    arrival_seq: u64,
    validate_pow: bool,
}

impl<T: LedgerTx> ChainStore<T> {
    /// Creates a store rooted at `genesis`.
    ///
    /// # Panics
    ///
    /// Panics if `genesis` is not a genesis block (non-zero parent or
    /// non-zero height).
    pub fn new(genesis: Block<T>, validate_pow: bool) -> Self {
        assert!(genesis.header.is_genesis(), "genesis block required");
        let id = genesis.id();
        let mut blocks = BTreeMap::new();
        blocks.insert(
            id,
            StoredBlock {
                chainwork: u128::from(genesis.header.difficulty),
                block: genesis,
                arrival: 0,
            },
        );
        ChainStore {
            blocks,
            children: BTreeMap::new(),
            orphans: BTreeMap::new(),
            orphan_arrivals: Vec::new(),
            active: vec![id],
            genesis: id,
            arrival_seq: 1,
            validate_pow,
        }
    }

    /// The genesis block id.
    pub fn genesis(&self) -> Digest {
        self.genesis
    }

    /// The current active tip id.
    pub fn tip(&self) -> Digest {
        *self.active.last().expect("active chain is never empty")
    }

    /// Height of the active tip.
    pub fn tip_height(&self) -> u64 {
        (self.active.len() - 1) as u64
    }

    /// The stored block for an id, if known.
    pub fn block(&self, id: &Digest) -> Option<&Block<T>> {
        self.blocks.get(id).map(|s| &s.block)
    }

    /// The header for an id, if known.
    pub fn header(&self, id: &Digest) -> Option<&BlockHeader> {
        self.block(id).map(|b| &b.header)
    }

    /// Accumulated work of a stored block's branch.
    pub fn chainwork(&self, id: &Digest) -> Option<u128> {
        self.blocks.get(id).map(|s| s.chainwork)
    }

    /// Whether the block id is known (connected; orphans don't count).
    pub fn contains(&self, id: &Digest) -> bool {
        self.blocks.contains_key(id)
    }

    /// Total connected blocks (active + side branches).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks currently waiting for a parent.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }

    /// The active chain ids, genesis first.
    pub fn active_chain(&self) -> &[Digest] {
        &self.active
    }

    /// The active block id at `height`, if the chain is that tall.
    pub fn active_at(&self, height: u64) -> Option<Digest> {
        self.active.get(height as usize).copied()
    }

    /// Whether `id` is on the active chain.
    pub fn is_active(&self, id: &Digest) -> bool {
        let Some(stored) = self.blocks.get(id) else {
            return false;
        };
        self.active_at(stored.block.header.height) == Some(*id)
    }

    /// Confirmation count of a block: how many active blocks sit at or
    /// above it (1 = it is the tip). `None` for unknown or inactive
    /// blocks — the paper's point that inclusion in *a* block is not
    /// inclusion in *the* chain.
    pub fn confirmations(&self, id: &Digest) -> Option<u64> {
        if !self.is_active(id) {
            return None;
        }
        let height = self.blocks[id].block.header.height;
        Some(self.tip_height() - height + 1)
    }

    /// Number of stored blocks *not* on the active chain — the
    /// orphaned/"stale" blocks of Fig. 4.
    pub fn stale_block_count(&self) -> usize {
        self.blocks.len() - self.active.len()
    }

    /// Inserts a block, updating the tip if the block's branch now has
    /// the most accumulated work. Connects any waiting orphans.
    pub fn insert(&mut self, block: Block<T>) -> InsertOutcome {
        let id = block.id();
        if self.blocks.contains_key(&id) || self.is_pooled_orphan(&id) {
            return InsertOutcome::Duplicate;
        }
        if block.header.is_genesis() {
            return InsertOutcome::Rejected(BlockError::UnexpectedGenesis);
        }
        if !block.merkle_root_valid() {
            return InsertOutcome::Rejected(BlockError::BadMerkleRoot);
        }
        if self.validate_pow && !pow_valid(&block.header) {
            return InsertOutcome::Rejected(BlockError::BadPow);
        }
        if !self.blocks.contains_key(&block.header.parent) {
            self.pool_orphan(block);
            return InsertOutcome::AwaitingParent;
        }

        let old_tip = self.tip();
        if let Err(err) = self.connect(block) {
            return InsertOutcome::Rejected(err);
        }
        // Connecting one block may unlock a cascade of orphans.
        self.flush_orphans(id);
        self.outcome_since(old_tip)
    }

    fn is_pooled_orphan(&self, id: &Digest) -> bool {
        self.orphans
            .values()
            .any(|list| list.iter().any(|b| b.id() == *id))
    }

    fn pool_orphan(&mut self, block: Block<T>) {
        let parent = block.header.parent;
        self.orphans.entry(parent).or_default().push(block);
        self.orphan_arrivals.push(parent);
        if self.orphan_arrivals.len() > MAX_ORPHANS {
            let victim_parent = self.orphan_arrivals.remove(0);
            if let Some(list) = self.orphans.get_mut(&victim_parent) {
                if !list.is_empty() {
                    list.remove(0);
                }
                if list.is_empty() {
                    self.orphans.remove(&victim_parent);
                }
            }
        }
    }

    /// Connects a block whose parent is present; updates indexes and
    /// possibly the active chain.
    fn connect(&mut self, block: Block<T>) -> Result<(), BlockError> {
        let parent = &self.blocks[&block.header.parent];
        if block.header.height != parent.block.header.height + 1 {
            return Err(BlockError::BadHeight);
        }
        let chainwork = parent.chainwork + u128::from(block.header.difficulty);
        let id = block.id();
        let parent_id = block.header.parent;
        let arrival = self.arrival_seq;
        self.arrival_seq += 1;
        self.blocks.insert(
            id,
            StoredBlock {
                block,
                chainwork,
                arrival,
            },
        );
        self.children.entry(parent_id).or_default().push(id);

        // Most-work fork choice; first-seen wins ties.
        let tip = self.tip();
        let tip_work = self.blocks[&tip].chainwork;
        if chainwork > tip_work {
            self.switch_active_to(id);
        }
        Ok(())
    }

    fn flush_orphans(&mut self, connected: Digest) {
        let mut ready = vec![connected];
        while let Some(parent) = ready.pop() {
            let Some(waiting) = self.orphans.remove(&parent) else {
                continue;
            };
            self.orphan_arrivals.retain(|p| *p != parent);
            for block in waiting {
                let id = block.id();
                if self.connect(block).is_ok() {
                    ready.push(id);
                }
            }
        }
    }

    /// Rewrites the active chain so it ends at `new_tip`.
    fn switch_active_to(&mut self, new_tip: Digest) {
        // Build the path from new_tip back to the first block already
        // active at its height.
        let mut path = Vec::new();
        let mut cursor = new_tip;
        loop {
            let stored = &self.blocks[&cursor];
            let height = stored.block.header.height as usize;
            if self.active.get(height) == Some(&cursor) {
                break;
            }
            path.push(cursor);
            if cursor == self.genesis {
                break;
            }
            cursor = stored.block.header.parent;
        }
        path.reverse();
        let fork_height = self.blocks[&path[0]].block.header.height as usize;
        self.active.truncate(fork_height);
        self.active.extend(path);
    }

    /// Describes how the tip moved relative to `old_tip`.
    fn outcome_since(&self, old_tip: Digest) -> InsertOutcome {
        let new_tip = self.tip();
        if new_tip == old_tip {
            return InsertOutcome::SideChain;
        }
        // Old tip still active => pure extension.
        if self.is_active(&old_tip) {
            let from = self.blocks[&old_tip].block.header.height as usize + 1;
            return InsertOutcome::Extended {
                new_tip,
                applied: self.active[from..].to_vec(),
            };
        }
        // Otherwise: reorg. Walk old branch back to the fork point.
        let mut reverted = Vec::new();
        let mut cursor = old_tip;
        while !self.is_active(&cursor) {
            reverted.push(cursor);
            cursor = self.blocks[&cursor].block.header.parent;
        }
        let fork_height = self.blocks[&cursor].block.header.height as usize;
        let applied = self.active[fork_height + 1..].to_vec();
        InsertOutcome::Reorged {
            old_tip,
            new_tip,
            reverted,
            applied,
        }
    }

    /// Removes a block and all its descendants from the store (the
    /// analogue of Bitcoin's `invalidateblock`), returning the removed
    /// ids. Used when a branch that won fork choice turns out to be
    /// semantically invalid (e.g. hides a double spend): the chain
    /// falls back to the best remaining branch.
    ///
    /// The genesis block cannot be invalidated.
    pub fn invalidate(&mut self, id: &Digest) -> Vec<Digest> {
        if *id == self.genesis || !self.blocks.contains_key(id) {
            return Vec::new();
        }
        // Collect the subtree rooted at `id`.
        let mut removed = Vec::new();
        let mut queue = vec![*id];
        while let Some(current) = queue.pop() {
            if let Some(children) = self.children.remove(&current) {
                queue.extend(children);
            }
            if self.blocks.remove(&current).is_some() {
                removed.push(current);
            }
        }
        // Unlink the removed subtree from surviving child lists.
        for children in self.children.values_mut() {
            children.retain(|c| !removed.contains(c));
        }
        // Rebuild the active chain from the best surviving block.
        let best = self
            .blocks
            .iter()
            .max_by_key(|(_, s)| (s.chainwork, std::cmp::Reverse(s.arrival)))
            .map(|(id, _)| *id)
            .expect("genesis always survives");
        let mut path = Vec::new();
        let mut cursor = best;
        loop {
            path.push(cursor);
            if cursor == self.genesis {
                break;
            }
            cursor = self.blocks[&cursor].block.header.parent;
        }
        path.reverse();
        self.active = path;
        removed
    }

    /// The lowest common ancestor of two known blocks.
    pub fn common_ancestor(&self, a: &Digest, b: &Digest) -> Option<Digest> {
        let mut x = *a;
        let mut y = *b;
        let mut hx = self.blocks.get(&x)?.block.header.height;
        let mut hy = self.blocks.get(&y)?.block.header.height;
        while hx > hy {
            x = self.blocks[&x].block.header.parent;
            hx -= 1;
        }
        while hy > hx {
            y = self.blocks[&y].block.header.parent;
            hy -= 1;
        }
        while x != y {
            x = self.blocks[&x].block.header.parent;
            y = self.blocks[&y].block.header.parent;
        }
        Some(x)
    }

    /// Iterates the active chain's blocks, genesis first.
    pub fn iter_active(&self) -> impl Iterator<Item = &Block<T>> {
        self.active.iter().map(|id| &self.blocks[id].block)
    }

    /// Total encoded bytes of all stored blocks (ledger size, §V).
    pub fn total_bytes(&self) -> usize {
        self.blocks.values().map(|s| s.block.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testutil::{header, TestTx};

    type TestChain = ChainStore<TestTx>;

    fn genesis() -> Block<TestTx> {
        Block::new(header(Digest::ZERO, 0), vec![])
    }

    /// Builds a child of `parent` with a distinguishing tag tx.
    fn child_of(parent: &Block<TestTx>, tag: u64) -> Block<TestTx> {
        let mut h = header(parent.id(), parent.header.height + 1);
        h.timestamp_micros = tag;
        Block::new(h, vec![TestTx::new(tag)])
    }

    /// Builds a child of the block with `parent_id`, which must already
    /// be in the store.
    fn child(store: &TestChain, parent_id: Digest, tag: u64) -> Block<TestTx> {
        child_of(store.block(&parent_id).expect("parent exists"), tag)
    }

    fn store() -> (TestChain, Digest) {
        let g = genesis();
        let gid = g.id();
        (ChainStore::new(g, false), gid)
    }

    #[test]
    fn fresh_store_is_at_genesis() {
        let (s, gid) = store();
        assert_eq!(s.tip(), gid);
        assert_eq!(s.tip_height(), 0);
        assert_eq!(s.block_count(), 1);
        assert!(s.is_active(&gid));
        assert_eq!(s.confirmations(&gid), Some(1));
    }

    #[test]
    fn linear_extension() {
        let (mut s, gid) = store();
        let b1 = child(&s, gid, 1);
        let b1_id = b1.id();
        match s.insert(b1) {
            InsertOutcome::Extended { new_tip, applied } => {
                assert_eq!(new_tip, b1_id);
                assert_eq!(applied, vec![b1_id]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let b2 = child(&s, b1_id, 2);
        let b2_id = b2.id();
        s.insert(b2);
        assert_eq!(s.tip(), b2_id);
        assert_eq!(s.tip_height(), 2);
        assert_eq!(s.confirmations(&b1_id), Some(2));
        assert_eq!(s.confirmations(&b2_id), Some(1));
    }

    #[test]
    fn duplicate_detected() {
        let (mut s, gid) = store();
        let b1 = child(&s, gid, 1);
        s.insert(b1.clone());
        assert_eq!(s.insert(b1), InsertOutcome::Duplicate);
    }

    #[test]
    fn competing_block_is_side_chain_and_first_seen_wins_tie() {
        let (mut s, gid) = store();
        let a = child(&s, gid, 1);
        let b = child(&s, gid, 2);
        let a_id = a.id();
        s.insert(a);
        assert_eq!(s.insert(b), InsertOutcome::SideChain);
        assert_eq!(s.tip(), a_id, "first seen keeps the tip on a tie");
        assert_eq!(s.stale_block_count(), 1);
    }

    #[test]
    fn longer_side_branch_triggers_reorg() {
        let (mut s, gid) = store();
        let a1 = child(&s, gid, 1);
        let a1_id = a1.id();
        s.insert(a1);
        // Competing branch b1, b2.
        let b1 = child(&s, gid, 10);
        let b1_id = b1.id();
        s.insert(b1);
        assert_eq!(s.tip(), a1_id);
        let b2 = child(&s, b1_id, 11);
        let b2_id = b2.id();
        match s.insert(b2) {
            InsertOutcome::Reorged {
                old_tip,
                new_tip,
                reverted,
                applied,
            } => {
                assert_eq!(old_tip, a1_id);
                assert_eq!(new_tip, b2_id);
                assert_eq!(reverted, vec![a1_id]);
                assert_eq!(applied, vec![b1_id, b2_id]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(!s.is_active(&a1_id));
        assert_eq!(s.confirmations(&a1_id), None);
        assert_eq!(s.tip_height(), 2);
    }

    #[test]
    fn orphan_waits_for_parent_then_connects() {
        let (mut s, gid) = store();
        let b1 = child(&s, gid, 1);
        let b1_id = b1.id();
        let b2 = child_of(&b1, 2);
        let b2_id = b2.id();
        // Deliver child first.
        assert_eq!(s.insert(b2), InsertOutcome::AwaitingParent);
        assert_eq!(s.orphan_count(), 1);
        assert_eq!(s.tip(), gid);
        // Parent arrives; both connect, tip jumps two heights.
        match s.insert(b1) {
            InsertOutcome::Extended { new_tip, applied } => {
                assert_eq!(new_tip, b2_id);
                assert_eq!(applied, vec![b1_id, b2_id]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(s.orphan_count(), 0);
        assert_eq!(s.tip_height(), 2);
    }

    #[test]
    fn orphan_duplicate_detected() {
        let (mut s, gid) = store();
        let b1 = child(&s, gid, 1);
        let b2 = child_of(&b1, 2);
        assert_eq!(s.insert(b2.clone()), InsertOutcome::AwaitingParent);
        assert_eq!(s.insert(b2), InsertOutcome::Duplicate);
    }

    #[test]
    fn orphan_cascade_connects_deep_chain() {
        let (mut s, gid) = store();
        let b1 = child(&s, gid, 1);
        let b2 = child_of(&b1, 2);
        let b3 = child_of(&b2, 3);
        let b3_id = b3.id();
        s.insert(b3);
        s.insert(b2);
        assert_eq!(s.tip(), gid);
        assert_eq!(s.orphan_count(), 2);
        s.insert(b1);
        assert_eq!(s.tip(), b3_id);
        assert_eq!(s.orphan_count(), 0);
    }

    #[test]
    fn bad_height_rejected() {
        let (mut s, gid) = store();
        let mut h = header(gid, 5); // parent is at height 0
        h.timestamp_micros = 1;
        let bad = Block::new(h, vec![]);
        assert_eq!(
            s.insert(bad),
            InsertOutcome::Rejected(BlockError::BadHeight)
        );
    }

    #[test]
    fn bad_merkle_root_rejected() {
        let (mut s, gid) = store();
        let mut b = child(&s, gid, 1);
        b.header.merkle_root = dlt_crypto::sha256::sha256(b"wrong");
        assert_eq!(
            s.insert(b),
            InsertOutcome::Rejected(BlockError::BadMerkleRoot)
        );
    }

    #[test]
    fn second_genesis_rejected() {
        let (mut s, _gid) = store();
        let mut h = header(Digest::ZERO, 0);
        h.timestamp_micros = 42;
        let g2 = Block::new(h, vec![TestTx::new(1)]);
        assert_eq!(
            s.insert(g2),
            InsertOutcome::Rejected(BlockError::UnexpectedGenesis)
        );
    }

    #[test]
    fn pow_validation_enforced_when_enabled() {
        let g = genesis();
        let gid = g.id();
        let mut s = ChainStore::new(g, true);
        let mut h = header(gid, 1);
        h.difficulty = u64::MAX; // unminable
        let b = Block::new(h, vec![]);
        assert_eq!(s.insert(b), InsertOutcome::Rejected(BlockError::BadPow));

        // A genuinely mined block passes.
        let mut h2 = header(gid, 1);
        h2.difficulty = 16;
        let mut b2 = Block::new(h2, vec![]);
        crate::pow::mine_real(&mut b2.header, 1_000_000).unwrap();
        assert!(matches!(s.insert(b2), InsertOutcome::Extended { .. }));
    }

    #[test]
    fn most_work_beats_longest_chain() {
        // A short heavy branch must beat a long light one: fork choice
        // is by accumulated work, not raw length.
        let (mut s, gid) = store();
        // Light branch: three blocks of difficulty 1.
        let l1 = child(&s, gid, 1);
        let l2 = child_of(&l1, 2);
        let l3 = child_of(&l2, 3);
        let l3_id = l3.id();
        s.insert(l1);
        s.insert(l2);
        s.insert(l3);
        assert_eq!(s.tip(), l3_id);
        // Heavy branch: one block of difficulty 100.
        let mut hh = header(gid, 1);
        hh.timestamp_micros = 99;
        hh.difficulty = 100;
        let heavy = Block::new(hh, vec![]);
        let heavy_id = heavy.id();
        assert!(matches!(s.insert(heavy), InsertOutcome::Reorged { .. }));
        assert_eq!(s.tip(), heavy_id);
        assert_eq!(s.tip_height(), 1);
    }

    #[test]
    fn common_ancestor_of_forked_branches() {
        let (mut s, gid) = store();
        let a1 = child(&s, gid, 1);
        let a2 = child_of(&a1, 2);
        let b1 = child(&s, gid, 10);
        let (a1_id, a2_id, b1_id) = (a1.id(), a2.id(), b1.id());
        s.insert(a1);
        s.insert(a2);
        s.insert(b1);
        assert_eq!(s.common_ancestor(&a2_id, &b1_id), Some(gid));
        assert_eq!(s.common_ancestor(&a2_id, &a1_id), Some(a1_id));
        assert_eq!(s.common_ancestor(&a2_id, &a2_id), Some(a2_id));
    }

    #[test]
    fn iter_active_is_genesis_first() {
        let (mut s, gid) = store();
        let b1 = child(&s, gid, 1);
        let b2 = child_of(&b1, 2);
        let ids = [gid, b1.id(), b2.id()];
        s.insert(b1);
        s.insert(b2);
        let walked: Vec<Digest> = s.iter_active().map(Block::id).collect();
        assert_eq!(walked, ids);
    }

    #[test]
    fn invalidate_removes_subtree_and_falls_back() {
        let (mut s, gid) = store();
        let a1 = child(&s, gid, 1);
        let a2 = child_of(&a1, 2);
        let b1 = child(&s, gid, 10);
        let (a1_id, a2_id, b1_id) = (a1.id(), a2.id(), b1.id());
        s.insert(a1);
        s.insert(a2);
        s.insert(b1);
        assert_eq!(s.tip(), a2_id);
        let removed = s.invalidate(&a1_id);
        assert_eq!(removed.len(), 2);
        assert!(!s.contains(&a1_id));
        assert!(!s.contains(&a2_id));
        // Falls back to the surviving branch.
        assert_eq!(s.tip(), b1_id);
        assert!(s.is_active(&b1_id));
    }

    #[test]
    fn invalidate_genesis_is_refused() {
        let (mut s, gid) = store();
        assert!(s.invalidate(&gid).is_empty());
        assert_eq!(s.tip(), gid);
    }

    #[test]
    fn invalidate_unknown_is_noop() {
        let (mut s, _gid) = store();
        assert!(s
            .invalidate(&dlt_crypto::sha256::sha256(b"nope"))
            .is_empty());
    }

    #[test]
    fn total_bytes_counts_all_branches() {
        let (mut s, gid) = store();
        let base = s.total_bytes();
        let a = child(&s, gid, 1);
        let b = child(&s, gid, 2);
        s.insert(a);
        s.insert(b);
        assert!(s.total_bytes() > base);
        assert_eq!(s.block_count(), 3);
    }
}
