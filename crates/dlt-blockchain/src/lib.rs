//! The blockchain paradigm of `dlt-compare`.
//!
//! This crate implements the paper's two blockchain reference designs
//! from scratch (paper §II-A):
//!
//! * a **Bitcoin-like** chain — UTXO transactions, 1 MB blocks, a
//!   10-minute proof-of-work target, fee-priority mempool, longest-chain
//!   (most-work) fork choice, six-confirmation convention, and prune
//!   mode ([`bitcoin`], [`utxo`]);
//! * an **Ethereum-like** chain — account/nonce model, per-block state
//!   roots in a Merkle Patricia Trie, gas-limited dynamic block sizes,
//!   15-second blocks, receipts, state-delta pruning and fast sync
//!   ([`ethereum`], [`account`]).
//!
//! Consensus back-ends (paper §III-A):
//!
//! * [`pow`] — proof-of-work, both as *real* partial hash inversion and
//!   as the statistically exact sampled (exponential) process;
//! * [`difficulty`] — dynamic difficulty retargeting;
//! * [`pos`] — proof-of-stake: stake-weighted proposer election,
//!   slashing of equivocators, and a Casper-FFG-style checkpoint
//!   finality gadget (paper §IV-A).
//!
//! Chain maintenance:
//!
//! * [`block`] — headers, blocks, identifiers;
//! * [`chain`] — the block store: fork tracking, most-work tip
//!   selection, reorg computation, orphan pool (paper §IV-A, Fig. 4);
//! * [`mempool`] — pending transactions ordered by fee rate;
//! * [`node`] — a miner/relay node runnable on the
//!   [`dlt-sim`](dlt_sim) discrete-event network;
//! * [`prune`] — ledger-size accounting and pruning (paper §V-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod bitcoin;
pub mod block;
pub mod chain;
pub mod difficulty;
pub mod ethereum;
pub mod mempool;
pub mod node;
pub mod pos;
pub mod pos_chain;
pub mod pow;
pub mod prune;
pub mod spv;
pub mod utxo;

pub use block::{Block, BlockHeader};
pub use chain::{ChainStore, InsertOutcome};
