//! Blocks and block headers (paper §II-A, Fig. 1).
//!
//! A block couples a [`BlockHeader`] — carrying the hash link to its
//! predecessor, the Merkle root of its transactions and the consensus
//! fields — with the transaction list itself. The header layout is the
//! union of what the Bitcoin-like and Ethereum-like chains need; fields
//! a given chain doesn't use stay at their zero values (exactly as real
//! headers carry chain-specific fields).
//!
//! Transactions are abstracted by [`LedgerTx`] so the chain store,
//! mempool and miner are shared between the UTXO and account models.

use dlt_crypto::codec::{Decode, DecodeError, Encode};
use dlt_crypto::keys::Address;
use dlt_crypto::merkle::merkle_root;
use dlt_crypto::sha256::double_sha256;
use dlt_crypto::Digest;

/// The interface a transaction exposes to chain-level machinery.
pub trait LedgerTx: Clone {
    /// The transaction identifier (hash of its encoding).
    fn id(&self) -> Digest;

    /// Fee paid to the block producer.
    fn fee(&self) -> u64;

    /// Capacity consumed inside a block: *bytes* for the Bitcoin-like
    /// chain, *gas* for the Ethereum-like chain (paper §VI-A).
    fn weight(&self) -> u64;

    /// Serialized size in bytes (ledger-size accounting, §V).
    fn encoded_size(&self) -> usize;
}

/// A block header: everything needed to verify chain linkage and
/// proof-of-work/stake without the transaction bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Hash of the predecessor block ([`Digest::ZERO`] for genesis).
    pub parent: Digest,
    /// Distance from genesis (genesis = 0).
    pub height: u64,
    /// Merkle root over the block's transaction ids.
    pub merkle_root: Digest,
    /// Root of the global state trie after this block
    /// (Ethereum-like chains only; zero otherwise).
    pub state_root: Digest,
    /// Merkle root over the block's receipts (Ethereum-like only).
    pub receipts_root: Digest,
    /// Block creation time in simulated microseconds.
    pub timestamp_micros: u64,
    /// Difficulty as the expected number of hash attempts to find a
    /// valid nonce. The PoW target is derived from this value.
    pub difficulty: u64,
    /// The free variable of the PoW puzzle.
    pub nonce: u64,
    /// Gas consumed by the block's transactions (Ethereum-like only).
    pub gas_used: u64,
    /// The block's gas limit (Ethereum-like only; dynamic per §VI-A).
    pub gas_limit: u64,
    /// Block proposer (proof-of-stake chains; [`Address::ZERO`] under
    /// PoW where the coinbase already names the miner).
    pub proposer: Address,
}

impl BlockHeader {
    /// The block identifier: the double SHA-256 of the encoded header,
    /// as Bitcoin computes block hashes.
    pub fn id(&self) -> Digest {
        double_sha256(&self.encode_to_vec())
    }

    /// Returns the header's encoded size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }

    /// Whether this is a genesis header (no parent).
    pub fn is_genesis(&self) -> bool {
        self.parent.is_zero() && self.height == 0
    }
}

impl Encode for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.parent.encode(out);
        self.height.encode(out);
        self.merkle_root.encode(out);
        self.state_root.encode(out);
        self.receipts_root.encode(out);
        self.timestamp_micros.encode(out);
        self.difficulty.encode(out);
        self.nonce.encode(out);
        self.gas_used.encode(out);
        self.gas_limit.encode(out);
        self.proposer.encode(out);
    }
}

impl Decode for BlockHeader {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            parent: Digest::decode(input)?,
            height: u64::decode(input)?,
            merkle_root: Digest::decode(input)?,
            state_root: Digest::decode(input)?,
            receipts_root: Digest::decode(input)?,
            timestamp_micros: u64::decode(input)?,
            difficulty: u64::decode(input)?,
            nonce: u64::decode(input)?,
            gas_used: u64::decode(input)?,
            gas_limit: u64::decode(input)?,
            proposer: Address::decode(input)?,
        })
    }
}

/// A block: header plus transaction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<T> {
    /// The block header.
    pub header: BlockHeader,
    /// The transactions, in execution order.
    pub txs: Vec<T>,
}

impl<T: LedgerTx> Block<T> {
    /// Assembles a block over `txs` with the Merkle root precomputed.
    /// Consensus fields (`difficulty`, `nonce`, …) start at the values
    /// in `header` and are typically finalised by the miner.
    pub fn new(mut header: BlockHeader, txs: Vec<T>) -> Self {
        header.merkle_root = merkle_root(&txs.iter().map(LedgerTx::id).collect::<Vec<_>>());
        Block { header, txs }
    }

    /// A transaction-less genesis block — the anchor for experiments
    /// and network simulations that exercise chain structure without
    /// ledger semantics.
    pub fn empty_genesis() -> Self {
        Block::new(
            BlockHeader {
                parent: Digest::ZERO,
                height: 0,
                merkle_root: Digest::ZERO,
                state_root: Digest::ZERO,
                receipts_root: Digest::ZERO,
                timestamp_micros: 0,
                difficulty: 1,
                nonce: 0,
                gas_used: 0,
                gas_limit: 0,
                proposer: Address::ZERO,
            },
            vec![],
        )
    }

    /// The block identifier (the header hash).
    pub fn id(&self) -> Digest {
        self.header.id()
    }

    /// Recomputes the Merkle root from the transaction bodies and
    /// compares it with the header (tamper check; paper Fig. 1).
    pub fn merkle_root_valid(&self) -> bool {
        let leaves: Vec<Digest> = self.txs.iter().map(LedgerTx::id).collect();
        merkle_root(&leaves) == self.header.merkle_root
    }

    /// Sum of transaction fees (the block producer's income beside the
    /// subsidy).
    pub fn total_fee(&self) -> u64 {
        self.txs.iter().map(LedgerTx::fee).sum()
    }

    /// Sum of transaction weights (bytes or gas).
    pub fn total_weight(&self) -> u64 {
        self.txs.iter().map(LedgerTx::weight).sum()
    }

    /// Serialized size in bytes: header plus transaction bodies.
    pub fn size_bytes(&self) -> usize {
        self.header.size_bytes() + self.txs.iter().map(LedgerTx::encoded_size).sum::<usize>()
    }
}

/// Public test-support helpers: a minimal transaction and block
/// constructors for chain-level tests in downstream crates that do not
/// care about UTXO/account semantics. Not part of the stable ledger
/// API.
pub mod testsupport {
    use super::*;
    use dlt_crypto::sha256::sha256;

    /// A dummy transaction with explicit fee and weight.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestTx {
        /// Distinguishing tag (drives the id).
        pub tag: u64,
        /// Fee paid.
        pub fee: u64,
        /// Block-capacity weight.
        pub weight: u64,
    }

    impl LedgerTx for TestTx {
        fn id(&self) -> Digest {
            sha256(&self.tag.to_be_bytes())
        }
        fn fee(&self) -> u64 {
            self.fee
        }
        fn weight(&self) -> u64 {
            self.weight
        }
        fn encoded_size(&self) -> usize {
            24
        }
    }

    /// Builds a test transaction.
    pub fn test_tx(tag: u64, fee: u64, weight: u64) -> TestTx {
        TestTx { tag, fee, weight }
    }

    /// An empty test genesis block.
    pub fn test_genesis() -> Block<TestTx> {
        Block::new(test_header(Digest::ZERO, 0, 1), vec![])
    }

    /// A child block of `parent` distinguished by `tag` with the given
    /// difficulty.
    pub fn test_block(parent: &Block<TestTx>, tag: u64, difficulty: u64) -> Block<TestTx> {
        let mut header = test_header(parent.id(), parent.header.height + 1, difficulty);
        header.timestamp_micros = tag;
        Block::new(header, vec![test_tx(tag, 1, 100)])
    }

    /// A bare header with sane defaults.
    pub fn test_header(parent: Digest, height: u64, difficulty: u64) -> BlockHeader {
        BlockHeader {
            parent,
            height,
            merkle_root: Digest::ZERO,
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros: height * 1_000_000,
            difficulty,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A minimal transaction used by chain-level unit tests that don't
    //! care about UTXO/account semantics.
    use super::*;
    use dlt_crypto::sha256::sha256;

    /// A dummy transaction with explicit fee and weight.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestTx {
        pub tag: u64,
        pub fee: u64,
        pub weight: u64,
    }

    impl TestTx {
        pub fn new(tag: u64) -> Self {
            TestTx {
                tag,
                fee: 1,
                weight: 100,
            }
        }
    }

    impl LedgerTx for TestTx {
        fn id(&self) -> Digest {
            sha256(&self.tag.to_be_bytes())
        }
        fn fee(&self) -> u64 {
            self.fee
        }
        fn weight(&self) -> u64 {
            self.weight
        }
        fn encoded_size(&self) -> usize {
            24
        }
    }

    /// A bare header at the given height/parent with sane defaults.
    pub fn header(parent: Digest, height: u64) -> BlockHeader {
        BlockHeader {
            parent,
            height,
            merkle_root: Digest::ZERO,
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros: height * 1_000_000,
            difficulty: 1,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{header, TestTx};
    use super::*;
    use dlt_crypto::codec::decode_exact;

    #[test]
    fn header_id_changes_with_any_field() {
        let base = header(Digest::ZERO, 0);
        let base_id = base.id();
        let mut variants = Vec::new();
        let mut h = base.clone();
        h.height = 1;
        variants.push(h.clone());
        h = base.clone();
        h.nonce = 99;
        variants.push(h.clone());
        h = base.clone();
        h.difficulty = 77;
        variants.push(h.clone());
        h = base.clone();
        h.merkle_root = dlt_crypto::sha256::sha256(b"other");
        variants.push(h);
        for v in variants {
            assert_ne!(v.id(), base_id);
        }
    }

    #[test]
    fn header_codec_round_trip() {
        let mut h = header(dlt_crypto::sha256::sha256(b"parent"), 5);
        h.gas_used = 21_000;
        h.gas_limit = 8_000_000;
        let back: BlockHeader = decode_exact(&h.encode_to_vec()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.id(), h.id());
    }

    #[test]
    fn genesis_detection() {
        assert!(header(Digest::ZERO, 0).is_genesis());
        assert!(!header(dlt_crypto::sha256::sha256(b"x"), 1).is_genesis());
    }

    #[test]
    fn block_merkle_root_detects_tamper() {
        let txs: Vec<TestTx> = (0..5).map(TestTx::new).collect();
        let mut block = Block::new(header(Digest::ZERO, 0), txs);
        assert!(block.merkle_root_valid());
        block.txs[2].tag = 999;
        assert!(!block.merkle_root_valid());
    }

    #[test]
    fn block_aggregates() {
        let txs: Vec<TestTx> = (0..4).map(TestTx::new).collect();
        let block = Block::new(header(Digest::ZERO, 0), txs);
        assert_eq!(block.total_fee(), 4);
        assert_eq!(block.total_weight(), 400);
        assert_eq!(block.size_bytes(), block.header.size_bytes() + 4 * 24);
    }

    #[test]
    fn empty_block_is_fine() {
        let block: Block<TestTx> = Block::new(header(Digest::ZERO, 0), vec![]);
        assert!(block.merkle_root_valid());
        assert_eq!(block.total_weight(), 0);
    }

    #[test]
    fn block_id_depends_on_txs_via_merkle_root() {
        let a = Block::new(header(Digest::ZERO, 0), vec![TestTx::new(1)]);
        let b = Block::new(header(Digest::ZERO, 0), vec![TestTx::new(2)]);
        assert_ne!(a.id(), b.id());
    }
}
