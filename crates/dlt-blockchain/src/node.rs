//! A miner/relay node for the discrete-event network (paper §III-A,
//! §IV-A).
//!
//! Each [`MinerNode`] keeps its own [`ChainStore`] and [`Mempool`],
//! mines with the *sampled* PoW back-end (its time-to-block is
//! exponential in `difficulty / hashrate`; restarting the search on a
//! new tip is statistically free because the exponential is
//! memoryless), floods blocks and transactions to its peers, and
//! switches branches by most-work fork choice.
//!
//! Soft forks emerge exactly as the paper describes: "two different
//! blocks are created at roughly the same time … some nodes will
//! receive one block over the other … nodes continue to build the chain
//! on top of their received blocks" — network latency does the rest.
//! The fork-rate experiment (`e04`) measures the consequences.

use std::collections::BTreeSet;

use dlt_crypto::keys::Address;
use dlt_crypto::Digest;
use dlt_sim::engine::{Context, Payload, SimNode};
use dlt_sim::metrics::{CounterId, Metrics, SeriesId};
use dlt_sim::network::NodeId;

use crate::block::{Block, BlockHeader, LedgerTx};
use crate::chain::{ChainStore, InsertOutcome};
use crate::difficulty::{retarget, RetargetParams};
use crate::mempool::Mempool;
use crate::pow::sample_mining_time;

/// The gossip message alphabet of the blockchain network.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // blocks dominate gossip traffic by design
pub enum NetMsg<T> {
    /// A full block announcement.
    Block(Block<T>),
    /// A loose transaction.
    Tx(T),
}

/// Builds the producer's reward transaction for a freshly mined block.
///
/// `None` disables coinbase insertion (structure-only experiments).
pub type CoinbaseBuilder<T> = Box<dyn Fn(u64, u64, u64, Address) -> T + Send>;

/// Miner configuration.
pub struct MinerConfig<T> {
    /// Hash attempts per second this miner contributes.
    pub hashrate: f64,
    /// Whether this node mines (false = relay/full node only).
    pub mine: bool,
    /// Block subsidy paid to the coinbase.
    pub subsidy: u64,
    /// Block capacity in weight units (bytes or gas).
    pub block_capacity: u64,
    /// Difficulty adjustment parameters.
    pub retarget: RetargetParams,
    /// Address collecting rewards.
    pub miner_address: Address,
    /// Coinbase transaction constructor
    /// `(height, subsidy, fees, miner) -> tx`.
    pub coinbase: Option<CoinbaseBuilder<T>>,
    /// Mempool capacity (pending transactions).
    pub mempool_capacity: usize,
}

impl<T> MinerConfig<T> {
    /// A relay-only full node.
    pub fn relay() -> Self {
        MinerConfig {
            hashrate: 0.0,
            mine: false,
            subsidy: 0,
            block_capacity: 1_000_000,
            retarget: RetargetParams::bitcoin_like(),
            miner_address: Address::ZERO,
            coinbase: None,
            mempool_capacity: 100_000,
        }
    }

    /// A miner with the given hashrate and default Bitcoin-like
    /// parameters.
    pub fn miner(hashrate: f64, miner_address: Address) -> Self {
        MinerConfig {
            hashrate,
            mine: true,
            subsidy: 50,
            block_capacity: 1_000_000,
            retarget: RetargetParams::bitcoin_like(),
            miner_address,
            coinbase: None,
            mempool_capacity: 100_000,
        }
    }
}

/// Pre-interned metric handles for the miner's hot paths, registered
/// once in `on_start` (interning is idempotent, so all nodes share the
/// same ids in the simulation's metrics sink).
#[derive(Debug, Clone, Copy)]
struct MinerMetrics {
    blocks_mined: CounterId,
    block_interval_secs: SeriesId,
    blocks_connected: CounterId,
    reorgs: CounterId,
    reorg_depth: SeriesId,
    fork_blocks_observed: CounterId,
    orphans_pooled: CounterId,
    txs_accepted: CounterId,
}

impl MinerMetrics {
    fn register(metrics: &mut Metrics) -> Self {
        MinerMetrics {
            blocks_mined: metrics.counter("node.blocks_mined"),
            block_interval_secs: metrics.series("node.block_interval_secs"),
            blocks_connected: metrics.counter("node.blocks_connected"),
            reorgs: metrics.counter("node.reorgs"),
            reorg_depth: metrics.series("node.reorg_depth"),
            fork_blocks_observed: metrics.counter("node.fork_blocks_observed"),
            orphans_pooled: metrics.counter("node.orphans_pooled"),
            txs_accepted: metrics.counter("node.txs_accepted"),
        }
    }
}

/// A full node: chain store, mempool, sampled miner, gossip relay.
pub struct MinerNode<T> {
    chain: ChainStore<T>,
    mempool: Mempool<T>,
    config: MinerConfig<T>,
    /// Token identifying the current mining attempt; stale timer
    /// firings (from abandoned tips) carry an older token.
    job_seq: u64,
    /// The parent the current attempt mines on.
    mining_parent: Option<Digest>,
    /// Gossip dedup: everything this node has already relayed.
    seen: BTreeSet<Digest>,
    /// Deepest reorg this node has suffered (blocks reverted at once).
    deepest_reorg: u64,
    /// Metric handles, registered in `on_start`.
    metrics: Option<MinerMetrics>,
}

impl<T: LedgerTx> MinerNode<T> {
    /// Creates a node from the shared genesis block. PoW fields are
    /// not checked (the sampled back-end does not solve real puzzles);
    /// the `e04`/`e05` ablations cover real PoW separately.
    pub fn new(genesis: Block<T>, config: MinerConfig<T>) -> Self {
        MinerNode {
            chain: ChainStore::new(genesis, false),
            mempool: Mempool::new(config.mempool_capacity),
            config,
            job_seq: 0,
            mining_parent: None,
            seen: BTreeSet::new(),
            deepest_reorg: 0,
            metrics: None,
        }
    }

    /// The node's metric handles (registered in `on_start`).
    fn handles(&self) -> MinerMetrics {
        self.metrics.expect("metric handles registered in on_start")
    }

    /// This node's view of the chain.
    pub fn chain(&self) -> &ChainStore<T> {
        &self.chain
    }

    /// This node's mempool.
    pub fn mempool(&self) -> &Mempool<T> {
        &self.mempool
    }

    /// The deepest reorg this node has suffered: the largest number of
    /// blocks reverted by a single branch switch. Zero on a node that
    /// never left the winning chain — the per-node view of the paper's
    /// §IV-A confirmation-confidence argument (a 6-block rule only
    /// holds while reorgs stay shallower than 6).
    pub fn deepest_reorg(&self) -> u64 {
        self.deepest_reorg
    }

    /// Computes the difficulty for a block extending `parent_id`.
    fn next_difficulty(&self, parent_id: &Digest) -> u64 {
        let parent = self
            .chain
            .header(parent_id)
            .expect("mining parent is stored");
        let next_height = parent.height + 1;
        if !self.config.retarget.is_retarget_height(next_height) {
            return parent.difficulty;
        }
        // Span of the closing window: from the block `window` back to
        // the parent.
        let window = self.config.retarget.window;
        let mut cursor = *parent_id;
        let mut steps = 0;
        while steps < window - 1 {
            let header = self.chain.header(&cursor).expect("ancestors are stored");
            if header.is_genesis() {
                break;
            }
            cursor = header.parent;
            steps += 1;
        }
        let window_start = self.chain.header(&cursor).expect("ancestor is stored");
        let span = parent
            .timestamp_micros
            .saturating_sub(window_start.timestamp_micros)
            .max(1);
        retarget(&self.config.retarget, parent.difficulty, span)
    }

    /// Starts (or restarts) the exponential mining clock on the
    /// current tip.
    fn schedule_mining(&mut self, ctx: &mut Context<'_, NetMsg<T>>)
    where
        T: Clone,
    {
        if !self.config.mine || self.config.hashrate <= 0.0 {
            return;
        }
        let tip = self.chain.tip();
        self.job_seq += 1;
        self.mining_parent = Some(tip);
        let difficulty = self.next_difficulty(&tip);
        let delay = sample_mining_time(ctx.rng(), self.config.hashrate, difficulty);
        ctx.set_timer(delay, self.job_seq);
    }

    /// Assembles and publishes a block on the current tip.
    fn produce_block(&mut self, ctx: &mut Context<'_, NetMsg<T>>)
    where
        T: Clone,
    {
        let parent_id = self.chain.tip();
        let parent = self.chain.header(&parent_id).expect("tip is stored");
        let height = parent.height + 1;
        let difficulty = self.next_difficulty(&parent_id);

        let mut txs = Vec::new();
        let capacity = self.config.block_capacity;
        let selected = self.mempool.select_for_block(capacity);
        let fees: u64 = selected.iter().map(LedgerTx::fee).sum();
        if let Some(builder) = &self.config.coinbase {
            txs.push(builder(
                height,
                self.config.subsidy,
                fees,
                self.config.miner_address,
            ));
        }
        txs.extend(selected);

        let header = BlockHeader {
            parent: parent_id,
            height,
            merkle_root: Digest::ZERO, // filled by Block::new
            state_root: Digest::ZERO,
            receipts_root: Digest::ZERO,
            timestamp_micros: ctx.now().as_micros(),
            difficulty,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        };
        let block = Block::new(header, txs);
        let id = block.id();

        let interval_secs = (ctx.now().as_micros() as f64 - parent.timestamp_micros as f64) / 1e6;
        let m = self.handles();
        ctx.metrics().inc(m.blocks_mined);
        ctx.metrics().record(m.block_interval_secs, interval_secs);
        ctx.trace_mark("miner.block_mined", height);
        self.seen.insert(id);
        self.accept_block(ctx, block.clone());
        ctx.broadcast(NetMsg::Block(block));
    }

    /// Integrates a block into the local chain and updates the mempool.
    fn accept_block(&mut self, ctx: &mut Context<'_, NetMsg<T>>, block: Block<T>)
    where
        T: Clone,
    {
        let m = self.handles();
        let outcome = self.chain.insert(block);
        match &outcome {
            InsertOutcome::Extended { applied, .. } => {
                for id in applied {
                    self.confirm_txs(id);
                }
                ctx.metrics().inc(m.blocks_connected);
            }
            InsertOutcome::Reorged {
                reverted, applied, ..
            } => {
                ctx.metrics().inc(m.reorgs);
                ctx.metrics().record(m.reorg_depth, reverted.len() as f64);
                ctx.trace_mark("miner.reorg_depth", reverted.len() as u64);
                self.deepest_reorg = self.deepest_reorg.max(reverted.len() as u64);
                // Orphaned transactions go back to the pool first, then
                // the new branch claims its own.
                let mut reinstate = Vec::new();
                for id in reverted {
                    if let Some(block) = self.chain.block(id) {
                        reinstate.extend(block.txs.iter().cloned());
                    }
                }
                self.mempool.reinstate(reinstate);
                for id in applied {
                    self.confirm_txs(id);
                }
            }
            InsertOutcome::SideChain => {
                ctx.metrics().inc(m.fork_blocks_observed);
            }
            InsertOutcome::AwaitingParent => {
                ctx.metrics().inc(m.orphans_pooled);
            }
            InsertOutcome::Duplicate | InsertOutcome::Rejected(_) => {}
        }
    }

    fn confirm_txs(&mut self, block_id: &Digest) {
        let ids: Vec<Digest> = match self.chain.block(block_id) {
            Some(block) => block.txs.iter().map(LedgerTx::id).collect(),
            None => return,
        };
        self.mempool.remove_confirmed(ids);
    }
}

impl<T: LedgerTx> SimNode<NetMsg<T>> for MinerNode<T> {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg<T>>) {
        self.metrics = Some(MinerMetrics::register(ctx.metrics()));
        self.schedule_mining(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, NetMsg<T>>,
        _from: NodeId,
        msg: Payload<NetMsg<T>>,
    ) {
        match &*msg {
            NetMsg::Block(block) => {
                let id = block.id();
                if !self.seen.insert(id) {
                    return;
                }
                let old_tip = self.chain.tip();
                let block = block.clone();
                self.accept_block(ctx, block);
                // Flood-relay regardless of whether it won fork choice;
                // peers decide for themselves. Relaying the shared
                // payload re-uses the original allocation.
                ctx.broadcast(Payload::clone(&msg));
                if self.chain.tip() != old_tip {
                    // Tip moved: abandon the current attempt and mine on
                    // the new tip (memoryless restart).
                    self.schedule_mining(ctx);
                }
            }
            NetMsg::Tx(tx) => {
                let id = tx.id();
                if !self.seen.insert(id) {
                    return;
                }
                if self.mempool.insert(tx.clone()) {
                    let m = self.handles();
                    ctx.metrics().inc(m.txs_accepted);
                }
                ctx.broadcast(Payload::clone(&msg));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg<T>>, timer: u64) {
        // Stale mining jobs (tip changed since scheduling) are ignored.
        if timer != self.job_seq {
            return;
        }
        self.produce_block(ctx);
        self.schedule_mining(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testutil::{header, TestTx};
    use dlt_sim::engine::Simulation;
    use dlt_sim::latency::LatencyModel;
    use dlt_sim::time::SimTime;

    fn genesis() -> Block<TestTx> {
        Block::new(header(Digest::ZERO, 0), vec![])
    }

    fn quick_retarget() -> RetargetParams {
        RetargetParams {
            target_interval_micros: 1_000_000, // 1 s blocks for tests
            window: 50,
            max_step: 4,
        }
    }

    fn miner_config(hashrate: f64) -> MinerConfig<TestTx> {
        MinerConfig {
            hashrate,
            mine: true,
            subsidy: 0,
            block_capacity: 1_000,
            retarget: quick_retarget(),
            miner_address: Address::from_label("miner"),
            coinbase: None,
            mempool_capacity: 10_000,
        }
    }

    type Net = Simulation<NetMsg<TestTx>, MinerNode<TestTx>>;

    fn build_network(seed: u64, miners: usize, latency_ms: u64, hashrate: f64) -> Net {
        let mut sim = Net::new(seed, LatencyModel::Fixed(SimTime::from_millis(latency_ms)));
        for _ in 0..miners {
            sim.add_node(MinerNode::new(genesis(), miner_config(hashrate)));
        }
        sim
    }

    #[test]
    fn single_miner_builds_a_chain() {
        let mut sim = build_network(1, 1, 10, 1.0); // difficulty 1, 1 h/s => ~1 s blocks
        sim.run_until(SimTime::from_secs(60));
        let node = sim.node(NodeId(0));
        assert!(
            node.chain().tip_height() >= 30,
            "height {}",
            node.chain().tip_height()
        );
        assert_eq!(node.chain().stale_block_count(), 0);
    }

    #[test]
    fn miners_converge_on_one_chain() {
        let mut sim = build_network(2, 5, 20, 0.2); // aggregate 1 block/s
        sim.run_until(SimTime::from_secs(120));
        // Let in-flight blocks settle.
        sim.run_until(SimTime::from_secs(121));
        let tips: Vec<Digest> = (0..5).map(|i| sim.node(NodeId(i)).chain().tip()).collect();
        assert!(
            tips.iter().all(|t| *t == tips[0]),
            "all nodes agree on the tip"
        );
        let height = sim.node(NodeId(0)).chain().tip_height();
        assert!(height >= 60, "height {height}");
    }

    #[test]
    fn forks_happen_under_high_latency_and_resolve() {
        // Block interval ~1 s vs latency 400 ms: fork city.
        let mut sim = build_network(3, 4, 400, 0.25);
        sim.run_until(SimTime::from_secs(300));
        sim.run_until(SimTime::from_secs(305));
        let total_stale: usize = (0..4)
            .map(|i| sim.node(NodeId(i)).chain().stale_block_count())
            .sum();
        assert!(total_stale > 0, "expected at least one fork");
        let reorgs = sim.metrics().count("node.reorgs");
        assert!(reorgs > 0, "expected reorgs under 40% latency/interval");
        // And still: consensus on everything but the freshest blocks
        // (mining continues, so the very tip may be in flight).
        let min_height = (0..4)
            .map(|i| sim.node(NodeId(i)).chain().tip_height())
            .min()
            .unwrap();
        let settled = min_height.saturating_sub(6);
        let prefix: Vec<Option<Digest>> = (0..4)
            .map(|i| sim.node(NodeId(i)).chain().active_at(settled))
            .collect();
        assert!(
            prefix.iter().all(|p| *p == prefix[0] && p.is_some()),
            "nodes agree on the settled prefix"
        );
    }

    #[test]
    fn transactions_gossip_and_get_mined() {
        let mut sim = build_network(4, 3, 10, 0.4);
        let tx = TestTx::new(42);
        let tx_id = tx.id();
        sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            NetMsg::Tx(tx),
        );
        sim.run_until(SimTime::from_secs(30));
        // The tx must be in some mined block on the active chain.
        let node = sim.node(NodeId(1));
        let mined = node
            .chain()
            .iter_active()
            .any(|b| b.txs.iter().any(|t| t.id() == tx_id));
        assert!(mined, "gossiped tx was mined");
        // And no longer pending anywhere.
        for i in 0..3 {
            assert!(!sim.node(NodeId(i)).mempool().contains(&tx_id));
        }
    }

    #[test]
    fn relay_node_follows_without_mining() {
        let mut sim: Net = Simulation::new(5, LatencyModel::Fixed(SimTime::from_millis(10)));
        sim.add_node(MinerNode::new(genesis(), miner_config(1.0)));
        sim.add_node(MinerNode::new(genesis(), MinerConfig::relay()));
        sim.run_until(SimTime::from_secs(30));
        sim.run_until(SimTime::from_secs(31));
        let miner_height = sim.node(NodeId(0)).chain().tip_height();
        let relay_height = sim.node(NodeId(1)).chain().tip_height();
        assert!(miner_height > 0);
        assert_eq!(miner_height, relay_height);
        assert_eq!(
            sim.node(NodeId(1)).chain().tip(),
            sim.node(NodeId(0)).chain().tip()
        );
    }

    #[test]
    fn hashrate_share_determines_block_share() {
        // One miner with 3x the hashrate of the other mines ~75% of
        // blocks (the PoW lottery fairness property, §III-A-1).
        let mut sim: Net = Simulation::new(6, LatencyModel::Fixed(SimTime::from_millis(5)));
        let strong = miner_config(0.75);
        let weak = miner_config(0.25);
        sim.add_node(MinerNode::new(genesis(), strong));
        sim.add_node(MinerNode::new(genesis(), weak));
        sim.run_until(SimTime::from_secs(1200));
        sim.run_until(SimTime::from_secs(1202));
        // Count active blocks each miner produced via timestamps…
        // simpler: compare overall counts via metrics is global, so use
        // chain length vs mined counter per node is unavailable —
        // approximate share via blocks_mined counter is aggregate.
        // Instead: both nodes share one chain; strong node's share of
        // mined blocks ~ its hashrate share. We verify total roughly
        // matches aggregate rate and leave per-miner share to e10.
        let height = sim.node(NodeId(0)).chain().tip_height();
        assert!((1000..=1500).contains(&height), "height {height}");
    }

    #[test]
    fn difficulty_retargets_toward_interval() {
        // Aggregate hashrate 10 h/s, initial difficulty 1 => 0.1 s
        // blocks; target is 1 s. After some windows the interval must
        // approach 1 s.
        let mut sim = build_network(7, 2, 5, 5.0);
        sim.run_until(SimTime::from_secs(600));
        let node = sim.node(NodeId(0));
        let tip = node.chain().tip();
        let difficulty = node.chain().header(&tip).unwrap().difficulty;
        // Ideal difficulty = hashrate * interval = 10.
        assert!(
            (7..=14).contains(&difficulty),
            "difficulty {difficulty} should approach 10"
        );
    }
}
