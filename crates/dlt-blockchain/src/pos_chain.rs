//! The assembled proof-of-stake chain (paper §III-A-2, §IV-A).
//!
//! [`PosChain`] composes the Ethereum-like account chain with the PoS
//! machinery of [`pos`](crate::pos): 4-second slots whose proposer is
//! drawn stake-weighted from the validator set, Casper-FFG checkpoint
//! votes at epoch boundaries, equivocation slashing, and — the paper's
//! "non-reversible checkpoints, guaranteeing block inclusion" — a fork
//! choice that refuses any reorg of a finalized block.

use dlt_crypto::keys::Address;
use dlt_crypto::Digest;

use crate::account::AccountTx;
use crate::block::Block;
use crate::chain::InsertOutcome;
use crate::ethereum::{EthereumChain, EthereumError, EthereumParams};
use crate::pos::{
    CasperFfg, Checkpoint, EquivocationDetector, EquivocationEvidence, FfgOutcome, FfgVote,
    ValidatorSet,
};

/// PoS-specific parameters.
#[derive(Debug, Clone, Copy)]
pub struct PosParams {
    /// Slot duration in microseconds (paper: PoS "should decrease
    /// Ethereum's block generation time to 4 seconds or lower").
    pub slot_micros: u64,
    /// Blocks per Casper FFG epoch.
    pub epoch_length: u64,
}

impl Default for PosParams {
    fn default() -> Self {
        PosParams {
            slot_micros: 4_000_000,
            epoch_length: 32,
        }
    }
}

/// Errors specific to the PoS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosChainError {
    /// The block's proposer is not the slot's elected validator.
    WrongProposer {
        /// Who should have proposed.
        expected: Address,
    },
    /// The block would reorg a finalized checkpoint ("non-reversible").
    RevertsFinalized,
    /// No validator has stake — no blocks can be proposed.
    NoValidators,
    /// The underlying chain rejected the block.
    Chain(EthereumError),
}

impl std::fmt::Display for PosChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PosChainError::WrongProposer { expected } => {
                write!(f, "wrong proposer: slot belongs to {expected}")
            }
            PosChainError::RevertsFinalized => f.write_str("reorg would revert a finalized block"),
            PosChainError::NoValidators => f.write_str("no staked validators"),
            PosChainError::Chain(e) => write!(f, "chain rejection: {e}"),
        }
    }
}

impl std::error::Error for PosChainError {}

/// The proof-of-stake chain.
pub struct PosChain {
    chain: EthereumChain,
    ffg: CasperFfg,
    detector: EquivocationDetector,
    params: PosParams,
    /// Height of the newest finalized block (reorg floor).
    finalized_height: u64,
}

impl PosChain {
    /// Creates a PoS chain with the given genesis allocations and
    /// validator deposits.
    pub fn new(
        eth_params: EthereumParams,
        pos_params: PosParams,
        allocations: &[(Address, u64)],
        validators: &[(Address, u64)],
    ) -> Self {
        let chain = EthereumChain::new(eth_params, allocations);
        let mut set = ValidatorSet::new();
        for (validator, stake) in validators {
            set.deposit(*validator, *stake);
        }
        let genesis = chain.chain().genesis();
        PosChain {
            ffg: CasperFfg::new(set, genesis),
            chain,
            detector: EquivocationDetector::new(),
            params: pos_params,
            finalized_height: 0,
        }
    }

    /// The wrapped account chain.
    pub fn chain(&self) -> &EthereumChain {
        &self.chain
    }

    /// The finality gadget (checkpoints, validator registry).
    pub fn ffg(&self) -> &CasperFfg {
        &self.ffg
    }

    /// Height of the newest finalized block.
    pub fn finalized_height(&self) -> u64 {
        self.finalized_height
    }

    /// The slot a timestamp falls into.
    pub fn slot_of(&self, timestamp_micros: u64) -> u64 {
        timestamp_micros / self.params.slot_micros
    }

    /// The validator entitled to propose in `slot` on top of `parent`
    /// (the schedule is seeded by the parent block id, so every node
    /// extending the same branch agrees on it).
    pub fn slot_proposer_on(&self, parent: &Digest, slot: u64) -> Option<Address> {
        self.ffg.validators().select_proposer(parent, slot)
    }

    /// The proposer for `slot` on the current tip.
    pub fn slot_proposer(&self, slot: u64) -> Option<Address> {
        self.slot_proposer_on(&self.chain.chain().tip(), slot)
    }

    /// Submits a transaction to the mempool.
    pub fn submit_tx(&mut self, tx: AccountTx) -> bool {
        self.chain.submit_tx(tx)
    }

    /// Advances one slot: the elected proposer produces a block at the
    /// slot boundary; at epoch boundaries all honest validators cast
    /// FFG votes, possibly justifying/finalizing checkpoints.
    ///
    /// Returns the produced block.
    ///
    /// # Errors
    ///
    /// [`PosChainError::NoValidators`] when no stake is deposited.
    pub fn advance_slot(&mut self, slot: u64) -> Result<Block<AccountTx>, PosChainError> {
        let proposer = self
            .slot_proposer(slot)
            .ok_or(PosChainError::NoValidators)?;
        let timestamp = slot * self.params.slot_micros;
        let block = self.chain.produce_block(proposer, timestamp);
        self.detector.observe(proposer, slot, block.id());

        // Epoch boundary: honest validators vote the chain's newest
        // checkpoint pair.
        let height = block.header.height;
        if height.is_multiple_of(self.params.epoch_length) {
            self.cast_epoch_votes(height);
        }
        Ok(block)
    }

    /// All validators vote `last justified → current checkpoint`.
    fn cast_epoch_votes(&mut self, height: u64) {
        let epoch = height / self.params.epoch_length;
        let block = self
            .chain
            .chain()
            .active_at(height)
            .expect("checkpoint height is active");
        let target = Checkpoint { epoch, block };
        let source = self.latest_justified(epoch);
        let voters: Vec<Address> = self
            .ffg
            .validators()
            .stakes()
            .map(|(validator, _)| validator)
            .collect();
        for validator in voters {
            let outcome = self.ffg.process_vote(FfgVote {
                validator,
                source,
                target,
            });
            if let FfgOutcome::Finalized { finalized, .. } = outcome {
                let header_height = finalized.epoch * self.params.epoch_length;
                self.finalized_height = self.finalized_height.max(header_height);
            }
        }
    }

    /// The justified checkpoint with the highest epoch below `epoch`.
    fn latest_justified(&self, epoch: u64) -> Checkpoint {
        let mut best = Checkpoint {
            epoch: 0,
            block: self.chain.chain().genesis(),
        };
        for e in (0..epoch).rev() {
            let height = e * self.params.epoch_length;
            if let Some(block) = self.chain.chain().active_at(height) {
                let cp = Checkpoint { epoch: e, block };
                if self.ffg.is_justified(&cp) {
                    best = cp;
                    break;
                }
            }
        }
        best
    }

    /// Integrates an externally produced block, enforcing the slot
    /// proposer, equivocation slashing, and — crucially — finality:
    /// a branch that would revert a finalized block is rejected no
    /// matter how long it is.
    pub fn receive_block(
        &mut self,
        block: Block<AccountTx>,
        slot: u64,
    ) -> Result<InsertOutcome, PosChainError> {
        let expected = self
            .slot_proposer_on(&block.header.parent, slot)
            .ok_or(PosChainError::NoValidators)?;
        if block.header.proposer != expected {
            return Err(PosChainError::WrongProposer { expected });
        }
        if let Some(evidence) = self.detector.observe(expected, slot, block.id()) {
            self.slash_for(&evidence);
            // The equivocating block is still structurally processable;
            // real designs orphan it — we reject it outright.
            return Err(PosChainError::Chain(EthereumError::Structure(
                crate::chain::BlockError::UnexpectedGenesis,
            )));
        }

        // Finality veto BEFORE fork choice can switch: if this block's
        // branch would out-work the tip but forks below the finalized
        // height, refuse it — "non-reversible checkpoints".
        let store = self.chain.chain();
        if let Some(parent_work) = store.chainwork(&block.header.parent) {
            let new_work = parent_work + u128::from(block.header.difficulty);
            let tip_work = store.chainwork(&store.tip()).expect("tip is stored");
            if new_work > tip_work && !store.is_active(&block.header.parent) {
                // Walk to the fork point.
                let mut cursor = block.header.parent;
                while !store.is_active(&cursor) {
                    cursor = store
                        .header(&cursor)
                        .expect("side-branch ancestors are stored")
                        .parent;
                }
                let fork_height = store.header(&cursor).expect("active").height;
                if fork_height < self.finalized_height {
                    return Err(PosChainError::RevertsFinalized);
                }
            }
        }
        let outcome = self
            .chain
            .receive_block(block)
            .map_err(PosChainError::Chain)?;
        // Post-hoc enforcement: an orphan cascade can assemble a branch
        // whose total work only exceeds the tip once a missing parent
        // arrives, bypassing the pre-veto. Undo any reorg that touched
        // finalized history.
        if let InsertOutcome::Reorged {
            reverted, applied, ..
        } = &outcome
        {
            let reverts_finalized = reverted.iter().any(|id| {
                self.chain
                    .chain()
                    .header(id)
                    .is_some_and(|h| h.height <= self.finalized_height)
            });
            if reverts_finalized {
                if let Some(first_applied) = applied.first() {
                    self.chain.invalidate(first_applied);
                }
                return Err(PosChainError::RevertsFinalized);
            }
        }
        Ok(outcome)
    }

    /// Slashes a proposer caught double-signing.
    pub fn slash_for(&mut self, evidence: &EquivocationEvidence) -> u64 {
        self.ffg.validators_mut().slash(&evidence.proposer)
    }

    /// Blocks per second this configuration produces (the §VI
    /// comparison: ~4 s slots vs 15 s PoW blocks).
    pub fn blocks_per_second(&self) -> f64 {
        1e6 / self.params.slot_micros as f64
    }

    /// The id of the block proposed at `height`, if active.
    pub fn block_at(&self, height: u64) -> Option<Digest> {
        self.chain.chain().active_at(height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountHolder;

    fn setup(epoch_length: u64) -> (PosChain, AccountHolder) {
        setup_with_validators(epoch_length, 4)
    }

    fn setup_with_validators(epoch_length: u64, n: usize) -> (PosChain, AccountHolder) {
        let alice = AccountHolder::from_seed([1u8; 32], 8);
        let validators: Vec<(Address, u64)> = (0..n)
            .map(|i| (Address::from_label(&format!("validator-{i}")), 100))
            .collect();
        let chain = PosChain::new(
            EthereumParams::default(),
            PosParams {
                slot_micros: 4_000_000,
                epoch_length,
            },
            &[(alice.address(), 10_000_000)],
            &validators,
        );
        (chain, alice)
    }

    #[test]
    fn slots_produce_blocks_with_elected_proposers() {
        let (mut chain, mut alice) = setup(8);
        for slot in 1..=10u64 {
            chain.submit_tx(alice.transfer(Address::from_label("bob"), 10, 1));
            let expected = chain.slot_proposer(slot).unwrap();
            let block = chain.advance_slot(slot).unwrap();
            assert_eq!(block.header.proposer, expected);
        }
        assert_eq!(chain.chain().chain().tip_height(), 10);
        assert_eq!(chain.chain().balance(&Address::from_label("bob")), 100);
    }

    #[test]
    fn epochs_finalize_checkpoints() {
        let (mut chain, _) = setup(4);
        // Two epochs of blocks: epoch-1 checkpoint (height 4) justified
        // at height 4, finalized when height 8's votes justify epoch 2.
        for slot in 1..=8u64 {
            chain.advance_slot(slot).unwrap();
        }
        assert_eq!(chain.finalized_height(), 4);
        let cp_block = chain.block_at(4).unwrap();
        assert!(chain.ffg().is_finalized(&Checkpoint {
            epoch: 1,
            block: cp_block
        }));
    }

    #[test]
    fn finalized_blocks_cannot_be_reorged() {
        // A single validator keeps the proposer schedule unambiguous so
        // the test isolates the finality veto itself.
        let (mut chain, _) = setup_with_validators(2, 1);
        for slot in 1..=6u64 {
            chain.advance_slot(slot).unwrap();
        }
        assert!(chain.finalized_height() >= 2);
        let finalized_block = chain.block_at(chain.finalized_height()).unwrap();

        // A rival branch from genesis that is longer, produced by the
        // same (only) validator on its own chain copy with divergent
        // traffic. Feeding it with fresh slots avoids self-equivocation.
        let (mut rival, mut rival_alice) = setup_with_validators(2, 1);
        rival.submit_tx(rival_alice.transfer(Address::from_label("divergence"), 1, 1));
        for slot in 1..=8u64 {
            rival.advance_slot(slot).unwrap();
        }
        assert_ne!(rival.block_at(1), chain.block_at(1), "branches diverge");

        let rival_active: Vec<Digest> = rival.chain().chain().active_chain().to_vec();
        let mut rejected_finality = false;
        for (height, id) in rival_active.iter().enumerate().skip(1) {
            let block = rival.chain().chain().block(id).unwrap().clone();
            match chain.receive_block(block, 100 + height as u64) {
                Err(PosChainError::RevertsFinalized) => {
                    rejected_finality = true;
                    break;
                }
                Ok(InsertOutcome::Reorged { .. }) => {
                    panic!("finalized history was reorged");
                }
                _ => {}
            }
        }
        assert!(rejected_finality, "finality veto fired");
        // The finalized block is still active.
        assert!(chain.chain().chain().is_active(&finalized_block));
    }

    #[test]
    fn equivocation_is_slashed_on_receive() {
        let (mut chain, _) = setup(8);
        let slot = 1u64;
        let proposer = chain.slot_proposer(slot).unwrap();
        let stake_before = chain.ffg().validators().total_stake();
        // The proposer's legitimate block.
        chain.advance_slot(slot).unwrap();
        // …and a second, different block for the same slot.
        let mut second = chain
            .chain()
            .chain()
            .block(&chain.chain().chain().tip())
            .unwrap()
            .clone();
        second.header.timestamp_micros += 1;
        let second = Block::new(second.header.clone(), second.txs.clone());
        let result = chain.receive_block(second, slot);
        assert!(result.is_err());
        assert!(chain.ffg().validators().is_slashed(&proposer));
        assert!(chain.ffg().validators().total_stake() < stake_before);
    }

    #[test]
    fn pos_block_rate_beats_pow() {
        let (chain, _) = setup(32);
        assert_eq!(chain.blocks_per_second(), 0.25); // 4 s slots
                                                     // vs 1/15 for PoW Ethereum and 1/600 for Bitcoin.
        assert!(chain.blocks_per_second() > 1.0 / 15.0);
    }

    #[test]
    fn no_validators_no_blocks() {
        let alice = AccountHolder::from_seed([2u8; 32], 4);
        let mut chain = PosChain::new(
            EthereumParams::default(),
            PosParams::default(),
            &[(alice.address(), 1_000)],
            &[],
        );
        assert_eq!(chain.advance_slot(1), Err(PosChainError::NoValidators));
    }
}
