//! The UTXO transaction model (Bitcoin-like, paper §II-A).
//!
//! Value lives in *unspent transaction outputs*. A transaction consumes
//! existing outputs — proving ownership with a public key matching the
//! output's address and a signature over the transaction — and creates
//! new ones. The miner's *coinbase* transaction has no inputs and may
//! pay out the block subsidy plus the block's fees.
//!
//! [`UtxoLedger`] maintains the authoritative output set for the active
//! chain and supports *undo* of applied blocks, which is what makes the
//! soft-fork reorgs of §IV-A implementable: reverted blocks give their
//! outputs back and un-create what they introduced.
//!
//! One simplification vs. Bitcoin: a transaction declares its fee
//! explicitly (wallets know it anyway) so the chain-level
//! [`LedgerTx`] interface can report fees without a UTXO-set lookup;
//! validation recomputes the true fee and rejects mismatches.

use std::collections::{BTreeMap, BTreeSet};

use dlt_crypto::codec::{Decode, DecodeError, Encode};
use dlt_crypto::keys::{Address, Keypair, PublicKey, Signature};
use dlt_crypto::sha256::{double_sha256, Sha256};
use dlt_crypto::Digest;
use dlt_sim::rng::SimRng;

use crate::block::{Block, LedgerTx};

/// A reference to one output of a prior transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutPoint {
    /// The transaction that created the output.
    pub txid: Digest,
    /// Index into that transaction's output list.
    pub index: u32,
}

impl Encode for OutPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.txid.encode(out);
        self.index.encode(out);
    }
}

impl Decode for OutPoint {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(OutPoint {
            txid: Digest::decode(input)?,
            index: u32::decode(input)?,
        })
    }
}

/// A spendable output: an amount locked to an address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOutput {
    /// Amount in base units.
    pub amount: u64,
    /// The owner: hash of the public key allowed to spend.
    pub recipient: Address,
}

impl Encode for TxOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        self.amount.encode(out);
        self.recipient.encode(out);
    }
}

impl Decode for TxOutput {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(TxOutput {
            amount: u64::decode(input)?,
            recipient: Address::decode(input)?,
        })
    }
}

/// An input: an outpoint plus the ownership proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxInput {
    /// The output being spent.
    pub outpoint: OutPoint,
    /// The public key whose hash must equal the output's address.
    pub pubkey: PublicKey,
    /// Signature over the transaction's [sighash](UtxoTx::sighash).
    pub signature: Signature,
}

impl Encode for TxInput {
    fn encode(&self, out: &mut Vec<u8>) {
        self.outpoint.encode(out);
        self.pubkey.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for TxInput {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(TxInput {
            outpoint: OutPoint::decode(input)?,
            pubkey: PublicKey::decode(input)?,
            signature: Signature::decode(input)?,
        })
    }
}

/// A UTXO transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtxoTx {
    /// Inputs (empty for a coinbase transaction).
    pub inputs: Vec<TxInput>,
    /// Outputs created.
    pub outputs: Vec<TxOutput>,
    /// Declared fee (inputs minus outputs); validation recomputes and
    /// compares. Zero for coinbase.
    pub declared_fee: u64,
    /// Coinbase marker data: the block height, making each coinbase
    /// unique (as BIP 34 requires). Zero for regular transactions.
    pub coinbase_height: u64,
}

impl UtxoTx {
    /// Builds the miner's coinbase transaction for `height`.
    pub fn coinbase(height: u64, reward: u64, miner: Address) -> Self {
        UtxoTx {
            inputs: Vec::new(),
            outputs: vec![TxOutput {
                amount: reward,
                recipient: miner,
            }],
            declared_fee: 0,
            coinbase_height: height,
        }
    }

    /// Whether this is a coinbase transaction.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The message each input's key signs: a hash over the outpoints,
    /// outputs and declared fee (the ownership proofs themselves are
    /// excluded, like Bitcoin blanks scriptSigs while signing).
    pub fn sighash(&self) -> Digest {
        let outpoints: Vec<OutPoint> = self.inputs.iter().map(|i| i.outpoint).collect();
        sighash_over(
            &outpoints,
            &self.outputs,
            self.declared_fee,
            self.coinbase_height,
        )
    }

    /// Total amount of the outputs.
    pub fn output_total(&self) -> u64 {
        self.outputs.iter().map(|o| o.amount).sum()
    }
}

/// Computes the signing message from transaction parts (used both by
/// [`UtxoTx::sighash`] and by wallets before inputs carry signatures).
fn sighash_over(
    outpoints: &[OutPoint],
    outputs: &[TxOutput],
    declared_fee: u64,
    coinbase_height: u64,
) -> Digest {
    let mut h = Sha256::new();
    h.update(b"utxo-sighash");
    let mut buf = Vec::new();
    for outpoint in outpoints {
        outpoint.encode(&mut buf);
    }
    outputs.to_vec().encode(&mut buf);
    declared_fee.encode(&mut buf);
    coinbase_height.encode(&mut buf);
    h.update(&buf);
    h.finalize()
}

impl Encode for UtxoTx {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inputs.encode(out);
        self.outputs.encode(out);
        self.declared_fee.encode(out);
        self.coinbase_height.encode(out);
    }
}

impl Decode for UtxoTx {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(UtxoTx {
            inputs: Vec::<TxInput>::decode(input)?,
            outputs: Vec::<TxOutput>::decode(input)?,
            declared_fee: u64::decode(input)?,
            coinbase_height: u64::decode(input)?,
        })
    }
}

impl LedgerTx for UtxoTx {
    fn id(&self) -> Digest {
        double_sha256(&self.encode_to_vec())
    }
    fn fee(&self) -> u64 {
        self.declared_fee
    }
    fn weight(&self) -> u64 {
        self.encoded_size() as u64
    }
    fn encoded_size(&self) -> usize {
        self.encoded_len()
    }
}

/// Why a transaction or block failed UTXO validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtxoError {
    /// An input references an output that doesn't exist (or was spent).
    MissingInput,
    /// The spender's public key doesn't hash to the output's address.
    WrongOwner,
    /// The ownership signature failed verification.
    BadSignature,
    /// The same outpoint is consumed twice (within a tx or block) —
    /// the double spend.
    DoubleSpend,
    /// Outputs exceed inputs.
    Overspend,
    /// The declared fee differs from inputs − outputs.
    FeeMismatch,
    /// A non-first transaction is a coinbase, or the first isn't.
    CoinbaseMisplaced,
    /// The coinbase pays more than subsidy + fees.
    CoinbaseOverpays,
    /// A transaction has no outputs.
    NoOutputs,
}

impl std::fmt::Display for UtxoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            UtxoError::MissingInput => "input references a missing or spent output",
            UtxoError::WrongOwner => "public key does not match output address",
            UtxoError::BadSignature => "invalid ownership signature",
            UtxoError::DoubleSpend => "outpoint spent twice",
            UtxoError::Overspend => "outputs exceed inputs",
            UtxoError::FeeMismatch => "declared fee does not match inputs minus outputs",
            UtxoError::CoinbaseMisplaced => "coinbase transaction misplaced",
            UtxoError::CoinbaseOverpays => "coinbase exceeds subsidy plus fees",
            UtxoError::NoOutputs => "transaction has no outputs",
        };
        f.write_str(text)
    }
}

impl std::error::Error for UtxoError {}

/// Undo data for one applied block: what to restore and what to delete
/// on revert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockUndo {
    spent: Vec<(OutPoint, TxOutput)>,
    created: Vec<OutPoint>,
}

impl BlockUndo {
    /// Approximate encoded size in bytes — pruned nodes keep recent
    /// undo data, so it participates in size accounting (§V-A).
    pub fn size_bytes(&self) -> usize {
        self.spent.len() * (36 + 40) + self.created.len() * 36
    }
}

/// The unspent output set plus block application/undo.
#[derive(Debug, Clone, Default)]
pub struct UtxoLedger {
    utxos: BTreeMap<OutPoint, TxOutput>,
    /// When false, signatures are assumed valid (Bitcoin's
    /// `assumevalid` behaviour) — used by large network simulations
    /// where per-input hash-based signature checks would dominate
    /// runtime without changing any measured behaviour.
    verify_signatures: bool,
}

impl UtxoLedger {
    /// Creates an empty ledger with full signature verification.
    pub fn new() -> Self {
        UtxoLedger {
            utxos: BTreeMap::new(),
            verify_signatures: true,
        }
    }

    /// Creates a ledger that skips signature checks (`assumevalid`).
    pub fn new_assume_valid() -> Self {
        UtxoLedger {
            utxos: BTreeMap::new(),
            verify_signatures: false,
        }
    }

    /// Number of unspent outputs.
    pub fn utxo_count(&self) -> usize {
        self.utxos.len()
    }

    /// Sum of all unspent amounts (total money supply in circulation).
    pub fn total_value(&self) -> u64 {
        self.utxos.values().map(|o| o.amount).sum()
    }

    /// Looks up an unspent output.
    pub fn utxo(&self, outpoint: &OutPoint) -> Option<&TxOutput> {
        self.utxos.get(outpoint)
    }

    /// Balance of an address (sum of its unspent outputs).
    pub fn balance(&self, address: &Address) -> u64 {
        self.utxos
            .values()
            .filter(|o| o.recipient == *address)
            .map(|o| o.amount)
            .sum()
    }

    /// All unspent outpoints owned by an address.
    pub fn outpoints_of(&self, address: &Address) -> Vec<(OutPoint, u64)> {
        let mut v: Vec<(OutPoint, u64)> = self
            .utxos
            .iter()
            .filter(|(_, o)| o.recipient == *address)
            .map(|(op, o)| (*op, o.amount))
            .collect();
        v.sort();
        v
    }

    /// Validates one regular transaction against the current set plus
    /// `block_spent` (outpoints consumed earlier in the same block).
    fn validate_regular(
        &self,
        tx: &UtxoTx,
        block_created: &BTreeMap<OutPoint, TxOutput>,
        block_spent: &BTreeSet<OutPoint>,
    ) -> Result<u64, UtxoError> {
        if tx.outputs.is_empty() {
            return Err(UtxoError::NoOutputs);
        }
        let sighash = tx.sighash();
        let mut seen = BTreeSet::new();
        let mut input_total = 0u64;
        for input in &tx.inputs {
            if !seen.insert(input.outpoint) || block_spent.contains(&input.outpoint) {
                return Err(UtxoError::DoubleSpend);
            }
            let output = self
                .utxos
                .get(&input.outpoint)
                .or_else(|| block_created.get(&input.outpoint))
                .ok_or(UtxoError::MissingInput)?;
            if input.pubkey.address() != output.recipient {
                return Err(UtxoError::WrongOwner);
            }
            if self.verify_signatures && !input.signature.verify(&sighash, &input.pubkey) {
                return Err(UtxoError::BadSignature);
            }
            input_total += output.amount;
        }
        let output_total = tx.output_total();
        if output_total > input_total {
            return Err(UtxoError::Overspend);
        }
        let fee = input_total - output_total;
        if fee != tx.declared_fee {
            return Err(UtxoError::FeeMismatch);
        }
        Ok(fee)
    }

    /// Applies a block: the first transaction must be the coinbase
    /// (when the block is non-empty), the rest regular. On success the
    /// output set is updated and undo data returned; on failure the
    /// ledger is unchanged.
    ///
    /// `subsidy` is the block reward the coinbase may claim on top of
    /// the block's fees.
    ///
    /// # Errors
    ///
    /// Any [`UtxoError`] leaves the ledger untouched.
    pub fn apply_block(
        &mut self,
        block: &Block<UtxoTx>,
        subsidy: u64,
    ) -> Result<BlockUndo, UtxoError> {
        // Validate first, then mutate: collect fees and stage changes.
        let mut block_created: BTreeMap<OutPoint, TxOutput> = BTreeMap::new();
        let mut block_spent: BTreeSet<OutPoint> = BTreeSet::new();
        let mut fees = 0u64;

        for (i, tx) in block.txs.iter().enumerate() {
            if i == 0 {
                if !tx.is_coinbase() {
                    return Err(UtxoError::CoinbaseMisplaced);
                }
                if tx.outputs.is_empty() {
                    return Err(UtxoError::NoOutputs);
                }
            } else {
                if tx.is_coinbase() {
                    return Err(UtxoError::CoinbaseMisplaced);
                }
                fees += self.validate_regular(tx, &block_created, &block_spent)?;
                for input in &tx.inputs {
                    block_spent.insert(input.outpoint);
                }
            }
            let txid = tx.id();
            for (index, output) in tx.outputs.iter().enumerate() {
                block_created.insert(
                    OutPoint {
                        txid,
                        index: index as u32,
                    },
                    output.clone(),
                );
            }
        }
        if let Some(coinbase) = block.txs.first() {
            if coinbase.output_total() > subsidy + fees {
                return Err(UtxoError::CoinbaseOverpays);
            }
        }

        // Commit.
        let mut undo = BlockUndo::default();
        for outpoint in &block_spent {
            // In-block outputs spent in-block never hit the set.
            if let Some(prev) = self.utxos.remove(outpoint) {
                undo.spent.push((*outpoint, prev));
            }
        }
        for (outpoint, output) in block_created {
            if block_spent.contains(&outpoint) {
                continue; // created and consumed within the block
            }
            self.utxos.insert(outpoint, output);
            undo.created.push(outpoint);
        }
        Ok(undo)
    }

    /// Reverts a block using its undo data (reorg support, §IV-A).
    /// Blocks must be reverted newest-first.
    pub fn revert_block(&mut self, undo: BlockUndo) {
        for outpoint in undo.created {
            self.utxos.remove(&outpoint);
        }
        for (outpoint, output) in undo.spent {
            self.utxos.insert(outpoint, output);
        }
    }

    /// Encoded size of the UTXO set in bytes — what a "current" node
    /// must keep even after pruning history.
    pub fn size_bytes(&self) -> usize {
        self.utxos
            .iter()
            .map(|(op, o)| op.encoded_len() + o.encoded_len())
            .sum()
    }
}

/// A simple key-managing wallet for tests, examples and workload
/// generation. Generates a fresh one-time key per address (the
/// address-hygiene practice Bitcoin wallets follow, and a hard
/// requirement for our one-time signature schemes).
#[derive(Debug)]
pub struct Wallet {
    /// Sorted by address so input selection iterates in a
    /// deterministic order — a `HashMap` here made transaction
    /// construction depend on per-instance hash seeds.
    keys: BTreeMap<Address, Keypair>,
    rng: SimRng,
}

impl Wallet {
    /// Creates a wallet with a deterministic key stream.
    pub fn new(seed: u64) -> Self {
        Wallet {
            keys: BTreeMap::new(),
            rng: SimRng::new(seed),
        }
    }

    /// Generates a fresh address (one-time WOTS key).
    pub fn new_address(&mut self) -> Address {
        let keypair = Keypair::wots_from_seed(self.rng.seed32());
        let address = keypair.address();
        self.keys.insert(address, keypair);
        address
    }

    /// Whether the wallet holds the key for an address.
    pub fn owns(&self, address: &Address) -> bool {
        self.keys.contains_key(address)
    }

    /// Spendable balance of this wallet in `ledger`.
    pub fn balance(&self, ledger: &UtxoLedger) -> u64 {
        self.keys.keys().map(|a| ledger.balance(a)).sum()
    }

    /// Builds and signs a transfer of `amount` to `to` with `fee`,
    /// selecting inputs greedily from this wallet's unspent outputs and
    /// sending change to a fresh address.
    ///
    /// Returns `None` if the wallet cannot cover `amount + fee`.
    pub fn build_transfer(
        &mut self,
        ledger: &UtxoLedger,
        to: Address,
        amount: u64,
        fee: u64,
    ) -> Option<UtxoTx> {
        let needed = amount + fee;
        let mut selected: Vec<(OutPoint, u64, Address)> = Vec::new();
        let mut gathered = 0u64;
        let addresses: Vec<Address> = self.keys.keys().copied().collect();
        'outer: for address in addresses {
            for (outpoint, value) in ledger.outpoints_of(&address) {
                selected.push((outpoint, value, address));
                gathered += value;
                if gathered >= needed {
                    break 'outer;
                }
            }
        }
        if gathered < needed {
            return None;
        }

        let mut outputs = vec![TxOutput {
            amount,
            recipient: to,
        }];
        let change = gathered - needed;
        if change > 0 {
            let change_address = self.new_address();
            outputs.push(TxOutput {
                amount: change,
                recipient: change_address,
            });
        }

        // Sign before assembling inputs: the sighash covers outpoints,
        // outputs and fee, not the proofs themselves. Each one-time key
        // is consumed (removed) by its single signature.
        let outpoints: Vec<OutPoint> = selected.iter().map(|(op, _, _)| *op).collect();
        let sighash = sighash_over(&outpoints, &outputs, fee, 0);
        // An address may own several selected outpoints; signing the
        // *same* sighash repeatedly with a one-time key is safe (it
        // yields the identical signature), so cache per address.
        let mut signed: BTreeMap<Address, (PublicKey, Signature)> = BTreeMap::new();
        let mut inputs = Vec::with_capacity(selected.len());
        for (outpoint, _, address) in &selected {
            let (pubkey, signature) = match signed.get(address) {
                Some(entry) => entry.clone(),
                None => {
                    let mut keypair = self
                        .keys
                        .remove(address)
                        .expect("selected inputs come from owned addresses");
                    let pubkey = keypair.public_key();
                    let signature = keypair.sign(&sighash).expect("one-time keys never exhaust");
                    signed.insert(*address, (pubkey, signature.clone()));
                    (pubkey, signature)
                }
            };
            inputs.push(TxInput {
                outpoint: *outpoint,
                pubkey,
                signature,
            });
        }
        Some(UtxoTx {
            inputs,
            outputs,
            declared_fee: fee,
            coinbase_height: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testutil::header;

    fn genesis_with_funds(wallet: &mut Wallet, amount: u64) -> (Block<UtxoTx>, Address) {
        let address = wallet.new_address();
        let coinbase = UtxoTx::coinbase(0, amount, address);
        (Block::new(header(Digest::ZERO, 0), vec![coinbase]), address)
    }

    fn block_at(height: u64, txs: Vec<UtxoTx>) -> Block<UtxoTx> {
        let parent = dlt_crypto::sha256::sha256(&height.to_be_bytes());
        Block::new(header(parent, height), txs)
    }

    #[test]
    fn coinbase_creates_money() {
        let mut wallet = Wallet::new(1);
        let mut ledger = UtxoLedger::new();
        let (genesis, address) = genesis_with_funds(&mut wallet, 50);
        ledger.apply_block(&genesis, 50).unwrap();
        assert_eq!(ledger.total_value(), 50);
        assert_eq!(ledger.balance(&address), 50);
        assert_eq!(ledger.utxo_count(), 1);
    }

    #[test]
    fn transfer_moves_value_and_pays_fee() {
        let mut wallet = Wallet::new(2);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let mut recipient_wallet = Wallet::new(3);
        let to = recipient_wallet.new_address();
        let tx = wallet.build_transfer(&ledger, to, 30, 5).expect("funded");
        assert_eq!(tx.declared_fee, 5);

        let miner = Address::from_label("miner");
        let coinbase = UtxoTx::coinbase(1, 50 + 5, miner);
        let block = block_at(1, vec![coinbase, tx]);
        ledger.apply_block(&block, 50).unwrap();

        assert_eq!(ledger.balance(&to), 30);
        assert_eq!(ledger.balance(&miner), 55);
        assert_eq!(wallet.balance(&ledger), 65); // 100 - 30 - 5
                                                 // Total supply: 100 genesis + 50 subsidy (fee recirculates).
        assert_eq!(ledger.total_value(), 150);
    }

    #[test]
    fn double_spend_within_block_rejected() {
        let mut wallet = Wallet::new(4);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let to = Address::from_label("victim");
        let tx1 = wallet.build_transfer(&ledger, to, 90, 0).unwrap();
        // Rebuild an identical spend of the same input from a cloned
        // wallet state — simulate by crafting tx2 reusing tx1's input.
        let mut tx2 = tx1.clone();
        tx2.outputs[0].recipient = Address::from_label("attacker");
        // tx2's signature is now wrong, but double-spend must trigger
        // first regardless of signature validity order; use same output
        // set to check both orderings reject.
        let coinbase = UtxoTx::coinbase(1, 50, Address::from_label("miner"));
        let block = block_at(1, vec![coinbase, tx1, tx2]);
        let err = ledger.apply_block(&block, 50).unwrap_err();
        assert!(
            matches!(err, UtxoError::DoubleSpend | UtxoError::BadSignature),
            "got {err:?}"
        );
        // Failed application leaves the ledger untouched.
        assert_eq!(ledger.total_value(), 100);
        assert_eq!(ledger.utxo_count(), 1);
    }

    #[test]
    fn double_spend_across_blocks_rejected() {
        let mut wallet = Wallet::new(5);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 50, 0)
            .unwrap();
        let b1 = block_at(
            1,
            vec![
                UtxoTx::coinbase(1, 50, Address::from_label("m")),
                tx.clone(),
            ],
        );
        ledger.apply_block(&b1, 50).unwrap();

        // Replay the same tx in the next block: inputs now missing.
        let b2 = block_at(
            2,
            vec![UtxoTx::coinbase(2, 50, Address::from_label("m")), tx],
        );
        assert_eq!(ledger.apply_block(&b2, 50), Err(UtxoError::MissingInput));
    }

    #[test]
    fn wrong_owner_rejected() {
        let mut wallet = Wallet::new(6);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let mut tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 10, 0)
            .unwrap();
        // Swap in a different pubkey.
        let intruder = Keypair::wots_from_seed([9u8; 32]);
        tx.inputs[0].pubkey = intruder.public_key();
        let block = block_at(
            1,
            vec![UtxoTx::coinbase(1, 50, Address::from_label("m")), tx],
        );
        assert_eq!(ledger.apply_block(&block, 50), Err(UtxoError::WrongOwner));
    }

    #[test]
    fn tampered_output_breaks_signature() {
        let mut wallet = Wallet::new(7);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let mut tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 10, 0)
            .unwrap();
        tx.outputs[0].recipient = Address::from_label("attacker");
        let block = block_at(
            1,
            vec![UtxoTx::coinbase(1, 50, Address::from_label("m")), tx],
        );
        assert_eq!(ledger.apply_block(&block, 50), Err(UtxoError::BadSignature));
    }

    #[test]
    fn fee_mismatch_rejected() {
        let mut wallet = Wallet::new(8);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let mut tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 10, 5)
            .unwrap();
        tx.declared_fee = 1; // lie about the fee
        let block = block_at(
            1,
            vec![UtxoTx::coinbase(1, 50, Address::from_label("m")), tx],
        );
        let err = ledger.apply_block(&block, 50).unwrap_err();
        assert!(
            matches!(err, UtxoError::FeeMismatch | UtxoError::BadSignature),
            "got {err:?}"
        );
    }

    #[test]
    fn coinbase_overpay_rejected() {
        let mut ledger = UtxoLedger::new();
        let coinbase = UtxoTx::coinbase(0, 1000, Address::from_label("greedy"));
        let genesis = Block::new(header(Digest::ZERO, 0), vec![coinbase]);
        assert_eq!(
            ledger.apply_block(&genesis, 50),
            Err(UtxoError::CoinbaseOverpays)
        );
    }

    #[test]
    fn coinbase_must_be_first() {
        let mut wallet = Wallet::new(9);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();
        let tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 10, 0)
            .unwrap();
        // Regular tx first.
        let block = block_at(
            1,
            vec![tx, UtxoTx::coinbase(1, 50, Address::from_label("m"))],
        );
        assert_eq!(
            ledger.apply_block(&block, 50),
            Err(UtxoError::CoinbaseMisplaced)
        );
    }

    #[test]
    fn revert_restores_exact_state() {
        let mut wallet = Wallet::new(10);
        let mut ledger = UtxoLedger::new();
        let (genesis, funded) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();
        let before_count = ledger.utxo_count();
        let before_value = ledger.total_value();
        let before_balance = ledger.balance(&funded);

        let tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 25, 1)
            .unwrap();
        let block = block_at(
            1,
            vec![UtxoTx::coinbase(1, 51, Address::from_label("m")), tx],
        );
        let undo = ledger.apply_block(&block, 50).unwrap();
        assert_ne!(ledger.total_value(), before_value);

        ledger.revert_block(undo);
        assert_eq!(ledger.utxo_count(), before_count);
        assert_eq!(ledger.total_value(), before_value);
        assert_eq!(ledger.balance(&funded), before_balance);
    }

    #[test]
    fn intra_block_chained_spend_is_valid() {
        let mut wallet = Wallet::new(11);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        // tx1 pays wallet2; tx2 spends tx1's output in the same block.
        let mut wallet2 = Wallet::new(12);
        let to2 = wallet2.new_address();
        let tx1 = wallet.build_transfer(&ledger, to2, 40, 0).unwrap();

        // wallet2 must see tx1's output to build tx2: apply to a scratch
        // ledger to construct, then validate against the real one.
        let mut scratch = ledger.clone();
        let scratch_block = block_at(
            1,
            vec![
                UtxoTx::coinbase(1, 50, Address::from_label("m")),
                tx1.clone(),
            ],
        );
        scratch.apply_block(&scratch_block, 50).unwrap();
        let tx2 = wallet2
            .build_transfer(&scratch, Address::from_label("end"), 40, 0)
            .unwrap();

        let block = block_at(
            1,
            vec![UtxoTx::coinbase(1, 50, Address::from_label("m")), tx1, tx2],
        );
        ledger.apply_block(&block, 50).unwrap();
        assert_eq!(ledger.balance(&Address::from_label("end")), 40);
    }

    #[test]
    fn wallet_insufficient_funds() {
        let mut wallet = Wallet::new(13);
        let ledger = UtxoLedger::new();
        wallet.new_address();
        assert!(wallet
            .build_transfer(&ledger, Address::from_label("a"), 1, 0)
            .is_none());
    }

    #[test]
    fn assume_valid_skips_signature_checks_only() {
        let mut wallet = Wallet::new(14);
        let mut ledger = UtxoLedger::new_assume_valid();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();

        let mut tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 10, 0)
            .unwrap();
        // Corrupt the signature: assume-valid mode still applies.
        tx.outputs[0].recipient = Address::from_label("elsewhere");
        let block = block_at(
            1,
            vec![UtxoTx::coinbase(1, 50, Address::from_label("m")), tx],
        );
        ledger.apply_block(&block, 50).unwrap();
        // But structural violations (double spends) still fail.
        let mut w2 = Wallet::new(15);
        let mut l2 = UtxoLedger::new_assume_valid();
        let (g2, _) = genesis_with_funds(&mut w2, 100);
        l2.apply_block(&g2, 100).unwrap();
        let t = w2
            .build_transfer(&l2, Address::from_label("x"), 10, 0)
            .unwrap();
        let b = block_at(
            1,
            vec![
                UtxoTx::coinbase(1, 50, Address::from_label("m")),
                t.clone(),
                t,
            ],
        );
        assert_eq!(l2.apply_block(&b, 50), Err(UtxoError::DoubleSpend));
    }

    #[test]
    fn tx_codec_round_trip() {
        use dlt_crypto::codec::decode_exact;
        let mut wallet = Wallet::new(16);
        let mut ledger = UtxoLedger::new();
        let (genesis, _) = genesis_with_funds(&mut wallet, 100);
        ledger.apply_block(&genesis, 100).unwrap();
        let tx = wallet
            .build_transfer(&ledger, Address::from_label("a"), 10, 2)
            .unwrap();
        let back: UtxoTx = decode_exact(&tx.encode_to_vec()).unwrap();
        assert_eq!(back, tx);
        assert_eq!(back.id(), tx.id());
        assert_eq!(back.weight(), tx.encoded_size() as u64);
    }
}
