//! The account/gas transaction model (Ethereum-like, paper §II-A).
//!
//! Instead of unspent outputs, the ledger's state is a map from account
//! address to `(nonce, balance)`, stored in a Merkle Patricia
//! [`TrieDb`] whose root hash is committed in every block header. A
//! transaction names its sender (public key), recipient, amount and a
//! *nonce* (the sender's transaction counter, which orders an account's
//! transactions and blocks replays).
//!
//! Computation is metered in **gas** (paper §VI-A): every transaction
//! consumes an intrinsic 21 000 gas plus a per-payload-byte cost, and
//! pays `gas_used × gas_price` to the block producer. Block capacity is
//! a *gas limit*, not a byte count.
//!
//! Because the state trie is versioned by root hash, reorgs are trivial
//! (re-point at the old root) and the paper's two pruning strategies —
//! state-delta garbage collection and fast sync — fall out of
//! [`TrieDb`]'s structural sharing.

use dlt_crypto::codec::{Decode, DecodeError, Encode};
use dlt_crypto::keys::{Address, PublicKey, Signature};
use dlt_crypto::merkle::merkle_root;
use dlt_crypto::sha256::{sha256, Sha256};
use dlt_crypto::trie::TrieDb;
use dlt_crypto::Digest;

use crate::block::{Block, LedgerTx};

/// Gas charged to every transaction (Ethereum's `G_transaction`).
pub const INTRINSIC_GAS: u64 = 21_000;
/// Gas charged per payload byte (Ethereum's non-zero calldata cost).
pub const GAS_PER_PAYLOAD_BYTE: u64 = 68;

/// One account's state: transaction counter and balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccountState {
    /// Number of transactions this account has sent.
    pub nonce: u64,
    /// Balance in base units.
    pub balance: u64,
}

impl Encode for AccountState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nonce.encode(out);
        self.balance.encode(out);
    }
}

impl Decode for AccountState {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(AccountState {
            nonce: u64::decode(input)?,
            balance: u64::decode(input)?,
        })
    }
}

/// An account-model transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountTx {
    /// Sender's public key; the sender account is its address hash.
    pub from: PublicKey,
    /// Recipient address.
    pub to: Address,
    /// Amount transferred.
    pub amount: u64,
    /// Sender's nonce at send time (orders the account's transactions).
    pub nonce: u64,
    /// Fee per gas unit.
    pub gas_price: u64,
    /// Simulated contract payload size in bytes (drives gas usage; zero
    /// for a plain transfer).
    pub payload_bytes: u32,
    /// Signature over [`AccountTx::sighash`].
    pub signature: Signature,
}

impl AccountTx {
    /// The gas this transaction consumes.
    pub fn gas_used(&self) -> u64 {
        INTRINSIC_GAS + GAS_PER_PAYLOAD_BYTE * u64::from(self.payload_bytes)
    }

    /// The message the sender signs: everything except the signature.
    pub fn sighash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"account-sighash");
        let mut buf = Vec::new();
        self.from.encode(&mut buf);
        self.to.encode(&mut buf);
        self.amount.encode(&mut buf);
        self.nonce.encode(&mut buf);
        self.gas_price.encode(&mut buf);
        self.payload_bytes.encode(&mut buf);
        h.update(&buf);
        h.finalize()
    }

    /// The sender's account address.
    pub fn sender(&self) -> Address {
        self.from.address()
    }
}

impl Encode for AccountTx {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.amount.encode(out);
        self.nonce.encode(out);
        self.gas_price.encode(out);
        self.payload_bytes.encode(out);
        self.signature.encode(out);
        // The payload content is simulated as zero bytes; only its size
        // matters (gas and ledger-size accounting).
        out.extend(std::iter::repeat_n(0u8, self.payload_bytes as usize));
    }
    fn encoded_len(&self) -> usize {
        self.from.encoded_len()
            + self.to.encoded_len()
            + self.amount.encoded_len()
            + self.nonce.encoded_len()
            + self.gas_price.encoded_len()
            + self.payload_bytes.encoded_len()
            + self.signature.encoded_len()
            + self.payload_bytes as usize
    }
}

impl Decode for AccountTx {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let tx = AccountTx {
            from: PublicKey::decode(input)?,
            to: Address::decode(input)?,
            amount: u64::decode(input)?,
            nonce: u64::decode(input)?,
            gas_price: u64::decode(input)?,
            payload_bytes: u32::decode(input)?,
            signature: Signature::decode(input)?,
        };
        // Skip the simulated payload padding.
        let pad = tx.payload_bytes as usize;
        if input.len() < pad {
            return Err(DecodeError::UnexpectedEnd);
        }
        *input = &input[pad..];
        Ok(tx)
    }
}

impl LedgerTx for AccountTx {
    fn id(&self) -> Digest {
        sha256(&self.encode_to_vec())
    }
    fn fee(&self) -> u64 {
        self.gas_used() * self.gas_price
    }
    /// Block capacity in the account model is *gas*, not bytes.
    fn weight(&self) -> u64 {
        self.gas_used()
    }
    fn encoded_size(&self) -> usize {
        self.encoded_len()
    }
}

/// A transaction execution receipt (paper §V-A: fast sync "downloads
/// the transaction receipts along the blocks").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The executed transaction.
    pub tx_id: Digest,
    /// Whether execution succeeded.
    pub success: bool,
    /// Gas consumed by this transaction.
    pub gas_used: u64,
    /// Gas consumed by the block up to and including this transaction.
    pub cumulative_gas: u64,
}

impl Receipt {
    /// The receipt's hash (leaf of the receipts root).
    pub fn hash(&self) -> Digest {
        sha256(&self.encode_to_vec())
    }
}

impl Encode for Receipt {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tx_id.encode(out);
        self.success.encode(out);
        self.gas_used.encode(out);
        self.cumulative_gas.encode(out);
    }
}

impl Decode for Receipt {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Receipt {
            tx_id: Digest::decode(input)?,
            success: bool::decode(input)?,
            gas_used: u64::decode(input)?,
            cumulative_gas: u64::decode(input)?,
        })
    }
}

/// Computes the Merkle root over a block's receipts.
pub fn receipts_root(receipts: &[Receipt]) -> Digest {
    merkle_root(&receipts.iter().map(Receipt::hash).collect::<Vec<_>>())
}

/// Why an account-model transaction or block failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountError {
    /// The signature doesn't verify under the sender key.
    BadSignature,
    /// The nonce doesn't match the sender's account nonce.
    BadNonce {
        /// The account's expected next nonce.
        expected: u64,
        /// The nonce the transaction carried.
        got: u64,
    },
    /// Balance cannot cover amount + fee.
    InsufficientBalance,
    /// The block's transactions exceed its gas limit.
    BlockGasExceeded,
    /// The header's state root doesn't match the post-execution state.
    StateRootMismatch,
    /// The header's receipts root doesn't match the receipts.
    ReceiptsRootMismatch,
}

impl std::fmt::Display for AccountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccountError::BadSignature => f.write_str("invalid sender signature"),
            AccountError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            AccountError::InsufficientBalance => f.write_str("insufficient balance"),
            AccountError::BlockGasExceeded => f.write_str("block gas limit exceeded"),
            AccountError::StateRootMismatch => f.write_str("state root mismatch"),
            AccountError::ReceiptsRootMismatch => f.write_str("receipts root mismatch"),
        }
    }
}

impl std::error::Error for AccountError {}

/// The global state database: a versioned account trie.
#[derive(Debug, Clone)]
pub struct StateDb {
    trie: TrieDb,
    verify_signatures: bool,
}

impl Default for StateDb {
    fn default() -> Self {
        Self::new()
    }
}

impl StateDb {
    /// Creates an empty state database with signature verification on.
    pub fn new() -> Self {
        StateDb {
            trie: TrieDb::new(),
            verify_signatures: true,
        }
    }

    /// Creates a state database that skips signature checks (large
    /// network simulations; the "assume valid" knob).
    pub fn new_assume_valid() -> Self {
        StateDb {
            trie: TrieDb::new(),
            verify_signatures: false,
        }
    }

    /// The empty-state root.
    pub fn empty_root() -> Digest {
        TrieDb::EMPTY_ROOT
    }

    /// Reads an account at a state version (zero state for absent
    /// accounts, as Ethereum treats untouched addresses).
    pub fn account(&self, root: Digest, address: &Address) -> AccountState {
        match self.trie.get(root, address.0.as_bytes()) {
            None => AccountState::default(),
            Some(bytes) => {
                let mut slice = bytes;
                AccountState::decode(&mut slice).expect("stored account states are well-formed")
            }
        }
    }

    /// Writes an account, returning the new state root.
    pub fn set_account(&mut self, root: Digest, address: &Address, state: AccountState) -> Digest {
        self.trie
            .insert(root, address.0.as_bytes(), state.encode_to_vec())
    }

    /// Credits an amount to an account (minting or fee payment).
    pub fn credit(&mut self, root: Digest, address: &Address, amount: u64) -> Digest {
        let mut state = self.account(root, address);
        state.balance += amount;
        self.set_account(root, address, state)
    }

    /// Executes one transaction on `root`, returning the new root and
    /// the receipt. The fee goes to `producer`.
    ///
    /// # Errors
    ///
    /// Signature, nonce and balance violations reject the transaction
    /// without changing state.
    pub fn apply_tx(
        &mut self,
        root: Digest,
        tx: &AccountTx,
        producer: &Address,
    ) -> Result<(Digest, Receipt), AccountError> {
        if self.verify_signatures && !tx.signature.verify(&tx.sighash(), &tx.from) {
            return Err(AccountError::BadSignature);
        }
        let sender_addr = tx.sender();
        let mut sender = self.account(root, &sender_addr);
        if tx.nonce != sender.nonce {
            return Err(AccountError::BadNonce {
                expected: sender.nonce,
                got: tx.nonce,
            });
        }
        let fee = tx.fee();
        let total = tx
            .amount
            .checked_add(fee)
            .ok_or(AccountError::InsufficientBalance)?;
        if sender.balance < total {
            return Err(AccountError::InsufficientBalance);
        }
        sender.nonce += 1;
        sender.balance -= total;
        let mut new_root = self.set_account(root, &sender_addr, sender);

        // Self-transfers and producer fee credits must re-read state.
        let mut recipient = self.account(new_root, &tx.to);
        recipient.balance += tx.amount;
        new_root = self.set_account(new_root, &tx.to, recipient);

        let mut producer_state = self.account(new_root, producer);
        producer_state.balance += fee;
        new_root = self.set_account(new_root, producer, producer_state);

        let receipt = Receipt {
            tx_id: tx.id(),
            success: true,
            gas_used: tx.gas_used(),
            cumulative_gas: 0, // filled by the block applier
        };
        Ok((new_root, receipt))
    }

    /// Executes a block on `parent_root`: all transactions in order,
    /// then the block reward to `producer`. Enforces the block gas
    /// limit and, when the header commits to roots, verifies the
    /// post-state root and receipts root.
    ///
    /// Returns the post-state root and the receipts.
    ///
    /// # Errors
    ///
    /// Any failure leaves previously-committed state versions intact
    /// (the trie is persistent); the caller just discards the returned
    /// root.
    pub fn apply_block(
        &mut self,
        parent_root: Digest,
        block: &Block<AccountTx>,
        producer: &Address,
        block_reward: u64,
    ) -> Result<(Digest, Vec<Receipt>), AccountError> {
        let gas_limit = block.header.gas_limit;
        let mut gas_total = 0u64;
        let mut root = parent_root;
        let mut receipts = Vec::with_capacity(block.txs.len());
        for tx in &block.txs {
            gas_total += tx.gas_used();
            if gas_limit > 0 && gas_total > gas_limit {
                return Err(AccountError::BlockGasExceeded);
            }
            let (new_root, mut receipt) = self.apply_tx(root, tx, producer)?;
            receipt.cumulative_gas = gas_total;
            root = new_root;
            receipts.push(receipt);
        }
        if block_reward > 0 {
            root = self.credit(root, producer, block_reward);
        }
        if !block.header.state_root.is_zero() && block.header.state_root != root {
            return Err(AccountError::StateRootMismatch);
        }
        if !block.header.receipts_root.is_zero()
            && block.header.receipts_root != receipts_root(&receipts)
        {
            return Err(AccountError::ReceiptsRootMismatch);
        }
        Ok((root, receipts))
    }

    /// Direct access to the underlying trie (pruning, fast sync,
    /// size accounting).
    pub fn trie(&self) -> &TrieDb {
        &self.trie
    }

    /// Mutable trie access (garbage collection).
    pub fn trie_mut(&mut self) -> &mut TrieDb {
        &mut self.trie
    }

    /// Installs a synced trie (fast sync's state download).
    pub fn replace_trie(&mut self, trie: TrieDb) {
        self.trie = trie;
    }
}

/// An account-holder: keypair plus nonce tracking, for tests, examples
/// and workload generators.
#[derive(Debug)]
pub struct AccountHolder {
    keypair: dlt_crypto::keys::Keypair,
    next_nonce: u64,
}

impl AccountHolder {
    /// Creates an account identity from a seed. `height` bounds how
    /// many transactions the account can ever sign (`2^height`).
    pub fn from_seed(seed: [u8; 32], height: u32) -> Self {
        AccountHolder {
            keypair: dlt_crypto::keys::Keypair::mss_from_seed(seed, height),
            next_nonce: 0,
        }
    }

    /// The account's address.
    pub fn address(&self) -> Address {
        self.keypair.address()
    }

    /// The account's public key.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public_key()
    }

    /// Builds and signs a transfer, consuming the next nonce.
    ///
    /// # Panics
    ///
    /// Panics if the underlying MSS key is exhausted (capacity is a
    /// constructor parameter; size workloads accordingly).
    pub fn transfer(&mut self, to: Address, amount: u64, gas_price: u64) -> AccountTx {
        self.transfer_with_payload(to, amount, gas_price, 0)
    }

    /// Builds and signs a transfer carrying a simulated contract
    /// payload of `payload_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the underlying MSS key is exhausted.
    pub fn transfer_with_payload(
        &mut self,
        to: Address,
        amount: u64,
        gas_price: u64,
        payload_bytes: u32,
    ) -> AccountTx {
        let mut tx = AccountTx {
            from: self.public_key(),
            to,
            amount,
            nonce: self.next_nonce,
            gas_price,
            payload_bytes,
            signature: Signature::Mss(
                // replaced below; construct with a throwaway placeholder
                // to keep AccountTx total
                dlt_crypto::mss::MssKeypair::from_seed([0u8; 32], 1)
                    .sign(&Digest::ZERO)
                    .expect("fresh key"),
            ),
        };
        let sighash = tx.sighash();
        tx.signature = self
            .keypair
            .sign(&sighash)
            .expect("account key exhausted: construct AccountHolder with more height");
        self.next_nonce += 1;
        tx
    }

    /// The nonce the next transaction will carry.
    pub fn next_nonce(&self) -> u64 {
        self.next_nonce
    }

    /// Remaining signature capacity.
    pub fn remaining_signatures(&self) -> u32 {
        self.keypair.remaining().unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testutil::header;

    fn holder(tag: u8) -> AccountHolder {
        AccountHolder::from_seed([tag; 32], 4)
    }

    fn producer() -> Address {
        Address::from_label("producer")
    }

    /// Sets up a state with `alice` funded.
    fn funded(db: &mut StateDb, alice: &AccountHolder, amount: u64) -> Digest {
        db.credit(StateDb::empty_root(), &alice.address(), amount)
    }

    #[test]
    fn credit_and_read_account() {
        let mut db = StateDb::new();
        let addr = Address::from_label("x");
        let root = db.credit(StateDb::empty_root(), &addr, 500);
        assert_eq!(db.account(root, &addr).balance, 500);
        assert_eq!(db.account(root, &addr).nonce, 0);
        // Untouched accounts read as zero.
        assert_eq!(
            db.account(root, &Address::from_label("y")),
            AccountState::default()
        );
    }

    #[test]
    fn transfer_moves_value_and_pays_gas() {
        let mut db = StateDb::new();
        let mut alice = holder(1);
        let bob = Address::from_label("bob");
        let root = funded(&mut db, &alice, 1_000_000);
        let tx = alice.transfer(bob, 100, 2);
        let fee = tx.fee();
        assert_eq!(fee, 2 * INTRINSIC_GAS);
        let (root, receipt) = db.apply_tx(root, &tx, &producer()).unwrap();
        assert_eq!(db.account(root, &bob).balance, 100);
        assert_eq!(db.account(root, &producer()).balance, fee);
        assert_eq!(
            db.account(root, &alice.address()).balance,
            1_000_000 - 100 - fee
        );
        assert_eq!(db.account(root, &alice.address()).nonce, 1);
        assert!(receipt.success);
        assert_eq!(receipt.gas_used, INTRINSIC_GAS);
    }

    #[test]
    fn payload_increases_gas() {
        let mut alice = holder(2);
        let tx = alice.transfer_with_payload(Address::from_label("b"), 0, 1, 100);
        assert_eq!(tx.gas_used(), INTRINSIC_GAS + 100 * GAS_PER_PAYLOAD_BYTE);
        assert_eq!(tx.weight(), tx.gas_used());
        // Payload bytes count toward encoded size.
        let plain = holder(3).transfer(Address::from_label("b"), 0, 1);
        assert!(tx.encoded_size() > plain.encoded_size() + 90);
    }

    #[test]
    fn wrong_nonce_rejected() {
        let mut db = StateDb::new();
        let mut alice = holder(4);
        let root = funded(&mut db, &alice, 1_000_000);
        let tx1 = alice.transfer(Address::from_label("b"), 1, 1);
        let tx2 = alice.transfer(Address::from_label("b"), 1, 1);
        // Apply out of order: tx2 first.
        let err = db.apply_tx(root, &tx2, &producer()).unwrap_err();
        assert_eq!(
            err,
            AccountError::BadNonce {
                expected: 0,
                got: 1
            }
        );
        // In order works.
        let (root, _) = db.apply_tx(root, &tx1, &producer()).unwrap();
        let (_root, _) = db.apply_tx(root, &tx2, &producer()).unwrap();
    }

    #[test]
    fn replay_rejected_by_nonce() {
        let mut db = StateDb::new();
        let mut alice = holder(5);
        let root = funded(&mut db, &alice, 1_000_000);
        let tx = alice.transfer(Address::from_label("b"), 10, 1);
        let (root, _) = db.apply_tx(root, &tx, &producer()).unwrap();
        let err = db.apply_tx(root, &tx, &producer()).unwrap_err();
        assert!(matches!(err, AccountError::BadNonce { .. }));
    }

    #[test]
    fn insufficient_balance_rejected() {
        let mut db = StateDb::new();
        let mut alice = holder(6);
        let root = funded(&mut db, &alice, 10); // can't even pay gas
        let tx = alice.transfer(Address::from_label("b"), 1, 1);
        assert_eq!(
            db.apply_tx(root, &tx, &producer()).unwrap_err(),
            AccountError::InsufficientBalance
        );
    }

    #[test]
    fn bad_signature_rejected() {
        let mut db = StateDb::new();
        let mut alice = holder(7);
        let root = funded(&mut db, &alice, 1_000_000);
        let mut tx = alice.transfer(Address::from_label("b"), 10, 1);
        tx.amount = 999; // invalidate the signed content
        assert_eq!(
            db.apply_tx(root, &tx, &producer()).unwrap_err(),
            AccountError::BadSignature
        );
    }

    #[test]
    fn self_transfer_only_burns_fee() {
        let mut db = StateDb::new();
        let mut alice = holder(8);
        let root = funded(&mut db, &alice, 1_000_000);
        let me = alice.address();
        let tx = alice.transfer(me, 300, 1);
        let fee = tx.fee();
        let (root, _) = db.apply_tx(root, &tx, &producer()).unwrap();
        assert_eq!(db.account(root, &me).balance, 1_000_000 - fee);
        assert_eq!(db.account(root, &me).nonce, 1);
    }

    #[test]
    fn block_application_and_roots() {
        let mut db = StateDb::new();
        let mut alice = holder(9);
        let bob = Address::from_label("bob");
        let genesis_root = funded(&mut db, &alice, 10_000_000);

        let txs = vec![alice.transfer(bob, 100, 1), alice.transfer(bob, 200, 1)];
        let mut h = header(sha256(b"parent").into(), 1);
        h.gas_limit = 1_000_000;
        let block = Block::new(h, txs);
        let (root, receipts) = db
            .apply_block(genesis_root, &block, &producer(), 50)
            .unwrap();
        assert_eq!(db.account(root, &bob).balance, 300);
        assert_eq!(receipts.len(), 2);
        assert_eq!(receipts[1].cumulative_gas, 2 * INTRINSIC_GAS);
        // Producer got both fees plus the reward.
        assert_eq!(
            db.account(root, &producer()).balance,
            2 * INTRINSIC_GAS + 50
        );
        // Old version still readable (persistence enables reorgs).
        assert_eq!(db.account(genesis_root, &bob).balance, 0);
    }

    fn sha256(b: &[u8]) -> [u8; 32] {
        dlt_crypto::sha256::sha256(b).into_bytes()
    }

    #[test]
    fn block_gas_limit_enforced() {
        let mut db = StateDb::new();
        let mut alice = holder(10);
        let root = funded(&mut db, &alice, 10_000_000);
        let txs = vec![
            alice.transfer(Address::from_label("b"), 1, 1),
            alice.transfer(Address::from_label("b"), 1, 1),
        ];
        let mut h = header(sha256(b"p").into(), 1);
        h.gas_limit = INTRINSIC_GAS + 1; // only one tx fits
        let block = Block::new(h, txs);
        assert_eq!(
            db.apply_block(root, &block, &producer(), 0).unwrap_err(),
            AccountError::BlockGasExceeded
        );
    }

    #[test]
    fn state_root_commitment_verified() {
        let mut db = StateDb::new();
        let mut alice = holder(11);
        let root = funded(&mut db, &alice, 10_000_000);
        let txs = vec![alice.transfer(Address::from_label("b"), 1, 1)];
        let mut h = header(sha256(b"p").into(), 1);
        h.gas_limit = 1_000_000;
        h.state_root = dlt_crypto::sha256::sha256(b"wrong root");
        let block = Block::new(h, txs);
        assert_eq!(
            db.apply_block(root, &block, &producer(), 0).unwrap_err(),
            AccountError::StateRootMismatch
        );
    }

    #[test]
    fn receipts_root_commitment_verified() {
        let mut db = StateDb::new();
        let mut alice = holder(12);
        let root = funded(&mut db, &alice, 10_000_000);
        let txs = vec![alice.transfer(Address::from_label("b"), 1, 1)];
        let mut h = header(sha256(b"p").into(), 1);
        h.gas_limit = 1_000_000;
        h.receipts_root = dlt_crypto::sha256::sha256(b"wrong receipts");
        let block = Block::new(h, txs);
        assert_eq!(
            db.apply_block(root, &block, &producer(), 0).unwrap_err(),
            AccountError::ReceiptsRootMismatch
        );
    }

    #[test]
    fn receipts_root_is_order_sensitive() {
        let a = Receipt {
            tx_id: dlt_crypto::sha256::sha256(b"a"),
            success: true,
            gas_used: 1,
            cumulative_gas: 1,
        };
        let b = Receipt {
            tx_id: dlt_crypto::sha256::sha256(b"b"),
            success: true,
            gas_used: 2,
            cumulative_gas: 3,
        };
        assert_ne!(
            receipts_root(&[a.clone(), b.clone()]),
            receipts_root(&[b, a])
        );
    }

    #[test]
    fn tx_codec_round_trip() {
        use dlt_crypto::codec::{decode_exact, Encode};
        let mut alice = holder(13);
        let tx = alice.transfer_with_payload(Address::from_label("b"), 5, 3, 0);
        let back: AccountTx = decode_exact(&tx.encode_to_vec()).unwrap();
        assert_eq!(back, tx);
        assert_eq!(back.id(), tx.id());
    }

    #[test]
    fn assume_valid_skips_signatures() {
        let mut db = StateDb::new_assume_valid();
        let mut alice = holder(14);
        let root = db.credit(StateDb::empty_root(), &alice.address(), 1_000_000);
        let mut tx = alice.transfer(Address::from_label("b"), 10, 1);
        tx.amount = 999;
        assert!(db.apply_tx(root, &tx, &producer()).is_ok());
    }
}
