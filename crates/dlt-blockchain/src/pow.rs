//! Proof-of-work: the leader-election lottery (paper §III-A-1).
//!
//! Two interchangeable back-ends implement the same Poisson mining
//! process:
//!
//! * [`mine_real`] performs actual partial hash inversion — iterating
//!   the header nonce until the double-SHA-256 of the header meets the
//!   difficulty target. This demonstrates the primitive itself and is
//!   used at low difficulty.
//! * [`sample_mining_time`] draws the time-to-block from the
//!   exponential distribution `Exp(difficulty / hashrate)` — the exact
//!   distribution of the first success of a memoryless search — so
//!   long-horizon experiments (days of simulated mining) run in
//!   milliseconds.
//!
//! The DESIGN.md ablation `e04`/`e05` checks that the two back-ends
//! produce statistically indistinguishable block intervals.

use dlt_sim::rng::SimRng;
use dlt_sim::time::SimTime;

use crate::block::BlockHeader;
use crate::difficulty::target_from_difficulty;

/// Verifies a header's proof-of-work: its hash must be at or below the
/// target implied by its difficulty field.
pub fn pow_valid(header: &BlockHeader) -> bool {
    header.difficulty > 0
        && header
            .id()
            .meets_target(&target_from_difficulty(header.difficulty))
}

/// Mines a header by real partial hash inversion: tries nonces
/// `0, 1, 2, …` until the header hash meets the target or
/// `max_attempts` is exhausted.
///
/// On success the header's `nonce` holds the solution and the number
/// of attempts used is returned.
pub fn mine_real(header: &mut BlockHeader, max_attempts: u64) -> Option<u64> {
    let target = target_from_difficulty(header.difficulty);
    for attempt in 0..max_attempts {
        header.nonce = attempt;
        if header.id().meets_target(&target) {
            return Some(attempt + 1);
        }
    }
    None
}

/// Samples the time for a miner with `hashrate` (hash attempts per
/// second) to find a block at `difficulty` expected attempts:
/// exponentially distributed with mean `difficulty / hashrate` seconds.
///
/// # Panics
///
/// Panics if `hashrate` is not positive and finite or `difficulty`
/// is 0.
pub fn sample_mining_time(rng: &mut SimRng, hashrate: f64, difficulty: u64) -> SimTime {
    assert!(
        hashrate.is_finite() && hashrate > 0.0,
        "hashrate must be positive"
    );
    assert!(difficulty > 0, "difficulty must be at least 1");
    let mean_secs = difficulty as f64 / hashrate;
    SimTime::from_secs_f64(rng.exponential(mean_secs))
}

/// Expected number of hash attempts at a difficulty (trivially the
/// difficulty itself; named for readability in the energy experiment).
pub fn expected_attempts(difficulty: u64) -> u64 {
    difficulty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::testutil::header;
    use dlt_crypto::Digest;

    #[test]
    fn mining_at_difficulty_one_succeeds_immediately() {
        let mut h = header(Digest::ZERO, 0);
        h.difficulty = 1;
        let attempts = mine_real(&mut h, 10).expect("difficulty 1 always succeeds");
        assert_eq!(attempts, 1);
        assert!(pow_valid(&h));
    }

    #[test]
    fn mined_header_passes_validation_and_tampering_fails() {
        let mut h = header(Digest::ZERO, 1);
        h.difficulty = 256; // ~8 leading zero bits; quick to mine
        mine_real(&mut h, 1_000_000).expect("mineable");
        assert!(pow_valid(&h));
        let mut tampered = h.clone();
        tampered.timestamp_micros += 1;
        // Overwhelmingly likely the tampered hash misses the target.
        assert!(!pow_valid(&tampered));
    }

    #[test]
    fn unmined_header_is_invalid_at_high_difficulty() {
        let mut h = header(Digest::ZERO, 1);
        h.difficulty = u64::MAX;
        assert!(!pow_valid(&h));
    }

    #[test]
    fn zero_difficulty_is_invalid() {
        let mut h = header(Digest::ZERO, 1);
        h.difficulty = 0;
        assert!(!pow_valid(&h));
    }

    #[test]
    fn mine_real_respects_attempt_budget() {
        let mut h = header(Digest::ZERO, 1);
        h.difficulty = u64::MAX;
        assert_eq!(mine_real(&mut h, 100), None);
    }

    #[test]
    fn real_attempt_count_matches_difficulty_statistically() {
        // Mining many headers at difficulty d must take ~d attempts on
        // average. d = 64 keeps the test fast.
        let d = 64u64;
        let mut total_attempts = 0u64;
        let runs = 300;
        for i in 0..runs {
            let mut h = header(Digest::ZERO, i);
            h.difficulty = d;
            h.timestamp_micros = i; // vary the preimage
            total_attempts += mine_real(&mut h, 1_000_000).expect("mineable");
        }
        let mean = total_attempts as f64 / runs as f64;
        assert!(
            (mean - d as f64).abs() < d as f64 * 0.25,
            "mean attempts {mean} vs difficulty {d}"
        );
    }

    #[test]
    fn sampled_time_mean_matches_difficulty_over_hashrate() {
        let mut rng = SimRng::new(5);
        let hashrate = 1000.0;
        let difficulty = 600_000; // mean 600 s — Bitcoin's interval
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| sample_mining_time(&mut rng, hashrate, difficulty).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 600.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn sampled_and_real_distributions_agree() {
        // Ablation: coefficient of variation of an exponential is 1;
        // real mining attempt counts are geometric, which at large
        // difficulty converges to the same. Compare means and CVs.
        let d = 32u64;
        let mut real: Vec<f64> = Vec::new();
        for i in 0..400u64 {
            let mut h = header(Digest::ZERO, i);
            h.difficulty = d;
            h.timestamp_micros = 1_000 + i;
            real.push(mine_real(&mut h, 10_000_000).unwrap() as f64);
        }
        let mut rng = SimRng::new(6);
        let sampled: Vec<f64> = (0..400)
            .map(|_| sample_mining_time(&mut rng, 1.0, d).as_secs_f64())
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let cv = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt() / m
        };
        let (mr, ms) = (mean(&real), mean(&sampled));
        assert!((mr - ms).abs() / ms < 0.3, "means {mr} vs {ms}");
        assert!((cv(&real) - 1.0).abs() < 0.3, "real cv {}", cv(&real));
        assert!(
            (cv(&sampled) - 1.0).abs() < 0.3,
            "sampled cv {}",
            cv(&sampled)
        );
    }
}
