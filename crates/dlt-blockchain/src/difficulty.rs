//! Difficulty, targets, and dynamic retargeting (paper §VI-A).
//!
//! Difficulty is expressed as the *expected number of hash attempts* to
//! find a valid block. The PoW success condition is `H(header) ≤
//! target` with `target = (2²⁵⁶ − 1) / difficulty`, so doubling the
//! difficulty halves the success probability per attempt.
//!
//! The paper notes that "the PoW puzzle difficulty is dynamic so that
//! the block generation time converges to a fixed value" — the
//! [`retarget`] rule implements that: after every retarget interval the
//! difficulty is scaled by how much faster or slower than the target
//! the interval actually completed (clamped to 4× per step, as
//! Bitcoin clamps it).

use dlt_crypto::codec::{Decode, DecodeError, Encode};
use dlt_crypto::Digest;
/// Derives the 256-bit PoW target for a difficulty, via long division
/// of 2²⁵⁶ − 1 by the difficulty over 64-bit limbs.
///
/// # Panics
///
/// Panics if `difficulty == 0`.
pub fn target_from_difficulty(difficulty: u64) -> Digest {
    assert!(difficulty > 0, "difficulty must be at least 1");
    let divisor = u128::from(difficulty);
    let mut out = [0u8; 32];
    let mut remainder: u128 = 0;
    for limb_index in 0..4 {
        // Numerator limb: all-ones.
        let numerator = (remainder << 64) | u128::from(u64::MAX);
        let quotient = (numerator / divisor) as u64;
        remainder = numerator % divisor;
        out[limb_index * 8..limb_index * 8 + 8].copy_from_slice(&quotient.to_be_bytes());
    }
    Digest::from_bytes(out)
}

/// Parameters governing difficulty adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetargetParams {
    /// Desired block interval in microseconds (Bitcoin: 600 s,
    /// Ethereum: 15 s).
    pub target_interval_micros: u64,
    /// Blocks per adjustment window (Bitcoin: 2016; we default lower so
    /// simulations converge within feasible horizons).
    pub window: u64,
    /// Maximum single-step adjustment factor (Bitcoin uses 4).
    pub max_step: u64,
}

impl RetargetParams {
    /// Bitcoin-like defaults scaled to a simulation-friendly window.
    pub fn bitcoin_like() -> Self {
        RetargetParams {
            target_interval_micros: 600_000_000,
            window: 144, // one simulated "day" instead of 2016
            max_step: 4,
        }
    }

    /// Ethereum-like defaults (15 s blocks, per-epoch adjustment).
    pub fn ethereum_like() -> Self {
        RetargetParams {
            target_interval_micros: 15_000_000,
            window: 100,
            max_step: 4,
        }
    }

    /// Whether a block at `height` closes a retarget window.
    pub fn is_retarget_height(&self, height: u64) -> bool {
        height > 0 && height.is_multiple_of(self.window)
    }
}

impl Encode for RetargetParams {
    fn encode(&self, out: &mut Vec<u8>) {
        self.target_interval_micros.encode(out);
        self.window.encode(out);
        self.max_step.encode(out);
    }
}

impl Decode for RetargetParams {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(RetargetParams {
            target_interval_micros: u64::decode(input)?,
            window: u64::decode(input)?,
            max_step: u64::decode(input)?,
        })
    }
}

/// Computes the next difficulty after a window that took
/// `actual_span_micros` of simulated time instead of the expected
/// `window × target_interval`.
///
/// Faster-than-target windows raise difficulty, slower ones lower it;
/// the adjustment is clamped to `max_step` in either direction and the
/// result never goes below 1.
pub fn retarget(params: &RetargetParams, old_difficulty: u64, actual_span_micros: u64) -> u64 {
    let expected = u128::from(params.target_interval_micros) * u128::from(params.window);
    // Clamp the observed span into [expected/max_step, expected*max_step]
    // before scaling, as Bitcoin does, to bound per-step swings.
    let actual = u128::from(actual_span_micros.max(1)).clamp(
        expected / u128::from(params.max_step),
        expected * u128::from(params.max_step),
    );
    let new = u128::from(old_difficulty) * expected / actual;
    u64::try_from(new).unwrap_or(u64::MAX).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retarget_params_codec_round_trip() {
        for p in [
            RetargetParams::bitcoin_like(),
            RetargetParams::ethereum_like(),
        ] {
            let bytes = p.encode_to_vec();
            assert_eq!(bytes.len(), p.encoded_len());
            let back: RetargetParams = dlt_crypto::codec::decode_exact(&bytes).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn difficulty_one_is_max_target() {
        assert_eq!(target_from_difficulty(1), Digest::MAX);
    }

    #[test]
    fn difficulty_two_halves_target() {
        let t = target_from_difficulty(2);
        // 2^256-1 / 2 = 0x7fff…ff
        assert_eq!(t.as_bytes()[0], 0x7f);
        assert!(t.as_bytes()[1..].iter().all(|&b| b == 0xff));
    }

    #[test]
    fn power_of_two_difficulties_shift_target() {
        for bits in [0u32, 1, 4, 8, 13, 32, 63] {
            let t = target_from_difficulty(1u64 << bits);
            assert_eq!(
                t.leading_zero_bits(),
                bits,
                "difficulty 2^{bits} must have {bits} leading zero bits"
            );
        }
    }

    #[test]
    fn target_is_monotone_decreasing_in_difficulty() {
        let mut prev = Digest::MAX;
        for d in [1u64, 2, 3, 10, 1000, 1_000_000, u64::MAX] {
            let t = target_from_difficulty(d);
            assert!(t <= prev, "difficulty {d}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "difficulty must be at least 1")]
    fn zero_difficulty_rejected() {
        target_from_difficulty(0);
    }

    fn params() -> RetargetParams {
        RetargetParams {
            target_interval_micros: 600_000_000,
            window: 100,
            max_step: 4,
        }
    }

    #[test]
    fn on_target_span_keeps_difficulty() {
        let p = params();
        let span = p.target_interval_micros * p.window;
        assert_eq!(retarget(&p, 1000, span), 1000);
    }

    #[test]
    fn fast_window_raises_difficulty() {
        let p = params();
        let span = p.target_interval_micros * p.window / 2;
        assert_eq!(retarget(&p, 1000, span), 2000);
    }

    #[test]
    fn slow_window_lowers_difficulty() {
        let p = params();
        let span = p.target_interval_micros * p.window * 2;
        assert_eq!(retarget(&p, 1000, span), 500);
    }

    #[test]
    fn adjustment_clamped_to_max_step() {
        let p = params();
        let tiny_span = 1;
        assert_eq!(retarget(&p, 1000, tiny_span), 4000);
        let huge_span = p.target_interval_micros * p.window * 100;
        assert_eq!(retarget(&p, 1000, huge_span), 250);
    }

    #[test]
    fn difficulty_never_below_one() {
        let p = params();
        assert_eq!(retarget(&p, 1, u64::MAX), 1);
    }

    #[test]
    fn retarget_heights() {
        let p = params();
        assert!(!p.is_retarget_height(0));
        assert!(!p.is_retarget_height(99));
        assert!(p.is_retarget_height(100));
        assert!(p.is_retarget_height(200));
    }

    #[test]
    fn convergence_under_constant_hashrate() {
        // Simulate: hashrate h, difficulty d -> window span =
        // window * d / h seconds. Iterating retarget must converge to
        // d = h * target_interval.
        let p = RetargetParams {
            target_interval_micros: 600_000_000,
            window: 10,
            max_step: 4,
        };
        let hashrate_per_micro = 0.001; // 1000 hashes per second
        let mut difficulty = 1u64;
        for _ in 0..20 {
            let span_micros = (p.window as f64 * difficulty as f64 / hashrate_per_micro) as u64;
            difficulty = retarget(&p, difficulty, span_micros);
        }
        let ideal = (hashrate_per_micro * p.target_interval_micros as f64) as u64;
        assert!(
            (difficulty as f64 - ideal as f64).abs() / (ideal as f64) < 0.01,
            "difficulty {difficulty} vs ideal {ideal}"
        );
    }
}
