//! Deterministic pseudo-random number generation, std-only.
//!
//! The workspace previously drew randomness from the `rand` crate's
//! `StdRng`. To keep builds hermetic this module implements the same
//! role with two tiny, well-studied generators:
//!
//! * [`SplitMix64`] — a 64-bit state mixer used to expand a single
//!   `u64` seed into the 256-bit state of the main generator (this is
//!   the seeding procedure the xoshiro authors recommend).
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256**, a fast
//!   all-purpose generator with 256 bits of state and a 2²⁵⁶−1 period.
//!
//! Neither generator is cryptographically secure; they back
//! *simulations* and *tests*. Key material in `dlt-crypto` is derived
//! from explicit 32-byte seeds via SHA-256, not from these generators.
//!
//! The [`RngCore`] trait is the workspace-wide abstraction over a
//! uniform `u64` source — the replacement for `rand::RngCore` /
//! `rand::Rng` bounds in generic signatures.

/// A uniform random source. The one method implementors must supply is
/// [`RngCore::next_u64`]; everything else derives from it.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (high half of a
    /// `u64` draw, which is the better-mixed half for xoshiro256**).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64: a 64-bit mixing generator (Steele, Lea & Flood).
///
/// Primarily used to expand one `u64` seed into larger generator
/// states; it is also a perfectly serviceable generator on its own for
/// non-adversarial use.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's default generator (Blackman & Vigna,
/// 2018). 256-bit state, period 2²⁵⁶−1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding a 64-bit seed through
    /// [`SplitMix64`], per the xoshiro reference implementation's
    /// seeding guidance. Any seed (including 0) yields a valid non-zero
    /// state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [
                mixer.next_u64(),
                mixer.next_u64(),
                mixer.next_u64(),
                mixer.next_u64(),
            ],
        }
    }

    /// Creates a generator directly from 256 bits of state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one fixed point of the
    /// generator).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro state must be non-zero"
        );
        Xoshiro256StarStar { s: state }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, cross-checked against the published
        // SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256** run from the state {1, 2, 3, 4}, cross-checked
        // against the authors' C reference implementation.
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected: [u64; 5] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for want in expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let identical = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(identical < 4);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        // Same seed reproduces the same bytes.
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(7);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = Xoshiro256StarStar::seed_from_u64(5);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn trait_object_and_reference_usable() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = SplitMix64::new(3);
        let via_dyn = draw(&mut rng);
        let mut rng2 = SplitMix64::new(3);
        let direct = rng2.next_u64();
        assert_eq!(via_dyn, direct);
    }
}
