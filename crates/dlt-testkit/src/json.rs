//! A minimal JSON document model: a writer and a strict parser.
//!
//! The bench harness and the experiment binaries emit machine-readable
//! results as JSON, and the CI smoke test parses them back. This module
//! is intentionally small: it supports exactly the JSON data model
//! (null, bool, number, string, array, object) with deterministic
//! serialisation — object keys render sorted, so the same data always
//! renders to the same bytes.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. (JSON has no NaN/Inf; constructors reject them.)
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are kept sorted for deterministic output.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds a number value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite (unrepresentable in JSON).
    pub fn number(value: f64) -> Json {
        assert!(value.is_finite(), "JSON numbers must be finite");
        Json::Number(value)
    }

    /// Builds a string value.
    pub fn string<S: Into<String>>(value: S) -> Json {
        Json::String(value.into())
    }

    /// Builds an object from key/value pairs.
    pub fn object<K, I>(pairs: I) -> Json
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Json)>,
    {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns the value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Returns the array items if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                // Integers render without a trailing ".0" so byte-for-byte
                // reproducibility doesn't depend on float formatting quirks.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are unsupported (the writer never
                            // emits them); map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice is utf-8");
        let value: f64 = text.parse().map_err(|_| ParseError {
            offset: start,
            message: "invalid number",
        })?;
        if !value.is_finite() {
            return Err(ParseError {
                offset: start,
                message: "number out of range",
            });
        }
        Ok(Json::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(doc: &Json) {
        let text = doc.to_string();
        let back = parse(&text).expect("parse");
        assert_eq!(&back, doc, "round trip through {text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Bool(false));
        round_trip(&Json::number(0.0));
        round_trip(&Json::number(-17.0));
        round_trip(&Json::number(3.5));
        round_trip(&Json::string("hello"));
        round_trip(&Json::string("esc \" \\ \n \t tab"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Json::Array(vec![
            Json::number(1.0),
            Json::string("two"),
            Json::Null,
            Json::Array(vec![]),
        ]));
        round_trip(&Json::object([
            ("name".to_string(), Json::string("e09")),
            ("rows".to_string(), Json::Array(vec![Json::number(42.0)])),
        ]));
    }

    #[test]
    fn output_is_deterministic() {
        let doc = Json::object([
            ("b".to_string(), Json::number(2.0)),
            ("a".to_string(), Json::number(1.0)),
        ]);
        assert_eq!(doc.to_string(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::number(1234.0).to_string(), "1234");
        assert_eq!(Json::number(0.25).to_string(), "0.25");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let doc = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.as_array()).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        let doc = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(doc.as_str(), Some("Aé"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        Json::number(f64::NAN);
    }
}
