//! A miniature property-testing harness (the `proptest` replacement).
//!
//! Tests are written against a [`Gen`] value source inside the
//! [`crate::prop!`] macro:
//!
//! ```
//! dlt_testkit::prop! {
//!     fn addition_commutes(g, cases = 64) {
//!         let a = g.u64_below(1 << 30);
//!         let b = g.u64_below(1 << 30);
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! ## How shrinking works
//!
//! Every value a test draws comes from a recorded sequence of raw
//! `u64` *choices* (the Hypothesis design). When a case fails, the
//! harness replays the test on simplified copies of that choice
//! sequence — truncating it and moving individual choices toward
//! zero — and keeps any copy that still fails. Because all generators
//! map the choice `0` to their simplest output (minimum of a range,
//! empty collection, `false`), minimising choices minimises the
//! counterexample.
//!
//! ## Environment overrides
//!
//! * `DLT_PROP_CASES` — overrides the per-test case count.
//! * `DLT_PROP_SEED` — pins the base seed (printed on failure), for
//!   reproducing a failing run exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{RngCore, Xoshiro256StarStar};

/// The draw API property tests generate values through.
///
/// All methods bottom out in [`Gen::choice`], so every drawn value is
/// reproducible from (and shrinkable through) the raw choice sequence.
#[derive(Debug)]
pub struct Gen {
    /// Choices replayed before drawing fresh ones (shrink candidates).
    replay: Vec<u64>,
    /// Next replay index.
    cursor: usize,
    /// Fresh source once the replay is exhausted; `None` while
    /// shrinking (exhausted replay then yields zeros — the simplest
    /// value — instead of new randomness).
    fresh: Option<Xoshiro256StarStar>,
    /// Everything drawn this run, in order.
    recorded: Vec<u64>,
}

impl Gen {
    fn from_rng(rng: Xoshiro256StarStar) -> Gen {
        Gen {
            replay: Vec::new(),
            cursor: 0,
            fresh: Some(rng),
            recorded: Vec::new(),
        }
    }

    fn from_choices(choices: Vec<u64>) -> Gen {
        Gen {
            replay: choices,
            cursor: 0,
            fresh: None,
            recorded: Vec::new(),
        }
    }

    /// Draws one raw 64-bit choice.
    pub fn choice(&mut self) -> u64 {
        let value = if self.cursor < self.replay.len() {
            let v = self.replay[self.cursor];
            self.cursor += 1;
            v
        } else {
            match &mut self.fresh {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.recorded.push(value);
        value
    }

    /// Uniform `u64` over the full range. Shrinks toward 0.
    pub fn any_u64(&mut self) -> u64 {
        self.choice()
    }

    /// Uniform `usize` over the full range. Shrinks toward 0.
    pub fn any_usize(&mut self) -> usize {
        self.choice() as usize
    }

    /// Uniform `u8`. Shrinks toward 0.
    pub fn any_u8(&mut self) -> u8 {
        (self.choice() & 0xff) as u8
    }

    /// Boolean with probability 1/2. Shrinks toward `false`.
    pub fn any_bool(&mut self) -> bool {
        self.choice() & 1 == 1
    }

    /// Uniform integer in `[0, bound)`. Shrinks toward 0.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        self.choice() % bound
    }

    /// Uniform integer in `[lo, hi)`. Shrinks toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.choice() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. Shrinks toward `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `u8` in `[lo, hi)`. Shrinks toward `lo`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u8
    }

    /// Uniform `f64` in `[0, 1)`. Shrinks toward 0.
    pub fn unit_f64(&mut self) -> f64 {
        (self.choice() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Shrinks toward `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A collection length in `[lo, hi)`. Shrinks toward `lo`.
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        self.usize_in(lo, hi)
    }

    /// A vector with length drawn from `[lo, hi)` and items from
    /// `item`. Shrinks toward fewer, simpler items.
    pub fn vec_in<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.len_in(lo, hi);
        (0..len).map(|_| item(self)).collect()
    }

    /// A vector of exactly `len` items.
    pub fn vec_of<T>(&mut self, len: usize, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| item(self)).collect()
    }

    /// `None` half the time, else `Some(item)`. Shrinks toward `None`.
    pub fn option<T>(&mut self, mut item: impl FnMut(&mut Gen) -> T) -> Option<T> {
        if self.any_bool() {
            Some(item(self))
        } else {
            None
        }
    }

    /// A printable-ASCII string with length in `[lo, hi)`. Shrinks
    /// toward shorter strings of `' '`.
    pub fn ascii_string(&mut self, lo: usize, hi: usize) -> String {
        let len = self.len_in(lo, hi);
        (0..len)
            .map(|_| (b' ' + (self.choice() % 95) as u8) as char)
            .collect()
    }

    /// Arbitrary bytes with length in `[lo, hi)`.
    pub fn bytes_in(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        self.vec_in(lo, hi, Gen::any_u8)
    }
}

/// One failing case, as reported back by [`check`]'s internals.
struct Failure {
    choices: Vec<u64>,
    message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_once(f: &dyn Fn(&mut Gen), mut gen: Gen) -> Result<Vec<u64>, Failure> {
    let recorded = {
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut gen)));
        match result {
            Ok(()) => return Ok(gen.recorded),
            Err(payload) => Failure {
                choices: gen.recorded,
                message: panic_message(payload),
            },
        }
    };
    Err(recorded)
}

/// Replays `f` on simplified copies of the failing choice sequence and
/// returns the smallest still-failing counterexample found.
fn shrink(f: &dyn Fn(&mut Gen), mut failure: Failure) -> Failure {
    let mut budget: u32 = 4096;
    let try_candidate = |candidate: Vec<u64>, failure: &mut Failure, budget: &mut u32| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if let Err(smaller) = run_once(f, Gen::from_choices(candidate)) {
            *failure = smaller;
            true
        } else {
            false
        }
    };
    let mut progress = true;
    while progress && budget > 0 {
        progress = false;
        // Pass 1: drop the tail (replay pads with zeros, the simplest
        // choices, so truncation both shortens and simplifies).
        let len = failure.choices.len();
        for keep in [
            0,
            len / 4,
            len / 2,
            len.saturating_sub(8),
            len.saturating_sub(1),
        ] {
            if keep >= len {
                continue;
            }
            if try_candidate(failure.choices[..keep].to_vec(), &mut failure, &mut budget) {
                progress = true;
                break;
            }
        }
        // Pass 2: minimise each choice by binary search for the
        // smallest replacement that still fails. (The failure set need
        // not be monotone in the choice; the search then converges to a
        // local boundary — a value that fails while value−1 passes —
        // which is exactly the "minimal counterexample" shape.)
        for index in 0..failure.choices.len() {
            // A successful shrink replaces `failure.choices` with the
            // replay's recording, which can be shorter than the
            // sequence this loop started from.
            if index >= failure.choices.len() {
                break;
            }
            let original = failure.choices[index];
            if original == 0 || budget == 0 {
                continue;
            }
            let with = |choices: &[u64], value: u64| {
                let mut candidate = choices.to_vec();
                candidate[index] = value;
                candidate
            };
            // Fast path: zero works.
            if try_candidate(with(&failure.choices, 0), &mut failure, &mut budget) {
                progress = true;
                continue;
            }
            let mut lo = 0u64;
            let mut hi = original; // `hi` is known to fail.
            while lo < hi && budget > 0 && index < failure.choices.len() {
                let mid = lo + (hi - lo) / 2;
                if try_candidate(with(&failure.choices, mid), &mut failure, &mut budget) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid + 1;
                }
            }
        }
    }
    failure
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// FNV-1a, to give every test its own seed stream from its name.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs `cases` random cases of `f`, shrinking and reporting the first
/// failure. This is the engine behind the [`crate::prop!`] macro.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) with the shrunken
/// counterexample when a case fails.
pub fn check(name: &str, cases: u32, f: impl Fn(&mut Gen)) {
    let cases = env_u64("DLT_PROP_CASES").map_or(cases, |n| n as u32);
    let base_seed = env_u64("DLT_PROP_SEED").unwrap_or_else(|| fnv1a(name));
    for case in 0..cases {
        let seed = base_seed.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let gen = Gen::from_rng(Xoshiro256StarStar::seed_from_u64(seed));
        if let Err(failure) = run_once(&f, gen) {
            let failure = shrink(&f, failure);
            panic!(
                "property '{name}' failed (case {case}/{cases}, base seed {base_seed}).\n\
                 reproduce with: DLT_PROP_SEED={base_seed} DLT_PROP_CASES={cases}\n\
                 shrunken choices ({} draws): {:?}\n\
                 failure: {}",
                failure.choices.len(),
                failure.choices,
                failure.message,
            );
        }
    }
}

/// Declares a property test. See the [module docs](crate::prop) for
/// the draw API and shrinking semantics.
///
/// Accepts an optional `cases = N` (default 64):
///
/// ```
/// dlt_testkit::prop! {
///     /// Reversal is an involution.
///     fn reverse_involution(g, cases = 32) {
///         let v = g.vec_in(0, 20, |g| g.any_u8());
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         assert_eq!(v, w);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! prop {
    ($(#[$attr:meta])* fn $name:ident($g:ident) $body:block) => {
        $crate::prop! { $(#[$attr])* fn $name($g, cases = 64) $body }
    };
    ($(#[$attr:meta])* fn $name:ident($g:ident, cases = $cases:expr) $body:block) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            $crate::prop::check(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                |$g: &mut $crate::prop::Gen| $body,
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = Gen::from_rng(Xoshiro256StarStar::seed_from_u64(1));
        let mut b = Gen::from_rng(Xoshiro256StarStar::seed_from_u64(1));
        assert_eq!(a.any_u64(), b.any_u64());
        assert_eq!(a.u64_in(5, 50), b.u64_in(5, 50));
        assert_eq!(a.ascii_string(0, 10), b.ascii_string(0, 10));
    }

    #[test]
    fn ranges_respected() {
        let mut g = Gen::from_rng(Xoshiro256StarStar::seed_from_u64(2));
        for _ in 0..1000 {
            let v = g.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            assert!(g.unit_f64() < 1.0);
        }
    }

    #[test]
    fn zero_choices_give_minimal_values() {
        let mut g = Gen::from_choices(Vec::new());
        assert_eq!(g.any_u64(), 0);
        assert_eq!(g.u64_in(7, 30), 7);
        assert!(!g.any_bool());
        assert_eq!(g.vec_in(0, 5, Gen::any_u8), Vec::<u8>::new());
        assert_eq!(g.option(Gen::any_u64), None);
        assert_eq!(g.unit_f64(), 0.0);
    }

    #[test]
    fn passing_property_passes() {
        check("passing", 64, |g| {
            let a = g.u64_below(1000);
            let b = g.u64_below(1000);
            assert_eq!(a + b, b + a);
        });
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // The property "v < 600" fails for v in [600, 1000); the
        // shrinker should walk the counterexample down to exactly 600.
        let failure = std::panic::catch_unwind(|| {
            check("shrinks", 200, |g| {
                let v = g.u64_below(1000);
                assert!(v < 600, "drew {v}");
            });
        })
        .expect_err("property must fail");
        let message = failure
            .downcast_ref::<String>()
            .expect("string panic")
            .clone();
        assert!(message.contains("drew 600"), "not minimal: {message}");
        assert!(
            message.contains("DLT_PROP_SEED="),
            "missing repro line: {message}"
        );
    }

    #[test]
    fn replay_reproduces_failure_values() {
        // A recorded failing sequence replays to the same drawn values.
        let mut g = Gen::from_rng(Xoshiro256StarStar::seed_from_u64(77));
        let v1 = g.u64_in(0, 1 << 40);
        let s1 = g.ascii_string(0, 32);
        let recorded = g.recorded.clone();
        let mut replay = Gen::from_choices(recorded);
        assert_eq!(replay.u64_in(0, 1 << 40), v1);
        assert_eq!(replay.ascii_string(0, 32), s1);
    }

    prop! {
        /// The macro itself works end-to-end.
        fn macro_smoke(g, cases = 16) {
            let v = g.vec_in(0, 10, |g| g.u64_below(100));
            let total: u64 = v.iter().sum();
            assert!(total <= 100 * v.len() as u64);
        }
    }
}
