//! Determinism regression helpers.
//!
//! The static pass (`dlt-lint`) catches hash-order and wall-clock
//! hazards at the source; this module catches whatever slips through
//! at runtime, by running a seeded workload twice and comparing an
//! observable fingerprint (typically `Simulation::dispatch_hash` under
//! `--features det-sanitizer`, but any `PartialEq + Debug` outcome
//! works).

/// Runs `f` twice with the same `seed` and asserts both runs produce
/// the same outcome.
///
/// The closure must build its entire world from the seed — any state
/// shared across the two invocations (caches, statics) can mask or
/// fake nondeterminism.
///
/// # Panics
///
/// Panics when the two runs disagree, printing both outcomes.
pub fn assert_deterministic<T, F>(seed: u64, mut f: F)
where
    T: PartialEq + core::fmt::Debug,
    F: FnMut(u64) -> T,
{
    let first = f(seed);
    let second = f(seed);
    assert_eq!(
        first, second,
        "nondeterministic outcome: two runs with seed {seed} diverged"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    #[test]
    fn deterministic_closure_passes() {
        assert_deterministic(42, |seed| {
            let mut rng = crate::SplitMix64::new(seed);
            (0..100).map(|_| rng.next_u64()).collect::<Vec<_>>()
        });
    }

    #[test]
    #[should_panic(expected = "nondeterministic outcome")]
    fn stateful_closure_is_caught() {
        let mut calls = 0u64;
        assert_deterministic(7, |seed| {
            calls += 1;
            seed + calls
        });
    }
}
