//! An `Instant`-based micro-benchmark harness (the `criterion`
//! replacement).
//!
//! Bench binaries (`harness = false`) build a [`BenchSuite`], register
//! routines with [`BenchSuite::bench`] / [`BenchSuite::bench_with_setup`],
//! and call [`BenchSuite::finish`], which prints a fixed-width summary
//! and writes machine-readable JSON to `results/bench_<suite>.json`.
//!
//! Methodology: each routine is warmed up, then timed over a fixed
//! number of *samples*; each sample times a batch of iterations sized
//! (by calibration) so one sample spans roughly a millisecond, which
//! keeps `Instant` quantisation noise far below the signal. Reported
//! statistics are per-iteration times: min, mean, median and p95 over
//! samples.
//!
//! Environment overrides:
//!
//! * `DLT_BENCH_SAMPLES` — samples per routine (default 30).
//! * `DLT_BENCH_WARMUP_MS` — warmup duration per routine (default 200).
//! * `DLT_BENCH_SAMPLE_MS` — target duration of one sample (default 2).
//! * `DLT_BENCH_DIR` — output directory for JSON (default `results`;
//!   set to empty to skip writing).

use std::time::{Duration, Instant};

use crate::json::Json;

/// Statistics for one benchmarked routine, in nanoseconds per
/// iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Routine name, e.g. `sha256/1024B`.
    pub name: String,
    /// Iterations per sample.
    pub batch: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Optional bytes processed per iteration (enables MB/s reporting).
    pub throughput_bytes: Option<u64>,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name".to_string(), Json::string(self.name.clone())),
            ("batch".to_string(), Json::number(self.batch as f64)),
            ("samples".to_string(), Json::number(self.samples as f64)),
            ("min_ns".to_string(), Json::number(self.min_ns)),
            ("mean_ns".to_string(), Json::number(self.mean_ns)),
            ("median_ns".to_string(), Json::number(self.median_ns)),
            ("p95_ns".to_string(), Json::number(self.p95_ns)),
        ];
        if let Some(bytes) = self.throughput_bytes {
            pairs.push(("bytes_per_iter".to_string(), Json::number(bytes as f64)));
            pairs.push((
                "mb_per_s".to_string(),
                Json::number(bytes as f64 / self.median_ns * 1_000.0),
            ));
        }
        Json::object(pairs)
    }
}

/// Tuning knobs, resolved once from the environment.
#[derive(Debug, Clone)]
struct BenchConfig {
    samples: usize,
    warmup: Duration,
    target_sample: Duration,
}

impl BenchConfig {
    fn from_env() -> Self {
        let ms = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        BenchConfig {
            samples: ms("DLT_BENCH_SAMPLES", 30) as usize,
            warmup: Duration::from_millis(ms("DLT_BENCH_WARMUP_MS", 200)),
            target_sample: Duration::from_millis(ms("DLT_BENCH_SAMPLE_MS", 2)),
        }
    }
}

/// A named collection of benchmark routines.
#[derive(Debug)]
pub struct BenchSuite {
    name: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
    pending_throughput: Option<u64>,
}

impl BenchSuite {
    /// Creates a suite. `name` becomes the JSON file stem.
    pub fn new(name: &str) -> Self {
        eprintln!("bench suite '{name}'");
        BenchSuite {
            name: name.to_string(),
            config: BenchConfig::from_env(),
            results: Vec::new(),
            pending_throughput: None,
        }
    }

    /// Declares that the *next* registered routine processes this many
    /// bytes per iteration (adds MB/s to its report).
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.pending_throughput = Some(bytes);
        self
    }

    /// Benchmarks a routine.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) -> &mut Self {
        // Calibrate the batch size so one sample hits the target span.
        let calibrate_start = Instant::now();
        std::hint::black_box(routine());
        let once = calibrate_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (self.config.target_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        // Warmup.
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < self.config.warmup {
            std::hint::black_box(routine());
        }

        // Timed samples.
        let mut per_iter_ns = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.record(name, batch, per_iter_ns);
        self
    }

    /// Benchmarks a routine whose per-iteration setup must not be
    /// timed (the `criterion` `iter_with_setup` shape). The batch size
    /// is fixed at 1; timing covers only `routine`.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> &mut Self {
        // Warmup.
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < self.config.warmup {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut per_iter_ns = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            per_iter_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.record(name, 1, per_iter_ns);
        self
    }

    fn record(&mut self, name: &str, batch: u64, mut per_iter_ns: Vec<f64>) {
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let samples = per_iter_ns.len();
        let min_ns = per_iter_ns.first().copied().unwrap_or(0.0);
        let mean_ns = per_iter_ns.iter().sum::<f64>() / samples.max(1) as f64;
        let median_ns = per_iter_ns.get(samples / 2).copied().unwrap_or(0.0);
        let p95_index = ((samples as f64 * 0.95) as usize).min(samples.saturating_sub(1));
        let p95_ns = per_iter_ns.get(p95_index).copied().unwrap_or(0.0);
        let result = BenchResult {
            name: name.to_string(),
            batch,
            samples,
            min_ns,
            mean_ns,
            median_ns,
            p95_ns,
            throughput_bytes: self.pending_throughput.take(),
        };
        let throughput = result
            .throughput_bytes
            .map(|b| format!("  {:8.1} MB/s", b as f64 / result.median_ns * 1_000.0))
            .unwrap_or_default();
        eprintln!(
            "  {:<32} median {}  p95 {}  min {}{throughput}",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.p95_ns),
            format_ns(result.min_ns),
        );
        self.results.push(result);
    }

    /// Finishes the suite: writes `results/bench_<name>.json` (or the
    /// `DLT_BENCH_DIR` override) and returns the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        let dir = std::env::var("DLT_BENCH_DIR").unwrap_or_else(|_| "results".to_string());
        if !dir.is_empty() {
            let doc = Json::object([
                ("suite".to_string(), Json::string(self.name.clone())),
                (
                    "results".to_string(),
                    Json::Array(self.results.iter().map(BenchResult::to_json).collect()),
                ),
            ]);
            let path = std::path::Path::new(&dir).join(format!("bench_{}.json", self.name));
            match std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::write(&path, doc.to_string()))
            {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
            }
        }
        self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:7.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:7.2} µs", ns / 1_000.0)
    } else {
        format!("{:7.2} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_suite(name: &str) -> BenchSuite {
        BenchSuite {
            name: name.to_string(),
            config: BenchConfig {
                samples: 5,
                warmup: Duration::from_millis(1),
                target_sample: Duration::from_micros(50),
            },
            results: Vec::new(),
            pending_throughput: None,
        }
    }

    #[test]
    fn bench_produces_ordered_stats() {
        let mut suite = fast_suite("unit");
        suite.bench("sum", || (0..100u64).sum::<u64>());
        let results = suite.results.clone();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns + f64::EPSILON);
        assert!(r.batch >= 1);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn bench_with_setup_excludes_setup() {
        let mut suite = fast_suite("unit2");
        suite.bench_with_setup(
            "consume-vec",
            || vec![1u64; 64],
            |v| v.into_iter().sum::<u64>(),
        );
        assert_eq!(suite.results.len(), 1);
        assert_eq!(suite.results[0].batch, 1);
    }

    #[test]
    fn throughput_attaches_to_next_routine_only() {
        let mut suite = fast_suite("unit3");
        suite.throughput_bytes(1024);
        suite.bench("first", || 1u64 + 1);
        suite.bench("second", || 2u64 + 2);
        assert_eq!(suite.results[0].throughput_bytes, Some(1024));
        assert_eq!(suite.results[1].throughput_bytes, None);
    }

    #[test]
    fn json_shape_is_parseable() {
        let result = BenchResult {
            name: "x".into(),
            batch: 10,
            samples: 3,
            min_ns: 1.0,
            mean_ns: 2.0,
            median_ns: 2.0,
            p95_ns: 3.0,
            throughput_bytes: Some(64),
        };
        let text = result.to_json().to_string();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("x"));
        assert!(doc.get("mb_per_s").is_some());
    }
}
