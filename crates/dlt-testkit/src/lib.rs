//! Std-only test and measurement substrate for the dlt-compare
//! workspace.
//!
//! The workspace builds and tests with **zero external dependencies**
//! (`cargo build --offline` on a machine that has never seen a registry
//! works). This crate provides the three pieces that external crates
//! used to supply:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64-seeded
//!   xoshiro256**) behind the workspace-wide [`rng::RngCore`] trait,
//!   replacing the `rand` crate.
//! * [`prop`] — a miniature property-testing harness with case
//!   generation and choice-sequence shrinking, replacing `proptest`.
//! * [`bench`] — an `Instant`-based micro-benchmark harness with
//!   warmup, median/p95 reporting and JSON output, replacing
//!   `criterion`.
//! * [`json`] — a minimal JSON document model (writer + strict parser)
//!   used by the bench harness and the experiment binaries.
//!
//! Everything here is deterministic given a seed; no wall-clock or OS
//! entropy feeds any generated value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod det;
pub mod json;
pub mod prop;
pub mod rng;

pub use rng::{RngCore, SplitMix64, Xoshiro256StarStar};
