//! Fault injection and deterministic trace replay.
//!
//! The engine consults an installed [`Interceptor`] on every send,
//! *after* the [`Network`](crate::network::Network) model has decided
//! the message's baseline fate. The interceptor sees the (possibly
//! empty) list of delivery delays and may rewrite it: clear it (drop),
//! stretch it (delay, Byzantine lag), extend it (duplicate) or
//! scramble it (reorder). Two implementations ship here:
//!
//! * [`FaultInterceptor`] — a composable, seed-driven policy stack.
//!   Every probabilistic decision draws from its own
//!   [`SimRng`] stream, separate from the simulation RNG, so adding or
//!   removing fault rules never perturbs the baseline network
//!   sampling, and every fault schedule is reproducible from its seed.
//! * [`ReplayInterceptor`] — re-imposes the delivery schedule captured
//!   in a previous run's [`TraceLog`], turning any interesting run
//!   into a regression fixture (see [`ReplayScript`]).
//!
//! Determinism contract: with the same seed and the same sequence of
//! `intercept` calls, a `FaultInterceptor` makes identical decisions;
//! a `ReplayInterceptor` is deterministic by construction.

use std::cell::Cell;
use std::rc::Rc;

use dlt_testkit::json::Json;

use crate::network::NodeId;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{EventKind, TraceEvent, TraceLog};

/// Rewrites the delivery schedule of one send.
///
/// Called by the engine once per send attempt, after the network model
/// sampled the baseline `deliveries` (relative delays; empty = the
/// network already dropped it). Implementations mutate the list in
/// place; whatever remains is scheduled.
pub trait Interceptor {
    /// Inspects and possibly rewrites one send's delivery delays.
    fn intercept(&mut self, now: SimTime, from: NodeId, to: NodeId, deliveries: &mut Vec<SimTime>);
}

/// One fault policy inside a [`FaultInterceptor`].
#[derive(Debug, Clone)]
enum FaultAction {
    /// Drop the whole send with probability `p`.
    Drop { p: f64 },
    /// Push every delivery of the send `by` later, with probability `p`.
    Delay { p: f64, by: SimTime },
    /// With probability `p`, add one extra delivery `lag` after the
    /// first one.
    Duplicate { p: f64, lag: SimTime },
    /// With probability `p`, forget the sampled latencies and re-draw
    /// each delivery uniformly in `[0, window)` — adjacent sends on the
    /// same link then overtake each other.
    Reorder { p: f64, window: SimTime },
    /// Partition group per node (same encoding as
    /// [`Network::partition`](crate::network::Network::partition));
    /// cross-group sends are dropped.
    Partition { groups: Vec<usize> },
    /// Byzantine scheduling: sends *to* any victim arrive `by` later.
    /// `victims` is sorted for binary search.
    Lag { victims: Vec<NodeId>, by: SimTime },
}

#[derive(Debug, Clone)]
struct FaultRule {
    /// Half-open active window `[start, end)`; `None` = always active.
    window: Option<(SimTime, SimTime)>,
    action: FaultAction,
}

/// A composable, seed-driven stack of fault policies.
///
/// Rules apply in the order they were added; each probabilistic rule
/// draws from the interceptor's own RNG stream exactly once per send
/// it is active for, so the decision sequence is a pure function of
/// the seed and the send sequence.
///
/// ```
/// use dlt_sim::fault::FaultInterceptor;
/// use dlt_sim::network::NodeId;
/// use dlt_sim::time::SimTime;
///
/// let faults = FaultInterceptor::new(7)
///     .drop_messages(0.3)
///     .partition(4, &[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]])
///     .during(SimTime::ZERO, SimTime::from_secs(60));
/// # let _ = faults;
/// ```
#[derive(Debug, Clone)]
pub struct FaultInterceptor {
    rng: SimRng,
    rules: Vec<FaultRule>,
}

fn assert_probability(p: f64) {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
}

impl FaultInterceptor {
    /// Creates an empty policy stack drawing from its own seeded RNG
    /// stream (independent of the simulation RNG).
    pub fn new(seed: u64) -> Self {
        FaultInterceptor {
            rng: SimRng::new(seed),
            rules: Vec::new(),
        }
    }

    fn push(mut self, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            window: None,
            action,
        });
        self
    }

    /// Drops each send entirely with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn drop_messages(self, p: f64) -> Self {
        assert_probability(p);
        self.push(FaultAction::Drop { p })
    }

    /// With probability `p`, delays every delivery of a send by `by`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn delay(self, p: f64, by: SimTime) -> Self {
        assert_probability(p);
        self.push(FaultAction::Delay { p, by })
    }

    /// With probability `p`, duplicates a send: one extra delivery is
    /// scheduled `lag` after the first.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn duplicate(self, p: f64, lag: SimTime) -> Self {
        assert_probability(p);
        self.push(FaultAction::Duplicate { p, lag })
    }

    /// With probability `p`, discards a send's sampled latencies and
    /// re-draws each uniformly in `[0, window)`, so sends on the same
    /// link can overtake each other (message reordering).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `window` is zero.
    pub fn reorder(self, p: f64, window: SimTime) -> Self {
        assert_probability(p);
        assert!(window > SimTime::ZERO, "reorder window must be positive");
        self.push(FaultAction::Reorder { p, window })
    }

    /// Splits the network into disjoint partitions: cross-group sends
    /// are dropped. Same group encoding as
    /// [`Network::partition`](crate::network::Network::partition) —
    /// nodes absent from every listed part share an implicit spare
    /// group. Combine with [`FaultInterceptor::during`] for a
    /// partition that heals at a chosen time.
    pub fn partition(self, node_count: usize, parts: &[&[NodeId]]) -> Self {
        let mut groups = vec![usize::MAX; node_count];
        for (g, part) in parts.iter().enumerate() {
            for node in *part {
                if let Some(slot) = groups.get_mut(node.0) {
                    *slot = g;
                }
            }
        }
        let spare = parts.len();
        for g in groups.iter_mut() {
            if *g == usize::MAX {
                *g = spare;
            }
        }
        self.push(FaultAction::Partition { groups })
    }

    /// Byzantine scheduling: every send addressed to one of `victims`
    /// arrives `by` later than the network decided — the rest of the
    /// network hears everything first.
    pub fn lag_nodes(self, victims: &[NodeId], by: SimTime) -> Self {
        let mut victims = victims.to_vec();
        victims.sort_unstable();
        victims.dedup();
        self.push(FaultAction::Lag { victims, by })
    }

    /// Restricts the most recently added rule to the half-open window
    /// `[start, end)` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if no rule was added yet or `start >= end`.
    pub fn during(mut self, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "empty fault window");
        let rule = self
            .rules
            .last_mut()
            .expect("during() must follow a fault rule");
        rule.window = Some((start, end));
        self
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

impl Interceptor for FaultInterceptor {
    fn intercept(
        &mut self,
        now: SimTime,
        _from: NodeId,
        to: NodeId,
        deliveries: &mut Vec<SimTime>,
    ) {
        // Destructure instead of indexing `self.rules[i]`: the rule
        // walk is on the per-send hot path and must stay panic-free
        // (dlt-lint D5).
        let FaultInterceptor { rng, rules } = self;
        for rule in rules.iter() {
            if let Some((start, end)) = rule.window {
                if now < start || now >= end {
                    continue;
                }
            }
            // Probabilistic rules draw exactly once per active send —
            // even when the list is already empty — so the fault RNG
            // stream depends only on the send sequence, not on what
            // earlier rules (or the network) decided.
            match &rule.action {
                FaultAction::Drop { p } => {
                    if rng.chance(*p) {
                        deliveries.clear();
                    }
                }
                FaultAction::Delay { p, by } => {
                    let by = *by;
                    if rng.chance(*p) {
                        for d in deliveries.iter_mut() {
                            *d = d.saturating_add(by);
                        }
                    }
                }
                FaultAction::Duplicate { p, lag } => {
                    let lag = *lag;
                    if rng.chance(*p) {
                        if let Some(&first) = deliveries.first() {
                            deliveries.push(first.saturating_add(lag));
                        }
                    }
                }
                FaultAction::Reorder { p, window } => {
                    let window = window.as_micros();
                    if rng.chance(*p) {
                        for d in deliveries.iter_mut() {
                            *d = SimTime::from_micros(rng.below(window));
                        }
                    }
                }
                FaultAction::Partition { groups } => {
                    let cross = match (groups.get(_from.0), groups.get(to.0)) {
                        (Some(a), Some(b)) => a != b,
                        // Nodes beyond the declared count are isolated.
                        _ => true,
                    };
                    if cross {
                        deliveries.clear();
                    }
                }
                FaultAction::Lag { victims, by } => {
                    if victims.binary_search(&to).is_ok() {
                        let by = *by;
                        for d in deliveries.iter_mut() {
                            *d = d.saturating_add(by);
                        }
                    }
                }
            }
        }
    }
}

/// One recorded send: who addressed whom, and the absolute times the
/// deliveries were scheduled for (empty = the send was dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendRecord {
    /// The sending node.
    pub from: NodeId,
    /// The addressed recipient.
    pub to: NodeId,
    /// Absolute delivery times, in schedule order.
    pub deliveries: Vec<SimTime>,
}

/// The delivery schedule extracted from a recorded [`TraceLog`]: one
/// [`SendRecord`] per [`TraceEvent::Sent`], in send order.
///
/// Feed it to a [`ReplayInterceptor`] to re-impose the recorded
/// schedule on a fresh run with the same seed and workload — the run
/// then reproduces the original event order exactly, so its metrics
/// and trace are byte-identical to the recording.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayScript {
    sends: Vec<SendRecord>,
}

impl ReplayScript {
    /// Extracts the send schedule from a recorded log.
    pub fn from_log(log: &TraceLog) -> Self {
        Self::from_events(&log.snapshot())
    }

    /// Extracts the send schedule from raw trace events.
    ///
    /// Each [`TraceEvent::Sent`] opens a record; the `deliveries`
    /// Schedule events that immediately follow it (the engine emits
    /// them back-to-back) supply the absolute times. Schedule events
    /// with no open send — direct `deliver_at` injections and timers —
    /// are skipped: a replay run re-issues those itself.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut sends: Vec<SendRecord> = Vec::new();
        let mut open: Option<(usize, u32)> = None;
        for event in events {
            match event {
                TraceEvent::Sent {
                    from,
                    to,
                    deliveries,
                    ..
                } => {
                    sends.push(SendRecord {
                        from: *from,
                        to: *to,
                        deliveries: Vec::new(),
                    });
                    open = (*deliveries > 0).then_some((sends.len() - 1, *deliveries));
                }
                TraceEvent::Schedule {
                    at,
                    kind: EventKind::Deliver { from, to },
                    ..
                } => {
                    if let Some((idx, remaining)) = open {
                        let record = &mut sends[idx];
                        if record.from == *from && record.to == *to {
                            record.deliveries.push(*at);
                            open = (remaining > 1).then_some((idx, remaining - 1));
                        }
                    }
                }
                _ => {}
            }
        }
        ReplayScript { sends }
    }

    /// Parses a script from the JSON rendering of a [`TraceLog`]
    /// (`TraceLog::to_json().to_string()`) — the format committed
    /// fixtures use.
    pub fn parse(text: &str) -> Result<ReplayScript, String> {
        fn num(event: &Json, key: &str, index: usize) -> Result<u64, String> {
            event
                .get(key)
                .and_then(|v| v.as_f64())
                .map(|v| v as u64)
                .ok_or_else(|| format!("trace event #{index}: missing numeric \"{key}\""))
        }

        let doc = dlt_testkit::json::parse(text).map_err(|e| e.to_string())?;
        let events = doc
            .get("events")
            .and_then(|v| v.as_array())
            .ok_or("trace document has no \"events\" array")?;
        let mut sends: Vec<SendRecord> = Vec::new();
        let mut open: Option<(usize, u32)> = None;
        for (i, event) in events.iter().enumerate() {
            let ty = event
                .get("type")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("trace event #{i}: missing \"type\""))?;
            match ty {
                "send" => {
                    let n = num(event, "n", i)? as u32;
                    sends.push(SendRecord {
                        from: NodeId(num(event, "from", i)? as usize),
                        to: NodeId(num(event, "to", i)? as usize),
                        deliveries: Vec::new(),
                    });
                    open = (n > 0).then_some((sends.len() - 1, n));
                }
                "schedule" => {
                    if event.get("kind").and_then(|v| v.as_str()) != Some("deliver") {
                        continue;
                    }
                    if let Some((idx, remaining)) = open {
                        let from = NodeId(num(event, "from", i)? as usize);
                        let to = NodeId(num(event, "to", i)? as usize);
                        let record = &mut sends[idx];
                        if record.from == from && record.to == to {
                            record
                                .deliveries
                                .push(SimTime::from_micros(num(event, "at_us", i)?));
                            open = (remaining > 1).then_some((idx, remaining - 1));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(ReplayScript { sends })
    }

    /// The recorded sends, in order.
    pub fn sends(&self) -> &[SendRecord] {
        &self.sends
    }

    /// Number of recorded sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

/// A shared read-out of how many recorded sends a
/// [`ReplayInterceptor`] has consumed — keep a handle to assert a
/// replay ran the script to completion.
#[derive(Debug, Clone, Default)]
pub struct ReplayCursor(Rc<Cell<usize>>);

impl ReplayCursor {
    /// Number of recorded sends consumed so far.
    pub fn consumed(&self) -> usize {
        self.0.get()
    }
}

/// Re-imposes a recorded delivery schedule on a fresh run.
///
/// Every send's delays are replaced by the recorded absolute times
/// (converted back to offsets from the current instant), so the replay
/// schedules exactly the events the recording did.
///
/// # Panics
///
/// `intercept` panics if the run diverges from the script — more sends
/// than recorded, or a send addressed differently than the recording.
/// That means the replay was driven with a different seed or workload.
#[derive(Debug, Clone)]
pub struct ReplayInterceptor {
    script: ReplayScript,
    cursor: ReplayCursor,
}

impl ReplayInterceptor {
    /// Wraps a script for installation via
    /// [`Simulation::set_interceptor`](crate::engine::Simulation::set_interceptor).
    pub fn new(script: ReplayScript) -> Self {
        ReplayInterceptor {
            script,
            cursor: ReplayCursor::default(),
        }
    }

    /// A shared handle counting consumed sends (usable after the
    /// interceptor moved into the engine).
    pub fn cursor(&self) -> ReplayCursor {
        self.cursor.clone()
    }
}

impl Interceptor for ReplayInterceptor {
    fn intercept(&mut self, now: SimTime, from: NodeId, to: NodeId, deliveries: &mut Vec<SimTime>) {
        let i = self.cursor.0.get();
        let record = self.script.sends.get(i).unwrap_or_else(|| {
            // dlt-lint: allow(D5, reason = "replay divergence must abort loudly; a silent fallback would corrupt the replayed schedule")
            panic!("replay diverged: send #{i} ({from}->{to}) beyond the recorded script")
        });
        assert!(
            record.from == from && record.to == to,
            "replay diverged at send #{i}: recorded {}->{}, run attempted {}->{}",
            record.from,
            record.to,
            from,
            to,
        );
        self.cursor.0.set(i + 1);
        deliveries.clear();
        deliveries.extend(record.deliveries.iter().map(|&at| at.saturating_sub(now)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_delivery() -> Vec<SimTime> {
        vec![SimTime::from_millis(10)]
    }

    #[test]
    fn drop_rule_clears_deliveries() {
        let mut f = FaultInterceptor::new(1).drop_messages(1.0);
        let mut d = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn delay_rule_shifts_every_delivery() {
        let mut f = FaultInterceptor::new(2).delay(1.0, SimTime::from_millis(500));
        let mut d = vec![SimTime::from_millis(10), SimTime::from_millis(20)];
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut d);
        assert_eq!(
            d,
            vec![SimTime::from_millis(510), SimTime::from_millis(520)]
        );
    }

    #[test]
    fn duplicate_rule_adds_a_lagged_copy() {
        let mut f = FaultInterceptor::new(3).duplicate(1.0, SimTime::from_millis(5));
        let mut d = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut d);
        assert_eq!(d, vec![SimTime::from_millis(10), SimTime::from_millis(15)]);
        // An already-dropped send stays dropped.
        let mut empty = Vec::new();
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn reorder_rule_redraws_within_window() {
        let window = SimTime::from_millis(100);
        let mut f = FaultInterceptor::new(4).reorder(1.0, window);
        for _ in 0..50 {
            let mut d = vec![SimTime::from_secs(5)];
            f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut d);
            assert_eq!(d.len(), 1);
            assert!(d[0] < window, "redrawn delay {} escapes window", d[0]);
        }
    }

    #[test]
    fn partition_drops_cross_group_only() {
        let mut f = FaultInterceptor::new(5).partition(4, &[&[NodeId(0), NodeId(1)], &[NodeId(2)]]);
        let mut same = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut same);
        assert_eq!(same, one_delivery());
        let mut cross = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(1), NodeId(2), &mut cross);
        assert!(cross.is_empty());
        // Node 3 is unlisted: spare group, isolated from both parts.
        let mut spare = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(3), NodeId(0), &mut spare);
        assert!(spare.is_empty());
        // A node beyond the declared count is isolated.
        let mut beyond = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(9), NodeId(0), &mut beyond);
        assert!(beyond.is_empty());
    }

    #[test]
    fn lag_rule_targets_victims_only() {
        let mut f =
            FaultInterceptor::new(6).lag_nodes(&[NodeId(2), NodeId(1)], SimTime::from_secs(1));
        let mut victim = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(2), &mut victim);
        assert_eq!(victim, vec![SimTime::from_millis(1010)]);
        let mut honest = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(2), NodeId(0), &mut honest);
        assert_eq!(honest, one_delivery());
    }

    #[test]
    fn during_gates_the_preceding_rule() {
        let mut f = FaultInterceptor::new(7)
            .drop_messages(1.0)
            .during(SimTime::from_secs(1), SimTime::from_secs(2));
        let mut before = one_delivery();
        f.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut before);
        assert_eq!(before, one_delivery());
        let mut inside = one_delivery();
        f.intercept(SimTime::from_secs(1), NodeId(0), NodeId(1), &mut inside);
        assert!(inside.is_empty());
        // The window is half-open: the end instant is healed.
        let mut at_end = one_delivery();
        f.intercept(SimTime::from_secs(2), NodeId(0), NodeId(1), &mut at_end);
        assert_eq!(at_end, one_delivery());
    }

    #[test]
    #[should_panic(expected = "must follow a fault rule")]
    fn during_requires_a_rule() {
        let _ = FaultInterceptor::new(8).during(SimTime::ZERO, SimTime::from_secs(1));
    }

    #[test]
    fn same_seed_same_decisions() {
        fn run(seed: u64) -> Vec<Vec<SimTime>> {
            let mut f = FaultInterceptor::new(seed)
                .drop_messages(0.3)
                .reorder(0.5, SimTime::from_millis(50));
            (0..200)
                .map(|i| {
                    let mut d = one_delivery();
                    f.intercept(SimTime::from_millis(i), NodeId(0), NodeId(1), &mut d);
                    d
                })
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    fn sample_log() -> TraceLog {
        let log = TraceLog::new();
        // A duplicated send: two deliveries.
        log.push(TraceEvent::Sent {
            at: SimTime::ZERO,
            from: NodeId(0),
            to: NodeId(1),
            deliveries: 2,
        });
        log.push(TraceEvent::Schedule {
            at: SimTime::from_millis(10),
            seq: 0,
            kind: EventKind::Deliver {
                from: NodeId(0),
                to: NodeId(1),
            },
        });
        log.push(TraceEvent::Schedule {
            at: SimTime::from_millis(14),
            seq: 1,
            kind: EventKind::Deliver {
                from: NodeId(0),
                to: NodeId(1),
            },
        });
        // A deliver_at injection with no Sent: must be skipped.
        log.push(TraceEvent::Schedule {
            at: SimTime::from_millis(20),
            seq: 2,
            kind: EventKind::Deliver {
                from: NodeId(0),
                to: NodeId(1),
            },
        });
        // A dropped send.
        log.push(TraceEvent::Sent {
            at: SimTime::from_millis(5),
            from: NodeId(1),
            to: NodeId(0),
            deliveries: 0,
        });
        // A timer schedule: ignored.
        log.push(TraceEvent::Schedule {
            at: SimTime::from_millis(30),
            seq: 3,
            kind: EventKind::Timer {
                node: NodeId(0),
                id: 9,
            },
        });
        log
    }

    fn expected_script() -> ReplayScript {
        ReplayScript {
            sends: vec![
                SendRecord {
                    from: NodeId(0),
                    to: NodeId(1),
                    deliveries: vec![SimTime::from_millis(10), SimTime::from_millis(14)],
                },
                SendRecord {
                    from: NodeId(1),
                    to: NodeId(0),
                    deliveries: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn script_groups_schedules_under_their_send() {
        let script = ReplayScript::from_log(&sample_log());
        assert_eq!(script, expected_script());
    }

    #[test]
    fn script_parses_from_trace_json() {
        let text = sample_log().to_json().to_string();
        let script = ReplayScript::parse(&text).expect("fixture parses");
        assert_eq!(script, expected_script());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ReplayScript::parse("not json").is_err());
        assert!(ReplayScript::parse("{\"n\": 0}").is_err());
    }

    #[test]
    fn replay_restores_recorded_absolute_times() {
        let mut replay = ReplayInterceptor::new(expected_script());
        let cursor = replay.cursor();
        // The run's own network sampled some other delay; the replay
        // overwrites it with the recorded schedule, relative to now.
        let mut d = vec![SimTime::from_millis(999)];
        replay.intercept(SimTime::from_millis(4), NodeId(0), NodeId(1), &mut d);
        assert_eq!(d, vec![SimTime::from_millis(6), SimTime::from_millis(10)]);
        let mut d2 = one_delivery();
        replay.intercept(SimTime::from_millis(5), NodeId(1), NodeId(0), &mut d2);
        assert!(d2.is_empty());
        assert_eq!(cursor.consumed(), 2);
    }

    #[test]
    #[should_panic(expected = "replay diverged at send #0")]
    fn replay_panics_on_mismatched_send() {
        let mut replay = ReplayInterceptor::new(expected_script());
        let mut d = one_delivery();
        replay.intercept(SimTime::ZERO, NodeId(3), NodeId(2), &mut d);
    }

    #[test]
    #[should_panic(expected = "beyond the recorded script")]
    fn replay_panics_past_the_script_end() {
        let mut replay = ReplayInterceptor::new(ReplayScript::default());
        let mut d = one_delivery();
        replay.intercept(SimTime::ZERO, NodeId(0), NodeId(1), &mut d);
    }
}
