//! The simulated message fabric: topology, loss, duplication and
//! partitions.
//!
//! The engine asks the [`Network`] how a send from `a` to `b` behaves:
//! which deliveries happen (possibly none when dropped, possibly two
//! when duplicated) and after what delay. Partitions model the
//! soft-fork conditions of paper §IV-A, where parts of the network
//! build on different blocks.

use std::collections::BTreeSet;

use dlt_crypto::codec::{Decode, DecodeError, Encode};

use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Identifier of a simulated node (its index in the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl Encode for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for NodeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NodeId(usize::decode(input)?))
    }
}

/// Network configuration and fault state.
#[derive(Debug, Clone)]
pub struct Network {
    latency: LatencyModel,
    drop_probability: f64,
    duplicate_probability: f64,
    /// Explicit adjacency lists; `None` means a full mesh.
    topology: Option<Vec<Vec<NodeId>>>,
    /// Partition group per node; nodes in different groups can't talk.
    /// Empty when the network is whole.
    groups: Vec<usize>,
}

impl Network {
    /// Creates a fault-free full-mesh network with the given latency.
    pub fn new(latency: LatencyModel) -> Self {
        Network {
            latency,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            topology: None,
            groups: Vec::new(),
        }
    }

    /// Sets the probability that any message is silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_drop_probability(&mut self, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
        self
    }

    /// Sets the probability that a delivered message arrives twice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_duplicate_probability(&mut self, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplicate_probability = p;
        self
    }

    /// Replaces the latency model.
    pub fn set_latency(&mut self, latency: LatencyModel) -> &mut Self {
        self.latency = latency;
        self
    }

    /// The current latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Installs an explicit topology: `topology[i]` lists the peers of
    /// node `i`. Without this, the network is a full mesh.
    pub fn set_topology(&mut self, topology: Vec<Vec<NodeId>>) -> &mut Self {
        self.topology = Some(topology);
        self
    }

    /// Splits the network into disjoint partitions. Nodes absent from
    /// every listed group land in an implicit extra group together.
    pub fn partition(&mut self, node_count: usize, parts: &[&[NodeId]]) -> &mut Self {
        let mut groups = vec![usize::MAX; node_count];
        for (g, part) in parts.iter().enumerate() {
            for node in *part {
                groups[node.0] = g;
            }
        }
        let spare = parts.len();
        for g in groups.iter_mut() {
            if *g == usize::MAX {
                *g = spare;
            }
        }
        self.groups = groups;
        self
    }

    /// Removes any partition, making the network whole again.
    pub fn heal(&mut self) -> &mut Self {
        self.groups.clear();
        self
    }

    /// Whether a message from `from` can currently reach `to`.
    pub fn can_reach(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        if !self.groups.is_empty() {
            let (Some(&ga), Some(&gb)) = (self.groups.get(from.0), self.groups.get(to.0)) else {
                return false;
            };
            if ga != gb {
                return false;
            }
        }
        match &self.topology {
            None => true,
            Some(adj) => adj.get(from.0).is_some_and(|peers| peers.contains(&to)),
        }
    }

    /// The peers `from` would address with a broadcast.
    pub fn peers_of(&self, from: NodeId, node_count: usize) -> Vec<NodeId> {
        match &self.topology {
            Some(adj) => adj.get(from.0).cloned().unwrap_or_default(),
            None => (0..node_count).map(NodeId).filter(|&n| n != from).collect(),
        }
    }

    /// Decides the fate of one message: a (possibly empty) list of
    /// delivery delays.
    pub fn deliveries(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> Vec<SimTime> {
        if !self.can_reach(from, to) {
            return Vec::new();
        }
        if rng.chance(self.drop_probability) {
            return Vec::new();
        }
        let mut out = vec![self.latency.sample(rng)];
        if rng.chance(self.duplicate_probability) {
            out.push(self.latency.sample(rng));
        }
        out
    }

    /// The set of partition groups currently in force (for assertions in
    /// tests); empty when the network is whole.
    pub fn partition_groups(&self) -> Vec<BTreeSet<NodeId>> {
        if self.groups.is_empty() {
            return Vec::new();
        }
        let max_group = self.groups.iter().copied().max().unwrap_or(0);
        let mut out = vec![BTreeSet::new(); max_group + 1];
        for (i, &g) in self.groups.iter().enumerate() {
            out[g].insert(NodeId(i));
        }
        out.retain(|set| !set.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(LatencyModel::Fixed(SimTime::from_millis(10)))
    }

    #[test]
    fn node_id_codec_round_trip() {
        for id in [NodeId(0), NodeId(7), NodeId(usize::MAX)] {
            let bytes = id.encode_to_vec();
            assert_eq!(bytes.len(), id.encoded_len());
            let back: NodeId = dlt_crypto::codec::decode_exact(&bytes).unwrap();
            assert_eq!(back, id);
        }
    }

    #[test]
    fn full_mesh_reaches_everyone_but_self() {
        let n = net();
        assert!(n.can_reach(NodeId(0), NodeId(1)));
        assert!(n.can_reach(NodeId(5), NodeId(0)));
        assert!(!n.can_reach(NodeId(3), NodeId(3)));
        assert_eq!(
            n.peers_of(NodeId(1), 4),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn explicit_topology_restricts_reachability() {
        let mut n = net();
        n.set_topology(vec![
            vec![NodeId(1)],            // 0 -> 1
            vec![NodeId(0), NodeId(2)], // 1 -> 0, 2
            vec![],                     // 2 -> nobody
        ]);
        assert!(n.can_reach(NodeId(0), NodeId(1)));
        assert!(!n.can_reach(NodeId(0), NodeId(2)));
        assert!(n.can_reach(NodeId(1), NodeId(2)));
        assert!(!n.can_reach(NodeId(2), NodeId(0)));
        assert_eq!(n.peers_of(NodeId(2), 3), Vec::<NodeId>::new());
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut n = net();
        n.partition(4, &[&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]]);
        assert!(n.can_reach(NodeId(0), NodeId(1)));
        assert!(n.can_reach(NodeId(2), NodeId(3)));
        assert!(!n.can_reach(NodeId(0), NodeId(2)));
        assert!(!n.can_reach(NodeId(3), NodeId(1)));
        assert_eq!(n.partition_groups().len(), 2);
        n.heal();
        assert!(n.can_reach(NodeId(0), NodeId(2)));
        assert!(n.partition_groups().is_empty());
    }

    #[test]
    fn unlisted_nodes_form_spare_group() {
        let mut n = net();
        n.partition(4, &[&[NodeId(0)]]);
        // 1, 2, 3 share the spare group.
        assert!(n.can_reach(NodeId(1), NodeId(2)));
        assert!(!n.can_reach(NodeId(0), NodeId(1)));
    }

    #[test]
    fn drop_probability_drops_everything_at_one() {
        let mut n = net();
        n.set_drop_probability(1.0);
        let mut rng = SimRng::new(1);
        for _ in 0..50 {
            assert!(n.deliveries(NodeId(0), NodeId(1), &mut rng).is_empty());
        }
    }

    #[test]
    fn no_faults_delivers_exactly_once() {
        let n = net();
        let mut rng = SimRng::new(2);
        for _ in 0..50 {
            let d = n.deliveries(NodeId(0), NodeId(1), &mut rng);
            assert_eq!(d, vec![SimTime::from_millis(10)]);
        }
    }

    #[test]
    fn duplication_sometimes_delivers_twice() {
        let mut n = net();
        n.set_duplicate_probability(0.5);
        let mut rng = SimRng::new(3);
        let twos = (0..1000)
            .filter(|_| n.deliveries(NodeId(0), NodeId(1), &mut rng).len() == 2)
            .count();
        assert!((300..700).contains(&twos), "dup count {twos}");
    }

    #[test]
    fn partial_drop_rate_is_statistical() {
        let mut n = net();
        n.set_drop_probability(0.3);
        let mut rng = SimRng::new(4);
        let dropped = (0..10_000)
            .filter(|_| n.deliveries(NodeId(0), NodeId(1), &mut rng).is_empty())
            .count();
        assert!((2500..3500).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn drop_probability_validated() {
        net().set_drop_probability(1.5);
    }
}
