//! Discrete-event network simulator substrate for `dlt-compare`.
//!
//! The paper's comparisons (fork rate, confirmation latency, throughput)
//! all depend on *network behaviour* — message delay, gossip fan-out,
//! partitions — rather than on real sockets. This crate provides a
//! deterministic discrete-event simulation engine the ledger crates run
//! on:
//!
//! * [`time`] — simulated time ([`SimTime`],
//!   microsecond resolution) and durations.
//! * [`rng`] — a seeded deterministic RNG plus the samplers the
//!   experiments need (exponential inter-block times, log-normal
//!   latencies).
//! * [`latency`] — pluggable link-latency models.
//! * [`network`] — the message fabric: full-mesh or explicit topology,
//!   loss/duplication injection, partitions.
//! * [`engine`] — the event loop: nodes implement
//!   [`SimNode`], exchange messages through a
//!   [`Context`], and set timers.
//! * [`metrics`] — counters and histograms with percentile queries, the
//!   raw material of every experiment table. Hot paths use pre-interned
//!   [`metrics::CounterId`]/[`metrics::SeriesId`] handles.
//! * [`trace`] — the [`trace::Tracer`] hook the engine calls at every
//!   send/schedule/dispatch/drop point, with a recording implementation
//!   for tests and the `DLT_TRACE` experiment mode.
//! * [`fault`] — the [`fault::Interceptor`] hook the engine consults on
//!   every send: seed-driven fault policies (drop, delay, duplicate,
//!   reorder, partition, Byzantine lag) and deterministic replay of a
//!   recorded [`trace::TraceLog`].
//! * [`shard`] — the parallel shard executor: K independent shard
//!   simulations on worker threads between epoch barriers, with a
//!   deterministic cross-shard exchange at each barrier. The only
//!   sanctioned use of `std::thread` in the simulator (lint rule D6).
//!
//! Determinism: given the same seed and the same sequence of API calls,
//! a simulation replays identically (events are ordered by time with a
//! monotone sequence number as the tiebreak).
//!
//! # Example
//!
//! ```
//! use dlt_sim::engine::{Context, Payload, SimNode, Simulation};
//! use dlt_sim::latency::LatencyModel;
//! use dlt_sim::network::NodeId;
//! use dlt_sim::time::SimTime;
//!
//! struct Echo;
//! impl SimNode<String> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: NodeId, msg: Payload<String>) {
//!         if *msg == "ping" {
//!             ctx.send(from, "pong".to_string());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42, LatencyModel::Fixed(SimTime::from_millis(10)));
//! let a = sim.add_node(Box::new(Echo));
//! let b = sim.add_node(Box::new(Echo));
//! sim.send_external(a, b, "ping".to_string());
//! sim.run_until_idle(SimTime::from_secs(1));
//! assert!(sim.now() >= SimTime::from_millis(20)); // ping + pong
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod network;
pub mod rng;
pub mod shard;
pub mod time;
pub mod trace;

pub use engine::{Context, Payload, SimNode, Simulation};
pub use fault::{FaultInterceptor, Interceptor, ReplayInterceptor, ReplayScript};
pub use network::NodeId;
pub use shard::{CrossMsg, ExecutorOutcome, ShardExecutor, ShardReport, ShardWorker};
pub use time::SimTime;
