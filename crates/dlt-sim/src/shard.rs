//! Parallel per-shard simulation with deterministic cross-shard epochs.
//!
//! The engine is single-threaded by design: one `(time, seq)` queue per
//! [`crate::Simulation`], with `Rc`-shared payloads that are deliberately
//! `!Send`. This module scales *across* simulations instead of inside
//! one: K independent shard simulations advance in lock-step between
//! **epoch barriers**, and at each barrier a deterministic cross-shard
//! exchange moves messages between shards.
//!
//! Determinism argument (see DESIGN.md §3d):
//!
//! 1. Between barriers each shard runs its own fully deterministic
//!    simulation; no state is shared, so thread scheduling cannot
//!    influence a shard's trajectory.
//! 2. At a barrier every outbound cross-shard message carries the key
//!    `(sent_at, seq, src)` where `seq` is a per-shard monotone counter.
//!    The key is unique (same `src` ⇒ different `seq`), so sorting the
//!    combined outbox yields one total order regardless of which worker
//!    thread finished first.
//! 3. Receipts are injected at the fixed time `epoch_end +
//!    cross_latency`, in sorted order, through
//!    [`ShardWorker::on_cross`] — so each destination shard sees an
//!    identical injection sequence whether the run used 1 thread or 16.
//!
//! Because of the `Rc` payloads a worker simulation must be *built and
//! consumed on its worker thread*; the executor therefore takes a
//! `Fn(usize) -> W + Sync` factory rather than pre-built workers, and
//! only the cross-shard payload type `W::Cross` ever crosses a thread
//! boundary. Final per-shard [`crate::metrics::Metrics`] are merged in
//! shard-index order and per-shard dispatch hashes are folded (also in
//! shard-index order) into one combined hash, so the `det-sanitizer`
//! feature covers the parallel path end to end.

use std::sync::mpsc;
use std::thread;

use crate::metrics::Metrics;
use crate::time::SimTime;

/// One cross-shard message, emitted by a shard during an epoch and
/// delivered to another shard after the next barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossMsg<C> {
    /// Simulated time the source shard emitted the message.
    pub sent_at: SimTime,
    /// Per-source-shard monotone sequence number (assigned by the
    /// worker; must be strictly increasing within one shard so the
    /// exchange key is unique).
    pub seq: u64,
    /// Source shard index.
    pub src: usize,
    /// Destination shard index.
    pub dst: usize,
    /// The protocol payload. Must be `Send`: this is the only data
    /// that crosses a thread boundary mid-run.
    pub payload: C,
}

/// Final state a shard worker hands back to the executor.
#[derive(Debug)]
pub struct ShardReport {
    /// The shard simulation's metrics, merged into the combined view
    /// in shard-index order.
    pub metrics: Metrics,
    /// The shard's dispatch hash (0 when the `det-sanitizer` feature
    /// is off).
    pub dispatch_hash: u64,
}

/// One shard's simulation, driven by the executor between barriers.
///
/// Implementations own a [`crate::Simulation`] (plus any workload
/// state) and translate between the executor's epoch/cross-shard view
/// and the simulation's event queue.
pub trait ShardWorker {
    /// Payload type of cross-shard messages. The only type that
    /// crosses threads.
    type Cross: Send + 'static;

    /// Runs the shard up to `epoch_end` (inclusive) and returns the
    /// cross-shard messages emitted during this epoch. `seq` values in
    /// the returned messages must be strictly increasing across the
    /// whole run (a per-shard counter, never reset between epochs).
    fn run_epoch(&mut self, epoch: u64, epoch_end: SimTime) -> Vec<CrossMsg<Self::Cross>>;

    /// Injects a cross-shard receipt addressed to this shard.
    /// `deliver_at` is the fixed barrier delivery time (`epoch_end +
    /// cross_latency`); calls arrive in the exchange's global sorted
    /// order.
    fn on_cross(&mut self, deliver_at: SimTime, msg: CrossMsg<Self::Cross>);

    /// Consumes the worker after the last epoch and reports final
    /// metrics and the dispatch hash.
    fn finish(self) -> ShardReport;
}

/// Everything the executor hands back after the last barrier.
#[derive(Debug)]
pub struct ExecutorOutcome {
    /// All shard metrics merged (re-interned) in shard-index order.
    pub metrics: Metrics,
    /// Per-shard dispatch hashes in shard-index order (zeros when the
    /// `det-sanitizer` feature is off).
    pub shard_hashes: Vec<u64>,
    /// Shard count and per-shard hashes folded into one value, in
    /// shard-index order — thread-count independent.
    pub combined_hash: u64,
    /// Cross-shard messages delivered across all barriers.
    pub cross_messages: u64,
    /// Messages emitted in the final epoch, which have no following
    /// barrier to deliver them (dropped, by construction).
    pub undelivered: u64,
}

/// SplitMix64 fold — the same mixer the engine's det-sanitizer uses,
/// exported unconditionally so seed derivation and the combined hash
/// agree with the in-engine fingerprint style.
pub fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sorts a barrier's combined outbox into the canonical exchange
/// order: `(sent_at, seq, src)`. The key is unique (per-shard `seq` is
/// strictly monotone), so the result is independent of the order the
/// per-thread outboxes were concatenated in.
pub fn sort_exchange<C>(msgs: &mut [CrossMsg<C>]) {
    msgs.sort_by_key(|m| (m.sent_at, m.seq, m.src));
}

/// Reads the `DLT_THREADS` knob: worker-thread count for the shard
/// executor. Defaults to 1 (serial); values are clamped to at least 1.
pub fn threads_from_env() -> usize {
    std::env::var("DLT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Runs K shard simulations between epoch barriers, serially or on
/// worker threads, with identical results either way.
#[derive(Debug, Clone, Copy)]
pub struct ShardExecutor {
    /// Number of shards (= worker simulations).
    pub shards: usize,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Simulated length of one epoch.
    pub epoch_len: SimTime,
    /// Fixed simulated latency a cross-shard receipt pays past the
    /// barrier: delivery at `epoch_end + cross_latency`.
    pub cross_latency: SimTime,
    /// Worker threads. 1 runs everything on the calling thread; values
    /// above `shards` are clamped down.
    pub threads: usize,
}

impl ShardExecutor {
    /// End of epoch `e` (0-based) in simulated time.
    fn epoch_end(&self, epoch: u64) -> SimTime {
        SimTime::from_micros(self.epoch_len.as_micros().saturating_mul(epoch + 1))
    }

    /// Runs the executor. The factory is called once per shard index —
    /// on the worker thread that owns the shard — so `W` itself never
    /// crosses threads (it can hold `Rc` payloads freely).
    pub fn run<W, F>(&self, factory: F) -> ExecutorOutcome
    where
        W: ShardWorker,
        F: Fn(usize) -> W + Sync,
    {
        assert!(self.shards > 0, "executor needs at least one shard");
        assert!(self.epochs > 0, "executor needs at least one epoch");
        assert!(
            self.epoch_len > SimTime::ZERO,
            "executor needs a positive epoch length"
        );
        let reports = if self.threads <= 1 || self.shards == 1 {
            self.run_serial(&factory)
        } else {
            self.run_parallel(&factory)
        };
        self.merge(reports)
    }

    /// Serial reference path: every shard on the calling thread, same
    /// barrier/exchange schedule as the parallel path.
    fn run_serial<W, F>(&self, factory: &F) -> (Vec<(usize, ShardReport)>, u64, u64)
    where
        W: ShardWorker,
        F: Fn(usize) -> W,
    {
        let mut workers: Vec<W> = (0..self.shards).map(factory).collect();
        let mut delivered = 0u64;
        let mut undelivered = 0u64;
        for epoch in 0..self.epochs {
            let epoch_end = self.epoch_end(epoch);
            let mut outbox: Vec<CrossMsg<W::Cross>> = Vec::new();
            for worker in &mut workers {
                outbox.extend(worker.run_epoch(epoch, epoch_end));
            }
            if epoch + 1 == self.epochs {
                undelivered += outbox.len() as u64;
                continue;
            }
            sort_exchange(&mut outbox);
            delivered += outbox.len() as u64;
            let deliver_at = epoch_end.saturating_add(self.cross_latency);
            for msg in outbox {
                assert!(
                    msg.dst < self.shards,
                    "cross-shard message to unknown shard"
                );
                workers[msg.dst].on_cross(deliver_at, msg);
            }
        }
        let reports = workers
            .into_iter()
            .enumerate()
            .map(|(shard, w)| (shard, w.finish()))
            .collect();
        (reports, delivered, undelivered)
    }

    /// Parallel path: `nthreads` scoped workers, shard `i` owned by
    /// thread `i % nthreads`. Each barrier is a gather (worker →
    /// coordinator outboxes), a canonical sort, and a scatter
    /// (coordinator → owning worker, preserving the sorted order).
    fn run_parallel<W, F>(&self, factory: &F) -> (Vec<(usize, ShardReport)>, u64, u64)
    where
        W: ShardWorker,
        F: Fn(usize) -> W + Sync,
    {
        let nthreads = self.threads.min(self.shards);
        let exec = *self;
        let mut delivered = 0u64;
        let mut undelivered = 0u64;

        let mut reports: Vec<(usize, ShardReport)> = thread::scope(|scope| {
            let (gather_tx, gather_rx) = mpsc::channel::<(usize, Vec<CrossMsg<W::Cross>>)>();
            let mut scatter_txs = Vec::with_capacity(nthreads);
            let mut handles = Vec::with_capacity(nthreads);

            for tid in 0..nthreads {
                let (scatter_tx, scatter_rx) = mpsc::channel::<Vec<CrossMsg<W::Cross>>>();
                scatter_txs.push(scatter_tx);
                let gather = gather_tx.clone();
                let factory = &factory;
                handles.push(scope.spawn(move || {
                    // Build owned shards here: `W` never leaves this
                    // thread, only `W::Cross` does.
                    let mut owned: Vec<(usize, W)> = (tid..exec.shards)
                        .step_by(nthreads)
                        .map(|shard| (shard, factory(shard)))
                        .collect();
                    for epoch in 0..exec.epochs {
                        let epoch_end = exec.epoch_end(epoch);
                        let mut outbox = Vec::new();
                        for (_, worker) in &mut owned {
                            outbox.extend(worker.run_epoch(epoch, epoch_end));
                        }
                        gather
                            .send((tid, outbox))
                            .expect("coordinator hung up mid-run");
                        if epoch + 1 == exec.epochs {
                            break;
                        }
                        let inbound = scatter_rx.recv().expect("coordinator hung up mid-run");
                        let deliver_at = epoch_end.saturating_add(exec.cross_latency);
                        // Inbound arrives in the global sorted order;
                        // injecting sequentially preserves each shard's
                        // relative order, which is all a shard can see.
                        for msg in inbound {
                            let slot = owned
                                .iter_mut()
                                .find(|(shard, _)| *shard == msg.dst)
                                .expect("message routed to a shard this thread does not own");
                            slot.1.on_cross(deliver_at, msg);
                        }
                    }
                    owned
                        .into_iter()
                        .map(|(shard, w)| (shard, w.finish()))
                        .collect::<Vec<_>>()
                }));
            }
            drop(gather_tx);

            // Coordinator: one gather → sort → scatter round per barrier.
            for epoch in 0..exec.epochs {
                let mut outbox: Vec<CrossMsg<W::Cross>> = Vec::new();
                for _ in 0..nthreads {
                    let (_tid, batch) = gather_rx.recv().expect("a shard worker panicked");
                    outbox.extend(batch);
                }
                if epoch + 1 == exec.epochs {
                    undelivered += outbox.len() as u64;
                    break;
                }
                sort_exchange(&mut outbox);
                delivered += outbox.len() as u64;
                let mut routed: Vec<Vec<CrossMsg<W::Cross>>> =
                    (0..nthreads).map(|_| Vec::new()).collect();
                for msg in outbox {
                    assert!(
                        msg.dst < exec.shards,
                        "cross-shard message to unknown shard"
                    );
                    routed[msg.dst % nthreads].push(msg);
                }
                for (tx, batch) in scatter_txs.iter().zip(routed) {
                    tx.send(batch).expect("a shard worker panicked");
                }
            }

            handles
                .into_iter()
                .flat_map(|h| h.join().expect("a shard worker panicked"))
                .collect()
        });
        reports.sort_by_key(|(shard, _)| *shard);
        (reports, delivered, undelivered)
    }

    /// Merges per-shard reports in shard-index order into the combined
    /// outcome — identical for the serial and parallel paths.
    fn merge(&self, parts: (Vec<(usize, ShardReport)>, u64, u64)) -> ExecutorOutcome {
        let (reports, cross_messages, undelivered) = parts;
        debug_assert!(reports
            .iter()
            .enumerate()
            .all(|(i, (shard, _))| i == *shard));
        let mut metrics = Metrics::new();
        let mut shard_hashes = Vec::with_capacity(reports.len());
        let mut combined_hash = mix(0, reports.len() as u64);
        for (_, report) in &reports {
            metrics.merge(&report.metrics);
            shard_hashes.push(report.dispatch_hash);
            combined_hash = mix(combined_hash, report.dispatch_hash);
        }
        ExecutorOutcome {
            metrics,
            shard_hashes,
            combined_hash,
            cross_messages,
            undelivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy worker: each epoch it "earns" one unit per epoch, sends a
    /// token to the next shard, and records everything it saw so the
    /// test can compare serial and parallel trajectories exactly.
    struct TokenWorker {
        shard: usize,
        shards: usize,
        seq: u64,
        sent: u64,
        received: Vec<(SimTime, usize, u64)>,
        metrics: Metrics,
    }

    impl TokenWorker {
        fn new(shard: usize, shards: usize) -> Self {
            TokenWorker {
                shard,
                shards,
                seq: 0,
                sent: 0,
                received: Vec::new(),
                metrics: Metrics::new(),
            }
        }
    }

    impl ShardWorker for TokenWorker {
        type Cross = u64;

        fn run_epoch(&mut self, epoch: u64, epoch_end: SimTime) -> Vec<CrossMsg<u64>> {
            // Two messages per epoch with equal timestamps across
            // shards, to exercise the seq/src tiebreaks.
            (0..2)
                .map(|i| {
                    let seq = self.seq;
                    self.seq += 1;
                    self.sent += 1;
                    CrossMsg {
                        sent_at: epoch_end.saturating_sub(SimTime::from_millis(i + 1)),
                        seq,
                        src: self.shard,
                        dst: (self.shard + 1) % self.shards,
                        payload: epoch * 100 + i,
                    }
                })
                .collect()
        }

        fn on_cross(&mut self, deliver_at: SimTime, msg: CrossMsg<u64>) {
            self.received.push((deliver_at, msg.src, msg.payload));
            self.metrics.inc_named("cross.received");
        }

        fn finish(mut self) -> ShardReport {
            self.metrics.add_named("cross.sent", self.sent);
            for (at, _, _) in &self.received {
                self.metrics
                    .record_named("cross.deliver_ms", at.as_secs_f64() * 1e3);
            }
            ShardReport {
                metrics: self.metrics,
                // Stand-in fingerprint: shards fold their receive log.
                dispatch_hash: self
                    .received
                    .iter()
                    .fold(mix(0, self.shard as u64), |h, (at, src, p)| {
                        mix(mix(mix(h, at.as_micros()), *src as u64), *p)
                    }),
            }
        }
    }

    fn executor(shards: usize, threads: usize) -> ShardExecutor {
        ShardExecutor {
            shards,
            epochs: 5,
            epoch_len: SimTime::from_secs(1),
            cross_latency: SimTime::from_millis(100),
            threads,
        }
    }

    fn outcome(shards: usize, threads: usize) -> ExecutorOutcome {
        executor(shards, threads).run(|shard| TokenWorker::new(shard, shards))
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        for &shards in &[1usize, 2, 3, 8] {
            let serial = outcome(shards, 1);
            for &threads in &[2usize, 3, 16] {
                let parallel = outcome(shards, threads);
                assert_eq!(serial.combined_hash, parallel.combined_hash);
                assert_eq!(serial.shard_hashes, parallel.shard_hashes);
                assert_eq!(serial.cross_messages, parallel.cross_messages);
                assert_eq!(serial.undelivered, parallel.undelivered);
                assert_eq!(serial.metrics.to_string(), parallel.metrics.to_string());
            }
        }
    }

    #[test]
    fn exchange_counts_and_final_epoch_drop() {
        let out = outcome(4, 2);
        // 4 shards × 2 msgs × 4 delivered epochs; final epoch undelivered.
        assert_eq!(out.cross_messages, 32);
        assert_eq!(out.undelivered, 8);
        assert_eq!(out.metrics.count("cross.received"), 32);
        assert_eq!(out.metrics.count("cross.sent"), 40);
        assert_eq!(out.metrics.len("cross.deliver_ms"), 32);
    }

    #[test]
    fn sort_exchange_is_total_and_input_order_invariant() {
        let mk = |sent_ms: u64, seq: u64, src: usize| CrossMsg {
            sent_at: SimTime::from_millis(sent_ms),
            seq,
            src,
            dst: 0,
            payload: (),
        };
        let mut a = vec![mk(5, 0, 1), mk(5, 0, 0), mk(1, 7, 2), mk(5, 1, 0)];
        let mut b = a.clone();
        b.reverse();
        sort_exchange(&mut a);
        sort_exchange(&mut b);
        assert_eq!(a, b);
        let keys: Vec<_> = a.iter().map(|m| (m.sent_at, m.seq, m.src)).collect();
        assert_eq!(
            keys,
            vec![
                (SimTime::from_millis(1), 7, 2),
                (SimTime::from_millis(5), 0, 0),
                (SimTime::from_millis(5), 0, 1),
                (SimTime::from_millis(5), 1, 0),
            ]
        );
    }

    #[test]
    fn threads_above_shard_count_are_clamped() {
        let serial = outcome(2, 1);
        let oversubscribed = outcome(2, 64);
        assert_eq!(serial.combined_hash, oversubscribed.combined_hash);
        assert_eq!(
            serial.metrics.to_string(),
            oversubscribed.metrics.to_string()
        );
    }

    #[test]
    fn mix_matches_splitmix_reference() {
        // Fixed-point check so the fold cannot silently drift from the
        // engine's det_fold.
        assert_eq!(mix(0, 0), 0xe220_a839_7b1d_cdaf);
        // A single fold is symmetric in (h, v); chained folds are not.
        assert_ne!(mix(mix(0, 1), 2), mix(mix(0, 2), 1));
    }
}
