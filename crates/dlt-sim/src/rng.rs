//! Deterministic randomness and the samplers the experiments use.
//!
//! All simulation randomness flows from one seeded [`SimRng`], so any
//! run is reproducible from its seed. On top of the uniform source,
//! this module provides the distributions the ledger experiments need:
//!
//! * [`SimRng::exponential`] — inter-block times of Poisson mining
//!   (the statistically exact model of constant-hash-rate PoW).
//! * [`SimRng::log_normal`] — long-tailed network latencies.
//! * [`SimRng::poisson`] — arrival counts per interval for workload
//!   generators.
//! * [`SimRng::zipf`] — skewed account popularity (a few hot accounts
//!   send most transactions, as on real ledgers).

use dlt_testkit::rng::{RngCore, Xoshiro256StarStar};

/// A seeded deterministic random source (xoshiro256**, seeded through
/// SplitMix64 — see `dlt_testkit::rng`).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256StarStar,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Splits off an independent child RNG (used to give each node its
    /// own stream so node-local randomness doesn't depend on event
    /// interleaving).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.next_u64())
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`, via Lemire's nearly-divisionless
    /// unbiased range reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening-multiply rejection sampling: unbiased for any bound.
        loop {
            let x = self.inner.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected: x fell in the truncated remainder zone.
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fills a byte buffer (e.g. key seeds).
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// A fresh 32-byte seed.
    pub fn seed32(&mut self) -> [u8; 32] {
        let mut seed = [0u8; 32];
        self.fill(&mut seed);
        seed
    }

    /// Samples an exponential distribution with the given mean via
    /// inverse-CDF. The exponential is the exact distribution of
    /// inter-block times for a memoryless (Poisson) mining process.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u: f64 = self.unit();
        // 1 - u ∈ (0, 1], so ln is finite and non-positive.
        -mean * (1.0 - u).ln()
    }

    /// Samples a standard normal via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a log-normal distribution parameterised by its *median*
    /// and the log-space standard deviation `sigma`. Long-tailed WAN
    /// latencies are conventionally modelled this way.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive and finite or `sigma` is
    /// negative.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(
            median.is_finite() && median > 0.0,
            "median must be positive"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        median * (sigma * self.standard_normal()).exp()
    }

    /// Samples a Poisson-distributed count with the given rate `lambda`
    /// (Knuth's algorithm; adequate for the λ ≲ 1e4 the workloads use).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be >= 0");
        if lambda == 0.0 {
            return 0;
        }
        // For large lambda use a normal approximation to avoid O(λ)
        // iterations.
        if lambda > 1000.0 {
            let sample = lambda + lambda.sqrt() * self.standard_normal();
            return sample.max(0.0).round() as u64;
        }
        let threshold = (-lambda).exp();
        let mut count = 0u64;
        let mut product = self.unit();
        while product > threshold {
            count += 1;
            product *= self.unit();
        }
        count
    }

    /// Samples an index in `[0, n)` from a Zipf distribution with
    /// exponent `s` (by inverse-CDF over precomputed weights this would
    /// be faster; the rejection-free cumulative scan here is fine for
    /// the n ≤ 10⁴ the workloads use).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.unit() * norm;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(s);
            if u <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Chooses one element of a weighted set; returns its index.
    /// Weights must be non-negative and not all zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted choice over empty set");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut u = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned-seed regression: these exact outputs are part of the
    /// workspace contract — every seeded experiment result depends on
    /// them. If this test fails, the RNG changed and all recorded
    /// experiment outputs are invalidated; do not update the constants
    /// without that intent.
    #[test]
    fn pinned_seed_outputs_are_stable() {
        let mut r = SimRng::new(42);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                1546998764402558742,
                6990951692964543102,
                12544586762248559009,
                17057574109182124193,
            ]
        );
        let mut r = SimRng::new(42);
        assert_eq!(
            [r.unit(), r.unit(), r.unit()],
            [0.08386297105988216, 0.3789802506626686, 0.6800434110281394]
        );
        let mut r = SimRng::new(42);
        assert_eq!(
            [
                r.below(1000),
                r.below(1000),
                r.below(1000),
                r.below(1000),
                r.below(1000)
            ],
            [83, 378, 680, 924, 991]
        );
    }

    /// Pinned-seed regression over the derived samplers: their
    /// first two moments must stay within tight tolerances of the
    /// distributions they claim to draw from.
    #[test]
    fn pinned_seed_sampler_moments_are_stable() {
        const N: usize = 100_000;
        fn moments(samples: impl Iterator<Item = f64>) -> (f64, f64) {
            let all: Vec<f64> = samples.collect();
            let mean = all.iter().sum::<f64>() / all.len() as f64;
            let var = all.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / all.len() as f64;
            (mean, var)
        }

        let mut r = SimRng::new(1234);
        let (mean, var) = moments((0..N).map(|_| r.exponential(2.0)));
        assert!((mean - 2.0).abs() < 0.05, "exponential mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "exponential variance {var}");

        let mut r = SimRng::new(1234);
        let (mean, var) = moments((0..N).map(|_| r.standard_normal()));
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal variance {var}");

        let mut r = SimRng::new(1234);
        let (mean, var) = moments((0..N).map(|_| r.poisson(4.0) as f64));
        assert!((mean - 4.0).abs() < 0.05, "poisson mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "poisson variance {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let mut parent1 = SimRng::new(5);
        let mut parent2 = SimRng::new(5);
        let mut child1 = parent1.fork();
        let mut child2 = parent2.fork();
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mean = 600.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.05,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SimRng::new(12);
        assert!((0..1000).all(|_| rng.exponential(1.0) >= 0.0));
    }

    #[test]
    fn log_normal_median_converges() {
        let mut rng = SimRng::new(13);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal(100.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut rng = SimRng::new(14);
        for lambda in [0.5, 5.0, 50.0, 5000.0] {
            let n = 5000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut rng = SimRng::new(15);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "counts {counts:?}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::new(16);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts {counts:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(17);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::new(18);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = SimRng::new(19);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::new(20);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
