//! Simulated time.
//!
//! [`SimTime`] is both a point in simulated time and a duration
//! (microsecond resolution, starting at zero). The experiments span
//! twelve orders of magnitude — sub-millisecond vote propagation up to
//! multi-day ledger-growth projections — which comfortably fits in a
//! `u64` of microseconds (~584 000 years).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use dlt_crypto::codec::{Decode, DecodeError, Encode};

/// A point in simulated time (or a duration), in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The farthest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Constructs from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000_000)
    }

    /// Constructs from fractional seconds, saturating at zero for
    /// negative inputs.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Duration scaled by an integer factor.
    #[allow(clippy::should_implement_trait)] // u64 scaling, not Mul<SimTime>
    pub fn mul(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }

    /// Duration divided by an integer factor.
    #[allow(clippy::should_implement_trait)] // u64 division, not Div<SimTime>
    pub fn div(self, divisor: u64) -> SimTime {
        SimTime(self.0 / divisor)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Encode for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for SimTime {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(SimTime(u64::decode(input)?))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros >= 60_000_000 {
            write!(f, "{:.2}min", micros as f64 / 60e6)
        } else if micros >= 1_000_000 {
            write!(f, "{:.3}s", micros as f64 / 1e6)
        } else if micros >= 1_000 {
            write!(f, "{:.2}ms", micros as f64 / 1e3)
        } else {
            write!(f, "{micros}µs")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        for t in [SimTime::ZERO, SimTime::from_millis(80), SimTime::MAX] {
            let bytes = t.encode_to_vec();
            assert_eq!(bytes.len(), t.encoded_len());
            let back: SimTime = dlt_crypto::codec::decode_exact(&bytes).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1500));
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(a.mul(2), SimTime::from_secs(6));
        assert_eq!(a.div(3), SimTime::from_secs(1));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(4));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(1)),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn conversions() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_mins(5).to_string(), "5.00min");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
    }
}
