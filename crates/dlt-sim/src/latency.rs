//! Link-latency models.
//!
//! The paper attributes both blockchain fork rate (§IV-A) and Nano's
//! practical throughput ceiling (§VI-B) to "network conditions". The
//! experiments therefore sweep latency models; this module provides the
//! three shapes they use.

use dlt_crypto::codec::{Decode, DecodeError, Encode};

use crate::rng::SimRng;
use crate::time::SimTime;

/// A model of one-way message delay on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(SimTime),
    /// Uniformly distributed delay in `[min, max]`.
    Uniform {
        /// Minimum delay.
        min: SimTime,
        /// Maximum delay (inclusive).
        max: SimTime,
    },
    /// Log-normal delay: long-tailed, the conventional WAN model.
    LogNormal {
        /// Median delay.
        median: SimTime,
        /// Log-space standard deviation (0.3–0.6 is WAN-like).
        sigma: f64,
    },
}

impl LatencyModel {
    /// A convenience WAN-ish default: log-normal, 80 ms median.
    pub fn wan() -> Self {
        LatencyModel::LogNormal {
            median: SimTime::from_millis(80),
            sigma: 0.4,
        }
    }

    /// A LAN-ish default: uniform 1–5 ms.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: SimTime::from_millis(1),
            max: SimTime::from_millis(5),
        }
    }

    /// Samples one message delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        match *self {
            LatencyModel::Fixed(delay) => delay,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform latency range inverted");
                let lo = min.as_micros();
                let hi = max.as_micros();
                if lo == hi {
                    min
                } else {
                    SimTime::from_micros(rng.range(lo, hi + 1))
                }
            }
            LatencyModel::LogNormal { median, sigma } => {
                let sampled = rng.log_normal(median.as_micros() as f64, sigma);
                SimTime::from_micros(sampled.max(1.0) as u64)
            }
        }
    }

    /// The model's typical (median) delay, used for coarse analytics.
    pub fn typical(&self) -> SimTime {
        match *self {
            LatencyModel::Fixed(delay) => delay,
            LatencyModel::Uniform { min, max } => {
                SimTime::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::LogNormal { median, .. } => median,
        }
    }
}

impl Encode for LatencyModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            LatencyModel::Fixed(delay) => {
                out.push(0);
                delay.encode(out);
            }
            LatencyModel::Uniform { min, max } => {
                out.push(1);
                min.encode(out);
                max.encode(out);
            }
            LatencyModel::LogNormal { median, sigma } => {
                out.push(2);
                median.encode(out);
                sigma.encode(out);
            }
        }
    }
}

impl Decode for LatencyModel {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(LatencyModel::Fixed(SimTime::decode(input)?)),
            1 => Ok(LatencyModel::Uniform {
                min: SimTime::decode(input)?,
                max: SimTime::decode(input)?,
            }),
            2 => Ok(LatencyModel::LogNormal {
                median: SimTime::decode(input)?,
                sigma: f64::decode(input)?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_crypto::codec::decode_exact;

    #[test]
    fn codec_round_trip_all_variants() {
        for model in [
            LatencyModel::Fixed(SimTime::from_millis(25)),
            LatencyModel::lan(),
            LatencyModel::wan(),
        ] {
            let bytes = model.encode_to_vec();
            assert_eq!(bytes.len(), model.encoded_len());
            let back: LatencyModel = decode_exact(&bytes).unwrap();
            assert_eq!(back, model);
        }
        assert!(matches!(
            decode_exact::<LatencyModel>(&[9]),
            Err(DecodeError::InvalidTag(9))
        ));
    }

    #[test]
    fn fixed_is_constant() {
        let model = LatencyModel::Fixed(SimTime::from_millis(25));
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(model.sample(&mut rng), SimTime::from_millis(25));
        }
        assert_eq!(model.typical(), SimTime::from_millis(25));
    }

    #[test]
    fn uniform_respects_bounds() {
        let model = LatencyModel::Uniform {
            min: SimTime::from_millis(10),
            max: SimTime::from_millis(20),
        };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let s = model.sample(&mut rng);
            assert!(s >= SimTime::from_millis(10) && s <= SimTime::from_millis(20));
        }
        assert_eq!(model.typical(), SimTime::from_millis(15));
    }

    #[test]
    fn uniform_degenerate_range() {
        let model = LatencyModel::Uniform {
            min: SimTime::from_millis(7),
            max: SimTime::from_millis(7),
        };
        let mut rng = SimRng::new(3);
        assert_eq!(model.sample(&mut rng), SimTime::from_millis(7));
    }

    #[test]
    fn log_normal_median_roughly_correct() {
        let model = LatencyModel::LogNormal {
            median: SimTime::from_millis(80),
            sigma: 0.4,
        };
        let mut rng = SimRng::new(4);
        let mut samples: Vec<u64> = (0..9999)
            .map(|_| model.sample(&mut rng).as_micros())
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64 / 1000.0;
        assert!((median - 80.0).abs() < 5.0, "median {median}ms");
        // Long tail exists:
        assert!(*samples.last().unwrap() > 160_000);
    }

    #[test]
    fn samples_are_never_zero_for_lognormal() {
        let model = LatencyModel::LogNormal {
            median: SimTime::from_micros(2),
            sigma: 2.0,
        };
        let mut rng = SimRng::new(5);
        assert!((0..1000).all(|_| model.sample(&mut rng) >= SimTime::from_micros(1)));
    }

    #[test]
    fn presets_have_sane_typicals() {
        assert_eq!(LatencyModel::wan().typical(), SimTime::from_millis(80));
        assert_eq!(LatencyModel::lan().typical(), SimTime::from_millis(3));
    }
}
