//! The discrete-event loop.
//!
//! A [`Simulation`] owns a set of nodes implementing [`SimNode`] and a
//! time-ordered event queue. Nodes react to message deliveries and
//! timers through a [`Context`], which lets them send messages (subject
//! to the [`Network`] latency and fault
//! model), broadcast to their peers, set timers, and record metrics.
//!
//! Execution is deterministic: events are ordered by `(time, sequence
//! number)`, and all randomness comes from the simulation's seeded RNG.
//!
//! The hot path is allocation-light: scheduled message payloads are
//! shared behind [`Payload`] (an `Rc`), so an N-peer broadcast
//! allocates the message once and every relay re-shares the same
//! allocation; the engine's own counters go through pre-interned
//! [`crate::metrics::CounterId`] handles. Every send, schedule,
//! dispatch, and network-drop point also calls the installed
//! [`Tracer`] (a no-op unless one is installed via
//! [`Simulation::set_tracer`]), and every send consults the installed
//! fault [`Interceptor`] (none by default — see
//! [`Simulation::set_interceptor`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::fault::Interceptor;
use crate::latency::LatencyModel;
use crate::metrics::{CounterId, Metrics};
use crate::network::{Network, NodeId};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{EventKind, NoopTracer, TraceEvent, Tracer};

/// A shared, immutable message payload. One broadcast allocates the
/// message once; every scheduled delivery and every relay hop shares
/// that allocation.
pub type Payload<M> = Rc<M>;

/// Folds one value into the running det-sanitizer hash (SplitMix64
/// finalizer — cheap and well mixed; this is a fingerprint, not a
/// cryptographic digest).
#[cfg(feature = "det-sanitizer")]
fn det_fold(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Behaviour of one simulated node.
///
/// `M` is the message type of the whole simulation (typically an enum
/// of the protocol's message kinds).
pub trait SimNode<M> {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message from `from` is delivered to this node.
    /// The payload is shared: clone the `Payload` (cheap) to relay it,
    /// clone the inner `M` only when ownership is really needed.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: Payload<M>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: u64) {}
}

impl<M, T: SimNode<M> + ?Sized> SimNode<M> for Box<T> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        (**self).on_start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: Payload<M>) {
        (**self).on_message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: u64) {
        (**self).on_timer(ctx, timer)
    }
}

/// What the engine schedules.
#[derive(Debug)]
enum Event<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: Payload<M>,
    },
    Timer {
        node: NodeId,
        id: u64,
    },
}

impl<M> Event<M> {
    fn kind(&self) -> EventKind {
        match self {
            Event::Deliver { from, to, .. } => EventKind::Deliver {
                from: *from,
                to: *to,
            },
            Event::Timer { node, id } => EventKind::Timer {
                node: *node,
                id: *id,
            },
        }
    }
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Engine state shared between the simulation and node contexts.
struct Core<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    network: Network,
    rng: SimRng,
    metrics: Metrics,
    node_count: usize,
    net_messages: CounterId,
    tracer: Box<dyn Tracer>,
    // Cached tracer.enabled() so emit points cost one branch when off.
    tracing: bool,
    // Fault-injection / replay hook; `None` keeps the send path on the
    // plain network-model branch.
    interceptor: Option<Box<dyn Interceptor>>,
    // Runtime determinism sanitizer: every dispatched event is folded
    // into this hash, so two runs of the same seeded workload can be
    // compared event-for-event without recording a full trace.
    #[cfg(feature = "det-sanitizer")]
    det_hash: u64,
    // Optional message fingerprint, folded per delivery when set.
    #[cfg(feature = "det-sanitizer")]
    msg_digester: Option<fn(&M) -> u64>,
}

impl<M> Core<M> {
    fn schedule(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        if self.tracing {
            self.tracer.trace(TraceEvent::Schedule {
                at,
                seq,
                kind: event.kind(),
            });
        }
        self.queue.push(Scheduled { at, seq, event });
    }

    fn send_from(&mut self, from: NodeId, to: NodeId, msg: Payload<M>) {
        let mut deliveries = self.network.deliveries(from, to, &mut self.rng);
        if let Some(interceptor) = self.interceptor.as_deref_mut() {
            interceptor.intercept(self.now, from, to, &mut deliveries);
        }
        if self.tracing {
            self.tracer.trace(TraceEvent::Sent {
                at: self.now,
                from,
                to,
                deliveries: deliveries.len() as u32,
            });
        }
        if deliveries.is_empty() {
            if self.tracing {
                self.tracer.trace(TraceEvent::Dropped {
                    at: self.now,
                    from,
                    to,
                });
            }
            return;
        }
        for delay in deliveries {
            self.metrics.inc(self.net_messages);
            self.schedule(
                self.now.saturating_add(delay),
                Event::Deliver {
                    from,
                    to,
                    msg: Rc::clone(&msg),
                },
            );
        }
    }

    fn mark(&mut self, label: &'static str, value: u64) {
        if self.tracing {
            self.tracer.trace(TraceEvent::Mark {
                at: self.now,
                label,
                value,
            });
        }
    }
}

/// The API a node sees while handling an event.
pub struct Context<'a, M> {
    core: &'a mut Core<M>,
    node: NodeId,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The handled node's own id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.core.node_count
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// The shared metrics sink. Register handles in
    /// [`SimNode::on_start`] and update through them afterwards.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Emits a protocol-level [`TraceEvent::Mark`] to the installed
    /// tracer (free when tracing is off).
    pub fn trace_mark(&mut self, label: &'static str, value: u64) {
        self.core.mark(label, value);
    }

    /// Sends `msg` to `to`, subject to the network's latency/faults.
    /// Messages to unreachable nodes (partitioned, not a peer, self)
    /// are silently dropped, as on a real network. Accepts either an
    /// owned `M` or an already-shared [`Payload<M>`].
    pub fn send(&mut self, to: NodeId, msg: impl Into<Payload<M>>) {
        let from = self.node;
        self.core.send_from(from, to, msg.into());
    }

    /// Sends `msg` to every current peer (full mesh unless an explicit
    /// topology was installed). Each copy samples its own latency, so
    /// different peers hear about it at different times — the root cause
    /// of the soft forks in paper §IV-A. The payload is allocated (at
    /// most) once and shared across all scheduled deliveries; relaying
    /// a received [`Payload<M>`] re-shares the original allocation.
    pub fn broadcast(&mut self, msg: impl Into<Payload<M>>) {
        let msg = msg.into();
        let from = self.node;
        let peers = self.core.network.peers_of(from, self.core.node_count);
        for to in peers {
            self.core.send_from(from, to, Rc::clone(&msg));
        }
    }

    /// Schedules this node's [`SimNode::on_timer`] to fire after
    /// `delay` with the given id.
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        let node = self.node;
        let at = self.core.now.saturating_add(delay);
        self.core.schedule(at, Event::Timer { node, id });
    }
}

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// For heterogeneous node sets use `N = Box<dyn SimNode<M>>`.
pub struct Simulation<M, N> {
    nodes: Vec<N>,
    core: Core<M>,
}

impl<M, N: SimNode<M>> Simulation<M, N> {
    /// Creates a simulation with a fault-free full-mesh network using
    /// the given latency model.
    pub fn new(seed: u64, latency: LatencyModel) -> Self {
        Self::with_network(seed, Network::new(latency))
    }

    /// Creates a simulation over a fully configured network.
    pub fn with_network(seed: u64, network: Network) -> Self {
        let mut metrics = Metrics::new();
        let net_messages = metrics.counter("net.messages");
        Simulation {
            nodes: Vec::new(),
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                network,
                rng: SimRng::new(seed),
                metrics,
                node_count: 0,
                net_messages,
                tracer: Box::new(NoopTracer),
                tracing: false,
                interceptor: None,
                #[cfg(feature = "det-sanitizer")]
                det_hash: 0,
                #[cfg(feature = "det-sanitizer")]
                msg_digester: None,
            },
        }
    }

    /// Installs a tracer that will observe every schedule, dispatch,
    /// and drop from now on. Install before adding nodes to capture
    /// `on_start` activity too.
    pub fn set_tracer(&mut self, tracer: impl Tracer + 'static) {
        self.core.tracing = tracer.enabled();
        self.core.tracer = Box::new(tracer);
    }

    /// Installs a fault-injection (or replay) interceptor that will
    /// see every send from now on, after the network model samples the
    /// baseline deliveries. Sends issued before installation — e.g.
    /// `on_start` bootstrap traffic — are not intercepted.
    pub fn set_interceptor(&mut self, interceptor: impl Interceptor + 'static) {
        self.core.interceptor = Some(Box::new(interceptor));
    }

    /// Removes any installed interceptor, restoring the plain
    /// network-model send path.
    pub fn clear_interceptor(&mut self) {
        self.core.interceptor = None;
    }

    /// Adds a node and invokes its [`SimNode::on_start`]. Returns the
    /// node's id.
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.core.node_count = self.nodes.len();
        let mut ctx = Context {
            core: &mut self.core,
            node: id,
        };
        self.nodes[id.0].on_start(&mut ctx);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (e.g. to inspect final state).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The network, for reconfiguration mid-run (partitions, latency).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.core.network
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Mutable metrics access (e.g. for harness-level counters).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Consumes the simulation and returns its metrics — the shard
    /// executor's hand-off path ([`crate::shard::ShardWorker::finish`]).
    /// Consuming (rather than `mem::take`-style borrowing) keeps the
    /// engine's pre-interned counter handles from ever pointing into an
    /// emptied table.
    pub fn into_metrics(self) -> Metrics {
        self.core.metrics
    }

    /// The dispatch hash when the `det-sanitizer` feature is on, `0`
    /// otherwise — lets feature-agnostic callers (the shard executor's
    /// [`crate::shard::ShardReport`]) fold it unconditionally.
    pub fn dispatch_hash_or_zero(&self) -> u64 {
        #[cfg(feature = "det-sanitizer")]
        {
            self.core.det_hash
        }
        #[cfg(not(feature = "det-sanitizer"))]
        {
            0
        }
    }

    /// The simulation RNG (e.g. for workload generation).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Injects a message from `from` to `to` as if `from` had sent it
    /// now (samples network latency and faults).
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: impl Into<Payload<M>>) {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len());
        self.core.send_from(from, to, msg.into());
    }

    /// Delivers a message directly at an absolute time, bypassing the
    /// network model — used by workload generators that model clients
    /// outside the peer-to-peer fabric.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or `at` is in the past.
    pub fn deliver_at(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        msg: impl Into<Payload<M>>,
    ) {
        assert!(to.0 < self.nodes.len(), "unknown destination node");
        assert!(at >= self.core.now, "cannot schedule in the past");
        self.core.schedule(
            at,
            Event::Deliver {
                from,
                to,
                msg: msg.into(),
            },
        );
    }

    /// Schedules a timer on a node from outside the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_timer_for(&mut self, node: NodeId, delay: SimTime, id: u64) {
        assert!(node.0 < self.nodes.len(), "unknown node");
        let at = self.core.now.saturating_add(delay);
        self.core.schedule(at, Event::Timer { node, id });
    }

    /// Processes the next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.core.now, "time went backwards");
        self.core.now = scheduled.at;
        if self.core.tracing {
            self.core.tracer.trace(TraceEvent::Dispatch {
                at: scheduled.at,
                seq: scheduled.seq,
                kind: scheduled.event.kind(),
            });
        }
        #[cfg(feature = "det-sanitizer")]
        {
            let mut h = self.core.det_hash;
            h = det_fold(h, scheduled.at.as_micros());
            h = det_fold(h, scheduled.seq);
            h = det_fold(
                h,
                match &scheduled.event {
                    Event::Deliver { from, to, msg } => {
                        let digest = self.core.msg_digester.map_or(0, |f| f(msg));
                        det_fold(det_fold(det_fold(1, from.0 as u64), to.0 as u64), digest)
                    }
                    Event::Timer { node, id } => det_fold(det_fold(2, node.0 as u64), *id),
                },
            );
            self.core.det_hash = h;
        }
        match scheduled.event {
            Event::Deliver { from, to, msg } => {
                let mut ctx = Context {
                    core: &mut self.core,
                    node: to,
                };
                // dlt-lint: allow(D5, reason = "NodeId is bounds-checked at schedule time (deliver_at/send asserts); indexing cannot fail here")
                self.nodes[to.0].on_message(&mut ctx, from, msg);
            }
            Event::Timer { node, id } => {
                let mut ctx = Context {
                    core: &mut self.core,
                    node,
                };
                // dlt-lint: allow(D5, reason = "NodeId is bounds-checked at schedule time (set_timer_for/set_timer asserts); indexing cannot fail here")
                self.nodes[node.0].on_timer(&mut ctx, id);
            }
        }
        true
    }

    /// Runs all events scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.core.queue.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
        }
        self.core.now = deadline;
    }

    /// Runs until the event queue drains or the next event would exceed
    /// `limit`. The clock stays at the last processed event (it does
    /// not jump to `limit`).
    pub fn run_until_idle(&mut self, limit: SimTime) {
        while let Some(next) = self.core.queue.peek() {
            if next.at > limit {
                break;
            }
            self.step();
        }
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// The running determinism-sanitizer hash: every dispatched event's
    /// `(time, seq, kind, node ids, msg digest)` folded in dispatch
    /// order. Two runs of the same seeded workload must produce the
    /// same value; a mismatch means nondeterminism slipped past the
    /// static lint (`dlt-lint`). Use `trace_diff` on two recorded
    /// traces to localize the first diverging event.
    #[cfg(feature = "det-sanitizer")]
    pub fn dispatch_hash(&self) -> u64 {
        self.core.det_hash
    }

    /// Installs a per-message fingerprint function folded into the
    /// sanitizer hash on every delivery (off by default: the hash then
    /// covers timing, ordering, and routing but not payload bytes).
    #[cfg(feature = "det-sanitizer")]
    pub fn set_msg_digester(&mut self, digester: fn(&M) -> u64) {
        self.core.msg_digester = Some(digester);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecordingTracer;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Recorder {
        received: Vec<(NodeId, Msg, SimTime)>,
        timers: Vec<(u64, SimTime)>,
        reply: bool,
    }

    impl SimNode<Msg> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Payload<Msg>) {
            self.received.push((from, (*msg).clone(), ctx.now()));
            if self.reply {
                if let Msg::Ping(n) = *msg {
                    ctx.send(from, Msg::Pong(n));
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, timer: u64) {
            self.timers.push((timer, ctx.now()));
        }
    }

    fn fixed(ms: u64) -> LatencyModel {
        LatencyModel::Fixed(SimTime::from_millis(ms))
    }

    #[test]
    fn message_arrives_after_latency() {
        let mut sim = Simulation::new(1, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.send_external(a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        let received = &sim.node(b).received;
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].0, a);
        assert_eq!(received[0].1, Msg::Ping(1));
        assert_eq!(received[0].2, SimTime::from_millis(10));
    }

    #[test]
    fn reply_round_trip() {
        let mut sim = Simulation::new(2, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder {
            reply: true,
            ..Default::default()
        });
        sim.send_external(a, b, Msg::Ping(7));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.node(a).received.len(), 1);
        assert_eq!(sim.node(a).received[0].1, Msg::Pong(7));
        assert_eq!(sim.node(a).received[0].2, SimTime::from_millis(20));
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        struct Broadcaster;
        impl SimNode<Msg> for Broadcaster {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.broadcast(Msg::Ping(0));
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Payload<Msg>) {}
        }
        let mut sim: Simulation<Msg, Box<dyn SimNode<Msg>>> = Simulation::new(3, fixed(5));
        let r1 = sim.add_node(Box::new(Recorder::default()) as Box<dyn SimNode<Msg>>);
        let r2 = sim.add_node(Box::new(Recorder::default()));
        let _b = sim.add_node(Box::new(Broadcaster));
        sim.run_until_idle(SimTime::from_secs(1));
        // Downcast-free check via metrics instead: 2 messages sent.
        assert_eq!(sim.metrics().count("net.messages"), 2);
        let _ = (r1, r2);
    }

    #[test]
    fn broadcast_shares_one_payload_allocation() {
        struct Relay {
            seen: bool,
        }
        impl SimNode<Msg> for Relay {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: NodeId, msg: Payload<Msg>) {
                if !self.seen {
                    self.seen = true;
                    // Relaying the received payload re-shares the
                    // original allocation instead of deep-cloning.
                    ctx.broadcast(msg);
                }
            }
        }
        let mut sim: Simulation<Msg, Relay> = Simulation::new(12, fixed(5));
        for _ in 0..4 {
            sim.add_node(Relay { seen: false });
        }
        let payload = Payload::new(Msg::Ping(1));
        sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(1),
            Rc::clone(&payload),
        );
        sim.run_until_idle(SimTime::from_secs(1));
        // Every node relayed once (3 peers each); all deliveries shared
        // the single original allocation.
        assert_eq!(sim.metrics().count("net.messages"), 12);
        assert!(sim.nodes().iter().all(|n| n.seen));
        // Only our local handle remains once the queue drains.
        assert_eq!(Rc::strong_count(&payload), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(4, fixed(1));
        let a = sim.add_node(Recorder::default());
        sim.set_timer_for(a, SimTime::from_millis(30), 3);
        sim.set_timer_for(a, SimTime::from_millis(10), 1);
        sim.set_timer_for(a, SimTime::from_millis(20), 2);
        sim.run_until_idle(SimTime::from_secs(1));
        let ids: Vec<u64> = sim.node(a).timers.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut sim = Simulation::new(5, fixed(1));
        let a = sim.add_node(Recorder::default());
        for id in 0..10 {
            sim.set_timer_for(a, SimTime::from_millis(5), id);
        }
        sim.run_until_idle(SimTime::from_secs(1));
        let ids: Vec<u64> = sim.node(a).timers.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new(6, fixed(1));
        let a = sim.add_node(Recorder::default());
        sim.set_timer_for(a, SimTime::from_millis(10), 1);
        sim.set_timer_for(a, SimTime::from_millis(100), 2);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.node(a).timers.len(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(50));
        assert_eq!(sim.pending_events(), 1);
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(sim.node(a).timers.len(), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<(u64, SimTime)> {
            let mut sim = Simulation::new(
                seed,
                LatencyModel::Uniform {
                    min: SimTime::from_millis(1),
                    max: SimTime::from_millis(50),
                },
            );
            let a = sim.add_node(Recorder::default());
            let b = sim.add_node(Recorder {
                reply: true,
                ..Default::default()
            });
            for i in 0..20 {
                sim.send_external(a, b, Msg::Ping(i));
            }
            sim.run_until_idle(SimTime::from_secs(10));
            sim.node(b)
                .received
                .iter()
                .map(|(_, m, t)| {
                    let Msg::Ping(n) = m else { panic!() };
                    (u64::from(*n), *t)
                })
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn partition_blocks_delivery_until_heal() {
        let mut sim = Simulation::new(7, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.network_mut().partition(2, &[&[a], &[b]]);
        sim.send_external(a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(sim.node(b).received.is_empty());
        sim.network_mut().heal();
        sim.send_external(a, b, Msg::Ping(2));
        sim.run_until_idle(SimTime::from_secs(2));
        assert_eq!(sim.node(b).received.len(), 1);
    }

    #[test]
    fn deliver_at_bypasses_network_faults() {
        let mut sim = Simulation::new(8, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.network_mut().set_drop_probability(1.0);
        sim.deliver_at(SimTime::from_millis(5), a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.node(b).received.len(), 1);
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let mut sim = Simulation::new(9, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.network_mut().set_drop_probability(1.0);
        for i in 0..10 {
            sim.send_external(a, b, Msg::Ping(i));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(sim.node(b).received.is_empty());
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut sim: Simulation<Msg, Recorder> = Simulation::new(10, fixed(1));
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn deliver_at_rejects_past() {
        let mut sim = Simulation::new(11, fixed(1));
        let a = sim.add_node(Recorder::default());
        sim.set_timer_for(a, SimTime::from_millis(100), 1);
        sim.run_until(SimTime::from_millis(200));
        sim.deliver_at(SimTime::from_millis(50), a, a, Msg::Ping(0));
    }

    #[test]
    fn recording_tracer_observes_schedule_dispatch_and_drop() {
        let tracer = RecordingTracer::new();
        let log = tracer.log();
        let mut sim = Simulation::new(13, fixed(10));
        sim.set_tracer(tracer);
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.send_external(a, b, Msg::Ping(1));
        sim.set_timer_for(b, SimTime::from_millis(3), 77);
        sim.network_mut().set_drop_probability(1.0);
        sim.send_external(a, b, Msg::Ping(2));
        sim.run_until_idle(SimTime::from_secs(1));

        let events = log.snapshot();
        let schedules = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Schedule { .. }))
            .count();
        let dispatches: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Dispatch { at, seq, kind } => Some((*at, *seq, *kind)),
                _ => None,
            })
            .collect();
        let drops = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dropped { .. }))
            .count();
        // One delivery and one timer were scheduled and dispatched;
        // the second send was dropped by the lossy network. Each of
        // the two send attempts also emitted a Sent event.
        let sent: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sent { deliveries, .. } => Some(*deliveries),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![1, 0]);
        assert_eq!(schedules, 2);
        assert_eq!(drops, 1);
        assert_eq!(
            dispatches,
            vec![
                (
                    SimTime::from_millis(3),
                    1,
                    EventKind::Timer { node: b, id: 77 }
                ),
                (
                    SimTime::from_millis(10),
                    0,
                    EventKind::Deliver { from: a, to: b }
                ),
            ]
        );
        // The captured log renders to parseable JSON.
        let text = log.to_json().to_string();
        let parsed = dlt_testkit::json::parse(&text).expect("trace log parses");
        assert_eq!(parsed.get("n").and_then(|v| v.as_f64()), Some(7.0));
    }

    #[test]
    fn interceptor_partition_heals_after_window() {
        use crate::fault::FaultInterceptor;
        let mut sim = Simulation::new(21, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.set_interceptor(
            FaultInterceptor::new(1)
                .partition(2, &[&[a], &[b]])
                .during(SimTime::ZERO, SimTime::from_secs(1)),
        );
        sim.send_external(a, b, Msg::Ping(1));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.node(b).received.is_empty());
        sim.send_external(a, b, Msg::Ping(2));
        sim.run_until_idle(SimTime::from_secs(2));
        assert_eq!(sim.node(b).received.len(), 1);
        assert_eq!(sim.node(b).received[0].1, Msg::Ping(2));
    }

    #[test]
    fn interceptor_drop_still_counts_as_dropped() {
        use crate::fault::FaultInterceptor;
        let tracer = RecordingTracer::new();
        let log = tracer.log();
        let mut sim = Simulation::new(22, fixed(10));
        sim.set_tracer(tracer);
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.set_interceptor(FaultInterceptor::new(2).drop_messages(1.0));
        sim.send_external(a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(sim.node(b).received.is_empty());
        let events = log.snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Dropped { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Sent { deliveries: 0, .. })));
    }

    #[test]
    fn recorded_run_replays_identically() {
        use crate::fault::{FaultInterceptor, ReplayInterceptor, ReplayScript};

        fn build(seed: u64) -> Simulation<Msg, Recorder> {
            let mut sim = Simulation::new(
                seed,
                LatencyModel::Uniform {
                    min: SimTime::from_millis(1),
                    max: SimTime::from_millis(40),
                },
            );
            sim.add_node(Recorder::default());
            sim.add_node(Recorder {
                reply: true,
                ..Default::default()
            });
            sim
        }
        fn drive(sim: &mut Simulation<Msg, Recorder>) {
            let (a, b) = (NodeId(0), NodeId(1));
            for i in 0..20 {
                sim.send_external(a, b, Msg::Ping(i));
            }
            sim.run_until_idle(SimTime::from_secs(10));
        }
        fn outcome(sim: &Simulation<Msg, Recorder>) -> Vec<(NodeId, Msg, SimTime)> {
            let mut all = sim.node(NodeId(0)).received.clone();
            all.extend(sim.node(NodeId(1)).received.iter().cloned());
            all
        }

        // Record a faulty run.
        let tracer = RecordingTracer::new();
        let log = tracer.log();
        let mut recording = build(77);
        recording.set_tracer(tracer);
        recording.set_interceptor(
            FaultInterceptor::new(5)
                .drop_messages(0.2)
                .reorder(0.5, SimTime::from_millis(30)),
        );
        drive(&mut recording);

        // Replay it twice from the captured script: same seed, same
        // workload, ReplayInterceptor instead of the fault stack.
        let script = ReplayScript::from_log(&log);
        let mut outcomes = Vec::new();
        for _ in 0..2 {
            let replay = ReplayInterceptor::new(script.clone());
            let cursor = replay.cursor();
            let mut sim = build(77);
            sim.set_interceptor(replay);
            drive(&mut sim);
            assert_eq!(cursor.consumed(), script.len(), "script fully consumed");
            outcomes.push(outcome(&sim));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcome(&recording));
    }

    dlt_testkit::prop! {
        fn dispatch_order_matches_sorted_reference(g, cases = 64) {
            // A unified log node: every dispatched event lands in one
            // list, in dispatch order.
            #[derive(Default)]
            struct OrderLog {
                fired: Vec<(u64, SimTime)>,
            }
            impl SimNode<u64> for OrderLog {
                fn on_message(
                    &mut self,
                    ctx: &mut Context<'_, u64>,
                    _from: NodeId,
                    msg: Payload<u64>,
                ) {
                    self.fired.push((*msg, ctx.now()));
                }
                fn on_timer(&mut self, ctx: &mut Context<'_, u64>, timer: u64) {
                    self.fired.push((timer, ctx.now()));
                }
            }

            // Random schedule with heavy same-tick ties, mixing
            // deliveries and timers. Event i carries id i.
            let n = g.usize_in(1, 40);
            let mut sim: Simulation<u64, OrderLog> =
                Simulation::new(1, LatencyModel::Fixed(SimTime::ZERO));
            let a = sim.add_node(OrderLog::default());
            let mut schedule: Vec<(u64, u64)> = Vec::new();
            for i in 0..n as u64 {
                let at_ms = g.u64_below(8);
                if g.any_bool() {
                    sim.deliver_at(SimTime::from_millis(at_ms), a, a, i);
                } else {
                    sim.set_timer_for(a, SimTime::from_millis(at_ms), i);
                }
                schedule.push((at_ms, i));
            }
            sim.run_until_idle(SimTime::from_secs(1));

            // Naive reference model: stable sort by (time, seq), where
            // seq is the order the events were scheduled in.
            let mut reference = schedule.clone();
            reference.sort_by_key(|&(at_ms, seq)| (at_ms, seq));
            let fired: Vec<(u64, u64)> = sim
                .node(a)
                .fired
                .iter()
                .map(|&(id, at)| (at.as_millis(), id))
                .collect();
            assert_eq!(fired, reference, "dispatch order diverged from (time, seq)");
        }
    }
}
