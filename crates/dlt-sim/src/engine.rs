//! The discrete-event loop.
//!
//! A [`Simulation`] owns a set of nodes implementing [`SimNode`] and a
//! time-ordered event queue. Nodes react to message deliveries and
//! timers through a [`Context`], which lets them send messages (subject
//! to the [`Network`] latency and fault
//! model), broadcast to their peers, set timers, and record metrics.
//!
//! Execution is deterministic: events are ordered by `(time, sequence
//! number)`, and all randomness comes from the simulation's seeded RNG.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::network::{Network, NodeId};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Behaviour of one simulated node.
///
/// `M` is the message type of the whole simulation (typically an enum
/// of the protocol's message kinds).
pub trait SimNode<M> {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: u64) {}
}

impl<M, T: SimNode<M> + ?Sized> SimNode<M> for Box<T> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        (**self).on_start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        (**self).on_message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: u64) {
        (**self).on_timer(ctx, timer)
    }
}

/// What the engine schedules.
#[derive(Debug)]
enum Event<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: u64 },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Engine state shared between the simulation and node contexts.
struct Core<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    network: Network,
    rng: SimRng,
    metrics: Metrics,
    node_count: usize,
}

impl<M> Core<M> {
    fn schedule(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    fn send_from(&mut self, from: NodeId, to: NodeId, msg: M)
    where
        M: Clone,
    {
        for delay in self.network.deliveries(from, to, &mut self.rng) {
            self.metrics.inc("net.messages");
            self.schedule(
                self.now.saturating_add(delay),
                Event::Deliver {
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }
}

/// The API a node sees while handling an event.
pub struct Context<'a, M> {
    core: &'a mut Core<M>,
    node: NodeId,
}

impl<'a, M: Clone> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The handled node's own id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.core.node_count
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// The shared metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// Sends `msg` to `to`, subject to the network's latency/faults.
    /// Messages to unreachable nodes (partitioned, not a peer, self)
    /// are silently dropped, as on a real network.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let from = self.node;
        self.core.send_from(from, to, msg);
    }

    /// Sends `msg` to every current peer (full mesh unless an explicit
    /// topology was installed). Each copy samples its own latency, so
    /// different peers hear about it at different times — the root cause
    /// of the soft forks in paper §IV-A.
    pub fn broadcast(&mut self, msg: M) {
        let from = self.node;
        let peers = self.core.network.peers_of(from, self.core.node_count);
        for to in peers {
            self.core.send_from(from, to, msg.clone());
        }
    }

    /// Schedules this node's [`SimNode::on_timer`] to fire after
    /// `delay` with the given id.
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        let node = self.node;
        let at = self.core.now.saturating_add(delay);
        self.core.schedule(at, Event::Timer { node, id });
    }
}

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// For heterogeneous node sets use `N = Box<dyn SimNode<M>>`.
pub struct Simulation<M, N> {
    nodes: Vec<N>,
    core: Core<M>,
}

impl<M: Clone, N: SimNode<M>> Simulation<M, N> {
    /// Creates a simulation with a fault-free full-mesh network using
    /// the given latency model.
    pub fn new(seed: u64, latency: LatencyModel) -> Self {
        Self::with_network(seed, Network::new(latency))
    }

    /// Creates a simulation over a fully configured network.
    pub fn with_network(seed: u64, network: Network) -> Self {
        Simulation {
            nodes: Vec::new(),
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                network,
                rng: SimRng::new(seed),
                metrics: Metrics::new(),
                node_count: 0,
            },
        }
    }

    /// Adds a node and invokes its [`SimNode::on_start`]. Returns the
    /// node's id.
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.core.node_count = self.nodes.len();
        let mut ctx = Context {
            core: &mut self.core,
            node: id,
        };
        self.nodes[id.0].on_start(&mut ctx);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (e.g. to inspect final state).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The network, for reconfiguration mid-run (partitions, latency).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.core.network
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Mutable metrics access (e.g. for harness-level counters).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// The simulation RNG (e.g. for workload generation).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }

    /// Injects a message from `from` to `to` as if `from` had sent it
    /// now (samples network latency and faults).
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: M) {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len());
        self.core.send_from(from, to, msg);
    }

    /// Delivers a message directly at an absolute time, bypassing the
    /// network model — used by workload generators that model clients
    /// outside the peer-to-peer fabric.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or `at` is in the past.
    pub fn deliver_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(to.0 < self.nodes.len(), "unknown destination node");
        assert!(at >= self.core.now, "cannot schedule in the past");
        self.core.schedule(at, Event::Deliver { from, to, msg });
    }

    /// Schedules a timer on a node from outside the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_timer_for(&mut self, node: NodeId, delay: SimTime, id: u64) {
        assert!(node.0 < self.nodes.len(), "unknown node");
        let at = self.core.now.saturating_add(delay);
        self.core.schedule(at, Event::Timer { node, id });
    }

    /// Processes the next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.core.now, "time went backwards");
        self.core.now = scheduled.at;
        match scheduled.event {
            Event::Deliver { from, to, msg } => {
                let mut ctx = Context {
                    core: &mut self.core,
                    node: to,
                };
                self.nodes[to.0].on_message(&mut ctx, from, msg);
            }
            Event::Timer { node, id } => {
                let mut ctx = Context {
                    core: &mut self.core,
                    node,
                };
                self.nodes[node.0].on_timer(&mut ctx, id);
            }
        }
        true
    }

    /// Runs all events scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.core.queue.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
        }
        self.core.now = deadline;
    }

    /// Runs until the event queue drains or the next event would exceed
    /// `limit`. The clock stays at the last processed event (it does
    /// not jump to `limit`).
    pub fn run_until_idle(&mut self, limit: SimTime) {
        while let Some(next) = self.core.queue.peek() {
            if next.at > limit {
                break;
            }
            self.step();
        }
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Recorder {
        received: Vec<(NodeId, Msg, SimTime)>,
        timers: Vec<(u64, SimTime)>,
        reply: bool,
    }

    impl SimNode<Msg> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            self.received.push((from, msg.clone(), ctx.now()));
            if self.reply {
                if let Msg::Ping(n) = msg {
                    ctx.send(from, Msg::Pong(n));
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, timer: u64) {
            self.timers.push((timer, ctx.now()));
        }
    }

    fn fixed(ms: u64) -> LatencyModel {
        LatencyModel::Fixed(SimTime::from_millis(ms))
    }

    #[test]
    fn message_arrives_after_latency() {
        let mut sim = Simulation::new(1, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.send_external(a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        let received = &sim.node(b).received;
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].0, a);
        assert_eq!(received[0].1, Msg::Ping(1));
        assert_eq!(received[0].2, SimTime::from_millis(10));
    }

    #[test]
    fn reply_round_trip() {
        let mut sim = Simulation::new(2, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder {
            reply: true,
            ..Default::default()
        });
        sim.send_external(a, b, Msg::Ping(7));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.node(a).received.len(), 1);
        assert_eq!(sim.node(a).received[0].1, Msg::Pong(7));
        assert_eq!(sim.node(a).received[0].2, SimTime::from_millis(20));
        assert_eq!(sim.now(), SimTime::from_millis(20));
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        struct Broadcaster;
        impl SimNode<Msg> for Broadcaster {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.broadcast(Msg::Ping(0));
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        }
        let mut sim: Simulation<Msg, Box<dyn SimNode<Msg>>> = Simulation::new(3, fixed(5));
        let r1 = sim.add_node(Box::new(Recorder::default()) as Box<dyn SimNode<Msg>>);
        let r2 = sim.add_node(Box::new(Recorder::default()));
        let _b = sim.add_node(Box::new(Broadcaster));
        sim.run_until_idle(SimTime::from_secs(1));
        // Downcast-free check via metrics instead: 2 messages sent.
        assert_eq!(sim.metrics().count("net.messages"), 2);
        let _ = (r1, r2);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(4, fixed(1));
        let a = sim.add_node(Recorder::default());
        sim.set_timer_for(a, SimTime::from_millis(30), 3);
        sim.set_timer_for(a, SimTime::from_millis(10), 1);
        sim.set_timer_for(a, SimTime::from_millis(20), 2);
        sim.run_until_idle(SimTime::from_secs(1));
        let ids: Vec<u64> = sim.node(a).timers.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut sim = Simulation::new(5, fixed(1));
        let a = sim.add_node(Recorder::default());
        for id in 0..10 {
            sim.set_timer_for(a, SimTime::from_millis(5), id);
        }
        sim.run_until_idle(SimTime::from_secs(1));
        let ids: Vec<u64> = sim.node(a).timers.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new(6, fixed(1));
        let a = sim.add_node(Recorder::default());
        sim.set_timer_for(a, SimTime::from_millis(10), 1);
        sim.set_timer_for(a, SimTime::from_millis(100), 2);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.node(a).timers.len(), 1);
        assert_eq!(sim.now(), SimTime::from_millis(50));
        assert_eq!(sim.pending_events(), 1);
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(sim.node(a).timers.len(), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<(u64, SimTime)> {
            let mut sim = Simulation::new(
                seed,
                LatencyModel::Uniform {
                    min: SimTime::from_millis(1),
                    max: SimTime::from_millis(50),
                },
            );
            let a = sim.add_node(Recorder::default());
            let b = sim.add_node(Recorder {
                reply: true,
                ..Default::default()
            });
            for i in 0..20 {
                sim.send_external(a, b, Msg::Ping(i));
            }
            sim.run_until_idle(SimTime::from_secs(10));
            sim.node(b)
                .received
                .iter()
                .map(|(_, m, t)| {
                    let Msg::Ping(n) = m else { panic!() };
                    (u64::from(*n), *t)
                })
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn partition_blocks_delivery_until_heal() {
        let mut sim = Simulation::new(7, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.network_mut().partition(2, &[&[a], &[b]]);
        sim.send_external(a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(sim.node(b).received.is_empty());
        sim.network_mut().heal();
        sim.send_external(a, b, Msg::Ping(2));
        sim.run_until_idle(SimTime::from_secs(2));
        assert_eq!(sim.node(b).received.len(), 1);
    }

    #[test]
    fn deliver_at_bypasses_network_faults() {
        let mut sim = Simulation::new(8, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.network_mut().set_drop_probability(1.0);
        sim.deliver_at(SimTime::from_millis(5), a, b, Msg::Ping(1));
        sim.run_until_idle(SimTime::from_secs(1));
        assert_eq!(sim.node(b).received.len(), 1);
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let mut sim = Simulation::new(9, fixed(10));
        let a = sim.add_node(Recorder::default());
        let b = sim.add_node(Recorder::default());
        sim.network_mut().set_drop_probability(1.0);
        for i in 0..10 {
            sim.send_external(a, b, Msg::Ping(i));
        }
        sim.run_until_idle(SimTime::from_secs(1));
        assert!(sim.node(b).received.is_empty());
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut sim: Simulation<Msg, Recorder> = Simulation::new(10, fixed(1));
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn deliver_at_rejects_past() {
        let mut sim = Simulation::new(11, fixed(1));
        let a = sim.add_node(Recorder::default());
        sim.set_timer_for(a, SimTime::from_millis(100), 1);
        sim.run_until(SimTime::from_millis(200));
        sim.deliver_at(SimTime::from_millis(50), a, a, Msg::Ping(0));
    }
}
