//! Counters and sample series for experiment output.
//!
//! Every experiment boils down to counting events (blocks mined, forks
//! observed, transactions confirmed) and summarising sample series
//! (confirmation latency, block interval). [`Metrics`] collects both.
//!
//! Hot paths register a metric once (interning its name into a
//! [`CounterId`] or [`SeriesId`]) and then update it through the
//! handle, which is a plain array index — no string hashing or
//! allocation per update. A name→id map is kept only for registration
//! and rendering; string-keyed reads (and the `*_named` write
//! wrappers) remain for cold paths such as report tables.
//!
//! Each series also maintains a streaming log-linear histogram, so
//! [`Metrics::percentile`] locates the bucket containing the requested
//! rank from cumulative bucket counts and only sorts the samples of
//! that one bucket — exact nearest-rank quantiles without re-sorting
//! the full series per query.
//!
//! NaN samples are never stored: [`Metrics::record`] segregates them
//! into a per-series drop counter (see [`Metrics::nan_dropped`]), so
//! one bad sample can no longer panic a whole experiment inside
//! `percentile()`.

use std::collections::BTreeMap;
use std::fmt;

/// Handle to a registered counter. Obtained once from
/// [`Metrics::counter`]; updates through it are array indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Handle to a registered sample series. Obtained once from
/// [`Metrics::series`]; updates through it are array indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(u32);

/// One sample series: raw samples plus a streaming histogram and the
/// count of NaN samples that were rejected.
#[derive(Debug, Clone, Default)]
struct Series {
    samples: Vec<f64>,
    hist: Histogram,
    nan_dropped: u64,
}

/// A streaming log-linear histogram over f64 samples.
///
/// The bucket key is the top 16 bits (sign + exponent + 4 mantissa
/// bits) of the order-preserving bit transform of the sample, so
/// bucket keys sort in the same order as the values they hold. The
/// map stays tiny (a few dozen occupied buckets for typical series)
/// while letting quantile queries skip straight to the bucket that
/// contains a given rank.
#[derive(Debug, Clone, Default)]
struct Histogram {
    buckets: BTreeMap<u16, u64>,
}

impl Histogram {
    /// The order-preserving bucket key for a (non-NaN) sample.
    fn bucket_of(value: f64) -> u16 {
        let bits = value.to_bits();
        // Flip negative values entirely, set the sign bit on positive
        // ones: the resulting u64 orders exactly like the f64.
        let key = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        };
        (key >> 48) as u16
    }

    fn record(&mut self, value: f64) {
        *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += 1;
    }

    /// The bucket holding the zero-based `rank`-th smallest sample,
    /// plus how many samples fall in strictly smaller buckets.
    fn locate(&self, rank: u64) -> Option<(u16, u64)> {
        let mut below = 0u64;
        for (&bucket, &count) in &self.buckets {
            if below + count > rank {
                return Some((bucket, below));
            }
            below += count;
        }
        None
    }

    fn merge(&mut self, other: &Histogram) {
        for (&bucket, &count) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += count;
        }
    }
}

/// A named collection of counters and sample series.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counter_ids: BTreeMap<String, CounterId>,
    counters: Vec<u64>,
    series_ids: BTreeMap<String, SeriesId>,
    series: Vec<Series>,
}

impl Metrics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Registers (or looks up) a counter by name, returning its
    /// handle. Idempotent: the same name always yields the same id.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.counter_ids.get(name) {
            return id;
        }
        let id = CounterId(self.counters.len() as u32);
        self.counters.push(0);
        self.counter_ids.insert(name.to_string(), id);
        id
    }

    /// Registers (or looks up) a sample series by name, returning its
    /// handle. Idempotent: the same name always yields the same id.
    pub fn series(&mut self, name: &str) -> SeriesId {
        if let Some(&id) = self.series_ids.get(name) {
            return id;
        }
        let id = SeriesId(self.series.len() as u32);
        self.series.push(Series::default());
        self.series_ids.insert(name.to_string(), id);
        id
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize] += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Reads a counter through its handle.
    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Appends a sample to a series. NaN samples are not stored; they
    /// bump the series' NaN-drop counter instead (see
    /// [`Metrics::nan_dropped`]).
    #[inline]
    pub fn record(&mut self, id: SeriesId, value: f64) {
        let series = &mut self.series[id.0 as usize];
        if value.is_nan() {
            series.nan_dropped += 1;
            return;
        }
        series.samples.push(value);
        series.hist.record(value);
    }

    /// Increments the named counter by one (cold-path convenience;
    /// interns the name on first use).
    pub fn inc_named(&mut self, name: &str) {
        let id = self.counter(name);
        self.inc(id);
    }

    /// Adds `n` to the named counter (cold-path convenience).
    pub fn add_named(&mut self, name: &str, n: u64) {
        let id = self.counter(name);
        self.add(id, n);
    }

    /// Appends a sample to the named series (cold-path convenience).
    pub fn record_named(&mut self, name: &str, value: f64) {
        let id = self.series(name);
        self.record(id, value);
    }

    /// Reads a counter by name (zero when never registered).
    pub fn count(&self, name: &str) -> u64 {
        self.counter_ids
            .get(name)
            .map(|id| self.counters[id.0 as usize])
            .unwrap_or(0)
    }

    fn series_by_name(&self, name: &str) -> Option<&Series> {
        self.series_ids
            .get(name)
            .map(|id| &self.series[id.0 as usize])
    }

    /// The raw samples of a series (empty when never recorded).
    pub fn samples(&self, name: &str) -> &[f64] {
        self.series_by_name(name)
            .map(|s| s.samples.as_slice())
            .unwrap_or(&[])
    }

    /// Number of samples in a series.
    pub fn len(&self, name: &str) -> usize {
        self.samples(name).len()
    }

    /// How many NaN samples were rejected from the named series.
    pub fn nan_dropped(&self, name: &str) -> u64 {
        self.series_by_name(name)
            .map(|s| s.nan_dropped)
            .unwrap_or(0)
    }

    /// Whether nothing at all has been recorded. Registration alone
    /// does not count: a collection with interned-but-untouched ids is
    /// still empty.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&v| v == 0)
            && self
                .series
                .iter()
                .all(|s| s.samples.is_empty() && s.nan_dropped == 0)
    }

    /// Mean of a series, or `None` if empty.
    pub fn mean(&self, name: &str) -> Option<f64> {
        let samples = self.samples(name);
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }

    /// Population standard deviation of a series, or `None` if empty.
    pub fn std_dev(&self, name: &str) -> Option<f64> {
        let samples = self.samples(name);
        let mean = self.mean(name)?;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        Some(var.sqrt())
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of a series by nearest-rank, or
    /// `None` if the series is empty.
    ///
    /// Exact, but does not re-sort the full series: the streaming
    /// histogram locates the bucket containing the requested rank and
    /// only that bucket's samples are sorted. NaN samples were already
    /// segregated at record time and cannot appear here.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, name: &str, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let series = self.series_by_name(name)?;
        let n = series.samples.len();
        if n == 0 {
            return None;
        }
        let rank = ((n as f64 - 1.0) * q).round() as u64;
        let (bucket, below) = series
            .hist
            .locate(rank)
            .expect("rank is within the histogram's total count");
        let mut in_bucket: Vec<f64> = series
            .samples
            .iter()
            .copied()
            .filter(|&v| Histogram::bucket_of(v) == bucket)
            .collect();
        in_bucket.sort_by(f64::total_cmp);
        Some(in_bucket[(rank - below) as usize])
    }

    /// Minimum of a series.
    pub fn min(&self, name: &str) -> Option<f64> {
        self.samples(name).iter().copied().reduce(f64::min)
    }

    /// Maximum of a series.
    pub fn max(&self, name: &str) -> Option<f64> {
        self.samples(name).iter().copied().reduce(f64::max)
    }

    /// Sum of a series.
    pub fn sum(&self, name: &str) -> f64 {
        self.samples(name).iter().sum()
    }

    /// Merges another collection into this one (series are
    /// concatenated, counters added). Useful when aggregating per-node
    /// metrics. Ids interned here stay valid; names only present in
    /// `other` are interned on the fly.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, &id) in &other.counter_ids {
            let value = other.counters[id.0 as usize];
            let mine = self.counter(name);
            self.add(mine, value);
        }
        for (name, &id) in &other.series_ids {
            let theirs = &other.series[id.0 as usize];
            let mine = self.series(name);
            let s = &mut self.series[mine.0 as usize];
            s.samples.extend_from_slice(&theirs.samples);
            s.hist.merge(&theirs.hist);
            s.nan_dropped += theirs.nan_dropped;
        }
    }

    /// All counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counter_ids.keys().map(String::as_str)
    }

    /// All series names in sorted order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series_ids.keys().map(String::as_str)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, id) in &self.counter_ids {
            let value = self.counters[id.0 as usize];
            if value > 0 {
                writeln!(f, "{name}: {value}")?;
            }
        }
        for (name, id) in &self.series_ids {
            let series = &self.series[id.0 as usize];
            if series.samples.is_empty() && series.nan_dropped == 0 {
                continue;
            }
            let mean = self.mean(name).unwrap_or(0.0);
            let p50 = self.percentile(name, 0.5).unwrap_or(0.0);
            let p99 = self.percentile(name, 0.99).unwrap_or(0.0);
            write!(
                f,
                "{name}: n={} mean={mean:.3} p50={p50:.3} p99={p99:.3}",
                self.len(name)
            )?;
            if series.nan_dropped > 0 {
                write!(f, " nan_dropped={}", series.nan_dropped)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.count("blocks"), 0);
        m.inc_named("blocks");
        m.inc_named("blocks");
        m.add_named("blocks", 3);
        assert_eq!(m.count("blocks"), 5);
    }

    #[test]
    fn typed_handles_index_the_same_storage_as_names() {
        let mut m = Metrics::new();
        let blocks = m.counter("blocks");
        let lat = m.series("lat");
        m.inc(blocks);
        m.add(blocks, 2);
        m.inc_named("blocks");
        m.record(lat, 1.5);
        m.record_named("lat", 2.5);
        assert_eq!(m.count("blocks"), 4);
        assert_eq!(m.counter_value(blocks), 4);
        assert_eq!(m.samples("lat"), &[1.5, 2.5]);
        // Registration is idempotent: same name, same id.
        assert_eq!(m.counter("blocks"), blocks);
        assert_eq!(m.series("lat"), lat);
    }

    #[test]
    fn series_statistics() {
        let mut m = Metrics::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.record_named("latency", v);
        }
        assert_eq!(m.len("latency"), 5);
        assert_eq!(m.mean("latency"), Some(3.0));
        assert_eq!(m.min("latency"), Some(1.0));
        assert_eq!(m.max("latency"), Some(5.0));
        assert_eq!(m.sum("latency"), 15.0);
        assert_eq!(m.percentile("latency", 0.5), Some(3.0));
        assert_eq!(m.percentile("latency", 0.0), Some(1.0));
        assert_eq!(m.percentile("latency", 1.0), Some(5.0));
        let sd = m.std_dev("latency").unwrap();
        assert!((sd - std::f64::consts::SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn empty_series_yield_none() {
        let m = Metrics::new();
        assert_eq!(m.mean("nothing"), None);
        assert_eq!(m.percentile("nothing", 0.5), None);
        assert_eq!(m.min("nothing"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn registration_alone_keeps_collection_empty() {
        let mut m = Metrics::new();
        m.counter("pre.registered");
        m.series("pre.registered.series");
        assert!(m.is_empty());
        m.inc_named("pre.registered");
        assert!(!m.is_empty());
    }

    #[test]
    fn percentile_unsorted_input() {
        let mut m = Metrics::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            m.record_named("x", v);
        }
        assert_eq!(m.percentile("x", 0.5), Some(5.0));
    }

    #[test]
    fn percentile_matches_full_sort_on_mixed_magnitudes() {
        // Values spread across buckets, signs, and magnitudes; the
        // histogram-guided quantile must agree with a full sort at
        // every nearest-rank position.
        let values = [
            -1e9, -3.25, -3.24, -0.5, 0.0, 1e-12, 0.5, 1.0, 1.0, 2.0, 7.75, 7.76, 1e6, 1e6, 3e18,
        ];
        let mut m = Metrics::new();
        for v in values {
            m.record_named("x", v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        for (rank, expected) in sorted.iter().enumerate() {
            let q = rank as f64 / (sorted.len() - 1) as f64;
            // Only check ranks that round back to themselves, i.e.
            // exact nearest-rank positions.
            if ((sorted.len() as f64 - 1.0) * q).round() as usize == rank {
                assert_eq!(m.percentile("x", q), Some(*expected), "rank {rank}");
            }
        }
    }

    #[test]
    fn nan_samples_are_segregated_not_stored() {
        let mut m = Metrics::new();
        m.record_named("x", 1.0);
        m.record_named("x", f64::NAN);
        m.record_named("x", 3.0);
        m.record_named("x", f64::NAN);
        assert_eq!(m.len("x"), 2);
        assert_eq!(m.nan_dropped("x"), 2);
        // percentile no longer panics in the presence of bad samples.
        assert_eq!(m.percentile("x", 0.5), Some(3.0));
        assert_eq!(m.mean("x"), Some(2.0));
        assert!(m.to_string().contains("nan_dropped=2"));
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.inc_named("n");
        a.record_named("s", 1.0);
        let mut b = Metrics::new();
        b.add_named("n", 4);
        b.record_named("s", 3.0);
        b.record_named("s", f64::NAN);
        a.merge(&b);
        assert_eq!(a.count("n"), 5);
        assert_eq!(a.len("s"), 2);
        assert_eq!(a.mean("s"), Some(2.0));
        assert_eq!(a.percentile("s", 1.0), Some(3.0));
        assert_eq!(a.nan_dropped("s"), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Metrics::new();
        m.inc_named("events");
        m.record_named("lat", 2.5);
        let text = m.to_string();
        assert!(text.contains("events: 1"));
        assert!(text.contains("lat:"));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_validates_q() {
        let mut m = Metrics::new();
        m.record_named("x", 1.0);
        let _ = m.percentile("x", 1.5);
    }
}
