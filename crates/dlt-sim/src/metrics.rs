//! Counters and sample series for experiment output.
//!
//! Every experiment boils down to counting events (blocks mined, forks
//! observed, transactions confirmed) and summarising sample series
//! (confirmation latency, block interval). [`Metrics`] collects both,
//! keyed by name, and renders summary statistics.

use std::collections::BTreeMap;
use std::fmt;

/// A named collection of counters and sample series.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl Metrics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter (zero when never touched).
    pub fn count(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends a sample to the named series.
    pub fn record(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    /// The raw samples of a series (empty when never recorded).
    pub fn samples(&self, name: &str) -> &[f64] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of samples in a series.
    pub fn len(&self, name: &str) -> usize {
        self.samples(name).len()
    }

    /// Whether nothing at all has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.series.is_empty()
    }

    /// Mean of a series, or `None` if empty.
    pub fn mean(&self, name: &str) -> Option<f64> {
        let samples = self.samples(name);
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }

    /// Population standard deviation of a series, or `None` if empty.
    pub fn std_dev(&self, name: &str) -> Option<f64> {
        let samples = self.samples(name);
        let mean = self.mean(name)?;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        Some(var.sqrt())
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of a series by nearest-rank, or
    /// `None` if the series is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, name: &str, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let samples = self.samples(name);
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[rank])
    }

    /// Minimum of a series.
    pub fn min(&self, name: &str) -> Option<f64> {
        self.samples(name).iter().copied().reduce(f64::min)
    }

    /// Maximum of a series.
    pub fn max(&self, name: &str) -> Option<f64> {
        self.samples(name).iter().copied().reduce(f64::max)
    }

    /// Sum of a series.
    pub fn sum(&self, name: &str) -> f64 {
        self.samples(name).iter().sum()
    }

    /// Merges another collection into this one (series are
    /// concatenated, counters added). Useful when aggregating per-node
    /// metrics.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, samples) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(samples);
        }
    }

    /// All counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All series names in sorted order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name}: {value}")?;
        }
        for name in self.series.keys() {
            let mean = self.mean(name).unwrap_or(0.0);
            let p50 = self.percentile(name, 0.5).unwrap_or(0.0);
            let p99 = self.percentile(name, 0.99).unwrap_or(0.0);
            writeln!(
                f,
                "{name}: n={} mean={mean:.3} p50={p50:.3} p99={p99:.3}",
                self.len(name)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.count("blocks"), 0);
        m.inc("blocks");
        m.inc("blocks");
        m.add("blocks", 3);
        assert_eq!(m.count("blocks"), 5);
    }

    #[test]
    fn series_statistics() {
        let mut m = Metrics::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.record("latency", v);
        }
        assert_eq!(m.len("latency"), 5);
        assert_eq!(m.mean("latency"), Some(3.0));
        assert_eq!(m.min("latency"), Some(1.0));
        assert_eq!(m.max("latency"), Some(5.0));
        assert_eq!(m.sum("latency"), 15.0);
        assert_eq!(m.percentile("latency", 0.5), Some(3.0));
        assert_eq!(m.percentile("latency", 0.0), Some(1.0));
        assert_eq!(m.percentile("latency", 1.0), Some(5.0));
        let sd = m.std_dev("latency").unwrap();
        assert!((sd - std::f64::consts::SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn empty_series_yield_none() {
        let m = Metrics::new();
        assert_eq!(m.mean("nothing"), None);
        assert_eq!(m.percentile("nothing", 0.5), None);
        assert_eq!(m.min("nothing"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn percentile_unsorted_input() {
        let mut m = Metrics::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            m.record("x", v);
        }
        assert_eq!(m.percentile("x", 0.5), Some(5.0));
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.inc("n");
        a.record("s", 1.0);
        let mut b = Metrics::new();
        b.add("n", 4);
        b.record("s", 3.0);
        a.merge(&b);
        assert_eq!(a.count("n"), 5);
        assert_eq!(a.len("s"), 2);
        assert_eq!(a.mean("s"), Some(2.0));
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Metrics::new();
        m.inc("events");
        m.record("lat", 2.5);
        let text = m.to_string();
        assert!(text.contains("events: 1"));
        assert!(text.contains("lat:"));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_validates_q() {
        let mut m = Metrics::new();
        m.record("x", 1.0);
        let _ = m.percentile("x", 1.5);
    }
}
