//! Event tracing hooks for the discrete-event engine.
//!
//! The engine calls a [`Tracer`] at every send, schedule, dispatch,
//! and network-drop point; protocol code can add its own
//! [`TraceEvent::Mark`] observations through `Context::trace_mark`. The default
//! [`NoopTracer`] reports itself disabled, so the engine skips event
//! construction entirely on the hot path. A [`RecordingTracer`]
//! captures events into a shared buffer for tests and for the
//! `DLT_TRACE` experiment-binary mode, and the buffer renders to
//! deterministic JSON via `dlt_testkit::json`.

use std::cell::RefCell;
use std::rc::Rc;

use dlt_testkit::json::Json;

use crate::network::NodeId;
use crate::time::SimTime;

/// What kind of engine event was scheduled or dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A message delivery.
    Deliver {
        /// The sending node.
        from: NodeId,
        /// The receiving node.
        to: NodeId,
    },
    /// A timer firing.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The protocol-chosen timer id.
        id: u64,
    },
}

/// One observation from the engine or a protocol-level mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node attempted a send. Emitted once per send, after the
    /// network model and any installed
    /// [`Interceptor`](crate::fault::Interceptor) decided its fate,
    /// carrying the final delivery count (`0` = dropped; `2+` =
    /// duplicated). The `deliveries` Schedule events that follow a
    /// `Sent` belong to it — that grouping is what
    /// [`ReplayScript`](crate::fault::ReplayScript) reconstructs.
    Sent {
        /// Simulated time of the send.
        at: SimTime,
        /// The sending node.
        from: NodeId,
        /// The addressed recipient.
        to: NodeId,
        /// How many deliveries were scheduled for this send.
        deliveries: u32,
    },
    /// An event entered the queue.
    Schedule {
        /// Simulated time the event will fire at.
        at: SimTime,
        /// The event's tie-breaking sequence number.
        seq: u64,
        /// What was scheduled.
        kind: EventKind,
    },
    /// An event was popped and handed to a node.
    Dispatch {
        /// Simulated time the event fired at.
        at: SimTime,
        /// The event's tie-breaking sequence number.
        seq: u64,
        /// What was dispatched.
        kind: EventKind,
    },
    /// The network dropped a send (lossy link or partition).
    Dropped {
        /// Simulated time of the attempted send.
        at: SimTime,
        /// The sending node.
        from: NodeId,
        /// The unreachable recipient.
        to: NodeId,
    },
    /// A protocol-level observation (e.g. "block mined at height h").
    Mark {
        /// Simulated time of the observation.
        at: SimTime,
        /// A static label naming the observation.
        label: &'static str,
        /// An observation-specific value.
        value: u64,
    },
}

/// Receives engine trace events. Implementations must be cheap: the
/// engine consults [`Tracer::enabled`] once at installation and skips
/// event construction when it reports `false`.
pub trait Tracer {
    /// Consumes one event.
    fn trace(&mut self, event: TraceEvent);

    /// Whether this tracer wants events at all. Defaults to `true`;
    /// the no-op tracer overrides it so the engine's emit points
    /// reduce to a single branch on a cached flag.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default tracer: discards everything and reports disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn trace(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A shared handle onto a [`RecordingTracer`]'s event buffer. Clones
/// share the same buffer, so callers can keep a handle while the
/// tracer itself is moved into the engine.
#[derive(Debug, Clone, Default)]
pub struct TraceLog(Rc<RefCell<Vec<TraceEvent>>>);

impl TraceLog {
    /// Creates an empty, unshared log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// A copy of the captured events, in capture order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.0.borrow().clone()
    }

    /// Appends one event directly (used by experiment harnesses to
    /// add marks outside any engine).
    pub fn push(&self, event: TraceEvent) {
        self.0.borrow_mut().push(event);
    }

    /// Discards all captured events.
    pub fn clear(&self) {
        self.0.borrow_mut().clear();
    }

    /// Renders the captured events as a deterministic JSON document:
    /// `{"events": [...], "n": count}`.
    pub fn to_json(&self) -> Json {
        let events: Vec<Json> = self.0.borrow().iter().map(event_to_json).collect();
        let mut doc = std::collections::BTreeMap::new();
        doc.insert("n".to_string(), Json::Number(events.len() as f64));
        doc.insert("events".to_string(), Json::Array(events));
        Json::Object(doc)
    }
}

fn kind_to_json(obj: &mut std::collections::BTreeMap<String, Json>, kind: &EventKind) {
    match kind {
        EventKind::Deliver { from, to } => {
            obj.insert("kind".to_string(), Json::String("deliver".to_string()));
            obj.insert("from".to_string(), Json::Number(from.0 as f64));
            obj.insert("to".to_string(), Json::Number(to.0 as f64));
        }
        EventKind::Timer { node, id } => {
            obj.insert("kind".to_string(), Json::String("timer".to_string()));
            obj.insert("node".to_string(), Json::Number(node.0 as f64));
            obj.insert("timer_id".to_string(), Json::Number(*id as f64));
        }
    }
}

fn event_to_json(event: &TraceEvent) -> Json {
    let mut obj = std::collections::BTreeMap::new();
    match event {
        TraceEvent::Sent {
            at,
            from,
            to,
            deliveries,
        } => {
            obj.insert("type".to_string(), Json::String("send".to_string()));
            obj.insert("at_us".to_string(), Json::Number(at.as_micros() as f64));
            obj.insert("from".to_string(), Json::Number(from.0 as f64));
            obj.insert("to".to_string(), Json::Number(to.0 as f64));
            obj.insert("n".to_string(), Json::Number(*deliveries as f64));
        }
        TraceEvent::Schedule { at, seq, kind } => {
            obj.insert("type".to_string(), Json::String("schedule".to_string()));
            obj.insert("at_us".to_string(), Json::Number(at.as_micros() as f64));
            obj.insert("seq".to_string(), Json::Number(*seq as f64));
            kind_to_json(&mut obj, kind);
        }
        TraceEvent::Dispatch { at, seq, kind } => {
            obj.insert("type".to_string(), Json::String("dispatch".to_string()));
            obj.insert("at_us".to_string(), Json::Number(at.as_micros() as f64));
            obj.insert("seq".to_string(), Json::Number(*seq as f64));
            kind_to_json(&mut obj, kind);
        }
        TraceEvent::Dropped { at, from, to } => {
            obj.insert("type".to_string(), Json::String("dropped".to_string()));
            obj.insert("at_us".to_string(), Json::Number(at.as_micros() as f64));
            obj.insert("from".to_string(), Json::Number(from.0 as f64));
            obj.insert("to".to_string(), Json::Number(to.0 as f64));
        }
        TraceEvent::Mark { at, label, value } => {
            obj.insert("type".to_string(), Json::String("mark".to_string()));
            obj.insert("at_us".to_string(), Json::Number(at.as_micros() as f64));
            obj.insert("label".to_string(), Json::String((*label).to_string()));
            obj.insert("value".to_string(), Json::Number(*value as f64));
        }
    }
    Json::Object(obj)
}

/// A tracer that appends every event to a shared [`TraceLog`].
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    log: TraceLog,
}

impl RecordingTracer {
    /// Creates a tracer with a fresh buffer.
    pub fn new() -> Self {
        RecordingTracer::default()
    }

    /// Creates a tracer that appends into an existing shared log.
    pub fn sharing(log: TraceLog) -> Self {
        RecordingTracer { log }
    }

    /// A shared handle onto this tracer's buffer.
    pub fn log(&self) -> TraceLog {
        self.log.clone()
    }
}

impl Tracer for RecordingTracer {
    fn trace(&mut self, event: TraceEvent) {
        self.log.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_tracer_shares_its_buffer() {
        let mut tracer = RecordingTracer::new();
        let log = tracer.log();
        assert!(log.is_empty());
        tracer.trace(TraceEvent::Mark {
            at: SimTime::ZERO,
            label: "x",
            value: 7,
        });
        assert_eq!(log.len(), 1);
        assert_eq!(
            log.snapshot(),
            vec![TraceEvent::Mark {
                at: SimTime::ZERO,
                label: "x",
                value: 7,
            }]
        );
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn noop_tracer_reports_disabled() {
        assert!(!NoopTracer.enabled());
        assert!(RecordingTracer::new().enabled());
    }

    #[test]
    fn trace_log_renders_parseable_json() {
        let log = TraceLog::new();
        log.push(TraceEvent::Schedule {
            at: SimTime::from_millis(5),
            seq: 0,
            kind: EventKind::Deliver {
                from: NodeId(0),
                to: NodeId(1),
            },
        });
        log.push(TraceEvent::Dispatch {
            at: SimTime::from_millis(5),
            seq: 0,
            kind: EventKind::Timer {
                node: NodeId(2),
                id: 9,
            },
        });
        log.push(TraceEvent::Dropped {
            at: SimTime::from_millis(6),
            from: NodeId(0),
            to: NodeId(3),
        });
        let text = log.to_json().to_string();
        let parsed = dlt_testkit::json::parse(&text).expect("trace JSON parses");
        let events = parsed
            .get("events")
            .and_then(|v| v.as_array())
            .expect("events array");
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("type").and_then(|v| v.as_str()),
            Some("schedule")
        );
        assert_eq!(
            events[2].get("type").and_then(|v| v.as_str()),
            Some("dropped")
        );
    }
}
