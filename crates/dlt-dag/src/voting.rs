//! Weighted representative voting (paper §III-B, §IV-B).
//!
//! "Representatives vote in order to resolve conflicts. Their votes are
//! weighted: a representative's weight is calculated as the sum of all
//! balances for accounts that chose this representative. In the case of
//! a conflict, the winning transaction is the one that gained the most
//! votes."
//!
//! An [`Election`] tallies weighted votes over the candidates for one
//! *chain position* — the election root `(account, previous)`. A
//! non-conflicting block is simply an election with one candidate
//! (§IV-B: "representatives vote automatically on blocks they have not
//! seen before"); a fork adds a second candidate. A candidate whose
//! weight reaches the quorum is *confirmed*.

use std::collections::BTreeMap;

use dlt_crypto::keys::Address;
use dlt_crypto::Digest;

/// The contested chain position: an account and the predecessor the
/// candidates build on.
pub type ElectionRoot = (Address, Digest);

/// A broadcast vote: a representative backs one candidate for a root.
///
/// Vote authenticity is modelled at the identity level (the simulation
/// delivers votes unforged); production Nano signs votes with the
/// representative key, which adds nothing to the measured behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// The voting representative.
    pub representative: Address,
    /// The contested position.
    pub root: ElectionRoot,
    /// The backed block hash.
    pub candidate: Digest,
}

impl Vote {
    /// A dedup key for gossip relay.
    pub fn dedup_key(&self) -> Digest {
        use dlt_crypto::sha256::Sha256;
        let mut h = Sha256::new();
        h.update(b"vote-dedup");
        h.update(self.representative.0.as_bytes());
        h.update(self.root.0 .0.as_bytes());
        h.update(self.root.1.as_bytes());
        h.update(self.candidate.as_bytes());
        h.finalize()
    }
}

/// A running tally over the candidates for one root.
#[derive(Debug, Clone, Default)]
pub struct Election {
    /// Accumulated weight per candidate.
    tallies: BTreeMap<Digest, u64>,
    /// Which candidate each representative currently backs.
    voted: BTreeMap<Address, Digest>,
    confirmed: Option<Digest>,
}

impl Election {
    /// Creates an empty election.
    pub fn new() -> Self {
        Election::default()
    }

    /// Registers (or moves) a representative's vote with its current
    /// weight. Re-votes shift the weight between candidates — Nano
    /// representatives may switch to the network's emerging winner.
    /// Returns `true` when the vote changed which candidate leads (a
    /// *vote flip* — the observable instability adverse networks cause).
    pub fn vote(&mut self, representative: Address, weight: u64, candidate: Digest) -> bool {
        let leader_before = self.leader().map(|(hash, _)| hash);
        if let Some(previous) = self.voted.insert(representative, candidate) {
            if previous == candidate {
                // Same candidate: refresh only (weights here are
                // supplied per call; avoid double counting).
                let tally = self.tallies.entry(candidate).or_insert(0);
                *tally = (*tally).max(weight);
            } else {
                if let Some(tally) = self.tallies.get_mut(&previous) {
                    *tally = tally.saturating_sub(weight);
                }
                *self.tallies.entry(candidate).or_insert(0) += weight;
            }
        } else {
            *self.tallies.entry(candidate).or_insert(0) += weight;
        }
        let leader_after = self.leader().map(|(hash, _)| hash);
        leader_before.is_some() && leader_before != leader_after
    }

    /// The leading candidate and its weight.
    pub fn leader(&self) -> Option<(Digest, u64)> {
        self.tallies
            .iter()
            .max_by_key(|(hash, weight)| (**weight, std::cmp::Reverse(**hash)))
            .map(|(hash, weight)| (*hash, *weight))
    }

    /// Total weight cast across all candidates.
    pub fn total_cast(&self) -> u64 {
        self.tallies.values().sum()
    }

    /// Number of distinct candidates (2+ means a live conflict).
    pub fn candidate_count(&self) -> usize {
        self.tallies.len()
    }

    /// The confirmed winner, if the election has concluded.
    pub fn confirmed(&self) -> Option<Digest> {
        self.confirmed
    }

    /// Confirms the leader if it has reached `quorum_weight`. Once
    /// confirmed, the result never changes.
    pub fn try_confirm(&mut self, quorum_weight: u64) -> Option<Digest> {
        if let Some(winner) = self.confirmed {
            return Some(winner);
        }
        let (leader, weight) = self.leader()?;
        if weight >= quorum_weight && weight > 0 {
            self.confirmed = Some(leader);
            return Some(leader);
        }
        None
    }
}

/// All live elections on a node, with the quorum policy.
#[derive(Debug, Clone)]
pub struct ElectionManager {
    elections: BTreeMap<ElectionRoot, Election>,
    /// Fraction of total delegated weight a candidate needs
    /// (paper §IV-B: "majority vote" — default 0.5; Nano mainnet uses
    /// a 0.67 online-weight quorum, which `e06` sweeps).
    quorum_fraction: f64,
    /// How many tallied votes flipped an election's leader.
    flips: u64,
}

impl ElectionManager {
    /// Creates a manager with the given quorum fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < quorum_fraction <= 1`.
    pub fn new(quorum_fraction: f64) -> Self {
        assert!(
            quorum_fraction > 0.0 && quorum_fraction <= 1.0,
            "quorum fraction out of range"
        );
        ElectionManager {
            elections: BTreeMap::new(),
            quorum_fraction,
            flips: 0,
        }
    }

    /// How many tallied votes changed an election's leading candidate
    /// so far — stable at zero on a healthy network, rising when drops
    /// or partitions let minority candidates take an early lead.
    pub fn vote_flips(&self) -> u64 {
        self.flips
    }

    /// The quorum weight implied by a total delegated weight.
    pub fn quorum_weight(&self, total_weight: u64) -> u64 {
        ((total_weight as f64) * self.quorum_fraction).ceil() as u64
    }

    /// Number of live (unconfirmed) elections.
    pub fn live_count(&self) -> usize {
        self.elections
            .values()
            .filter(|e| e.confirmed().is_none())
            .count()
    }

    /// The election for a root, if any.
    pub fn election(&self, root: &ElectionRoot) -> Option<&Election> {
        self.elections.get(root)
    }

    /// Records a vote and attempts confirmation against
    /// `total_weight`. Returns the newly confirmed winner, if this vote
    /// concluded the election.
    pub fn tally(&mut self, vote: Vote, weight: u64, total_weight: u64) -> Option<Digest> {
        let quorum = self.quorum_weight(total_weight);
        let election = self.elections.entry(vote.root).or_default();
        let already = election.confirmed().is_some();
        if election.vote(vote.representative, weight, vote.candidate) {
            self.flips += 1;
        }
        let result = election.try_confirm(quorum);
        if already {
            None
        } else {
            result
        }
    }

    /// Whether a candidate has been confirmed for its root.
    pub fn is_confirmed(&self, root: &ElectionRoot, candidate: &Digest) -> bool {
        self.elections
            .get(root)
            .and_then(Election::confirmed)
            .is_some_and(|winner| winner == *candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_crypto::sha256::sha256;

    fn rep(label: &str) -> Address {
        Address::from_label(label)
    }

    fn root() -> ElectionRoot {
        (Address::from_label("account"), sha256(b"previous"))
    }

    #[test]
    fn single_candidate_accumulates() {
        let mut e = Election::new();
        let candidate = sha256(b"block");
        e.vote(rep("a"), 100, candidate);
        e.vote(rep("b"), 50, candidate);
        assert_eq!(e.leader(), Some((candidate, 150)));
        assert_eq!(e.candidate_count(), 1);
        assert_eq!(e.total_cast(), 150);
    }

    #[test]
    fn duplicate_vote_not_double_counted() {
        let mut e = Election::new();
        let candidate = sha256(b"block");
        e.vote(rep("a"), 100, candidate);
        e.vote(rep("a"), 100, candidate);
        assert_eq!(e.leader(), Some((candidate, 100)));
    }

    #[test]
    fn conflict_resolved_by_weight() {
        // "The winning transaction is the one that gained the most
        // votes with regards to the voters weight."
        let mut e = Election::new();
        let honest = sha256(b"honest");
        let attack = sha256(b"attack");
        e.vote(rep("whale"), 900, honest);
        e.vote(rep("fish-1"), 50, attack);
        e.vote(rep("fish-2"), 40, attack);
        assert_eq!(e.leader(), Some((honest, 900)));
        assert_eq!(e.candidate_count(), 2);
    }

    #[test]
    fn revote_moves_weight() {
        let mut e = Election::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        e.vote(rep("r"), 100, a);
        assert_eq!(e.leader(), Some((a, 100)));
        e.vote(rep("r"), 100, b);
        assert_eq!(e.leader(), Some((b, 100)));
        let a_tally = e.tallies.get(&a).copied().unwrap_or(0);
        assert_eq!(a_tally, 0);
    }

    #[test]
    fn confirmation_requires_quorum() {
        let mut e = Election::new();
        let candidate = sha256(b"block");
        e.vote(rep("a"), 400, candidate);
        assert_eq!(e.try_confirm(501), None);
        e.vote(rep("b"), 200, candidate);
        assert_eq!(e.try_confirm(501), Some(candidate));
        // Sticky once confirmed.
        e.vote(rep("c"), 10_000, sha256(b"late-rival"));
        assert_eq!(e.try_confirm(501), Some(candidate));
        assert_eq!(e.confirmed(), Some(candidate));
    }

    #[test]
    fn empty_election_confirms_nothing() {
        let mut e = Election::new();
        assert_eq!(e.try_confirm(1), None);
        assert_eq!(e.leader(), None);
    }

    #[test]
    fn manager_tally_and_confirm() {
        let mut m = ElectionManager::new(0.5);
        let candidate = sha256(b"block");
        let vote = |r: &str| Vote {
            representative: rep(r),
            root: root(),
            candidate,
        };
        // Total weight 1000 -> quorum 500.
        assert_eq!(m.tally(vote("a"), 300, 1000), None);
        assert_eq!(m.live_count(), 1);
        assert_eq!(m.tally(vote("b"), 250, 1000), Some(candidate));
        assert!(m.is_confirmed(&root(), &candidate));
        assert_eq!(m.live_count(), 0);
        // Further votes return None (already concluded).
        assert_eq!(m.tally(vote("c"), 999, 1000), None);
    }

    #[test]
    fn quorum_weight_rounds_up() {
        let m = ElectionManager::new(0.5);
        assert_eq!(m.quorum_weight(1000), 500);
        assert_eq!(m.quorum_weight(1001), 501);
        let strict = ElectionManager::new(0.67);
        assert_eq!(strict.quorum_weight(100), 67);
    }

    #[test]
    #[should_panic(expected = "quorum fraction out of range")]
    fn quorum_fraction_validated() {
        ElectionManager::new(0.0);
    }

    #[test]
    fn vote_dedup_key_distinguishes() {
        let v1 = Vote {
            representative: rep("a"),
            root: root(),
            candidate: sha256(b"x"),
        };
        let mut v2 = v1;
        v2.candidate = sha256(b"y");
        assert_ne!(v1.dedup_key(), v2.dedup_key());
        assert_eq!(v1.dedup_key(), v1.dedup_key());
    }

    #[test]
    fn vote_reports_leader_flips() {
        let mut e = Election::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        // First vote establishes a leader — no flip.
        assert!(!e.vote(rep("r1"), 100, a));
        // A rival overtaking the leader flips it.
        assert!(e.vote(rep("r2"), 200, b));
        // Reinforcing the current leader does not.
        assert!(!e.vote(rep("r3"), 50, b));
        // The original voter defecting to the loser flips it back.
        assert!(e.vote(rep("r2"), 200, a));
    }

    #[test]
    fn manager_counts_flips_across_elections() {
        let mut m = ElectionManager::new(0.9);
        let a = sha256(b"a");
        let b = sha256(b"b");
        let vote = |r: &str, candidate| Vote {
            representative: rep(r),
            root: root(),
            candidate,
        };
        m.tally(vote("r1", a), 100, 1000);
        assert_eq!(m.vote_flips(), 0);
        m.tally(vote("r2", b), 200, 1000);
        assert_eq!(m.vote_flips(), 1);
        m.tally(vote("r3", a), 500, 1000);
        assert_eq!(m.vote_flips(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut e = Election::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        e.vote(rep("r1"), 100, a);
        e.vote(rep("r2"), 100, b);
        let (leader, _) = e.leader().unwrap();
        // Ties break toward the smaller hash, deterministically.
        assert_eq!(leader, a.min(b));
    }
}
