//! A Nano-like network node for the discrete-event simulator
//! (paper §III-B, §IV-B).
//!
//! Nodes flood-relay published blocks. A node configured as a
//! *representative* votes on every block it accepts ("a representative
//! that sees a new transaction forwards the transaction with its
//! vote-signature attached … the network automatically broadcasts
//! consensus information, while the transaction is making its way
//! through the network"), and votes for the **first-seen** candidate
//! when it detects a fork. A block is *confirmed* once votes reaching
//! the quorum accumulate (§IV-B: "a majority vote for the send and
//! receive transactions"); nodes that adopted the losing side of a fork
//! roll it back and adopt the winner. Confirmed blocks are cemented.

use std::collections::{BTreeMap, BTreeSet};

use dlt_crypto::keys::Address;
use dlt_crypto::Digest;
use dlt_sim::engine::{Context, Payload, SimNode};
use dlt_sim::metrics::{CounterId, Metrics, SeriesId};
use dlt_sim::network::NodeId;

use crate::block::LatticeBlock;
use crate::lattice::{Lattice, LatticeError, LatticeParams};
use crate::voting::{ElectionManager, ElectionRoot, Vote};

/// The gossip alphabet of the DAG network.
#[derive(Debug, Clone)]
pub enum DagMsg {
    /// A published lattice block.
    Publish(LatticeBlock),
    /// A representative's weighted vote.
    Vote(Vote),
}

/// Node configuration.
#[derive(Debug, Clone)]
pub struct DagNodeConfig {
    /// The representative identity this node votes as, if any. Voting
    /// weight is whatever the ledger currently delegates to it.
    pub representative: Option<Address>,
    /// Quorum fraction of total supply weight (0.5 = paper's majority).
    pub quorum_fraction: f64,
    /// Cement blocks on confirmation (§IV-B block-cementing).
    pub cement_on_confirm: bool,
}

impl Default for DagNodeConfig {
    fn default() -> Self {
        DagNodeConfig {
            representative: None,
            quorum_fraction: 0.5,
            cement_on_confirm: true,
        }
    }
}

/// Pre-interned metric handles for the DAG node's hot paths,
/// registered once in `on_start` (interning is idempotent, so all
/// nodes share the same ids in the simulation's metrics sink).
#[derive(Debug, Clone, Copy)]
struct DagMetrics {
    votes_cast: CounterId,
    blocks_accepted: CounterId,
    forks_detected: CounterId,
    gap_buffered: CounterId,
    blocks_rejected: CounterId,
    losing_branches_rolled_back: CounterId,
    confirmed_unadoptable: CounterId,
    blocks_confirmed: CounterId,
    vote_flips: CounterId,
    confirm_latency_ms: SeriesId,
}

impl DagMetrics {
    fn register(metrics: &mut Metrics) -> Self {
        DagMetrics {
            votes_cast: metrics.counter("dag.votes_cast"),
            blocks_accepted: metrics.counter("dag.blocks_accepted"),
            forks_detected: metrics.counter("dag.forks_detected"),
            gap_buffered: metrics.counter("dag.gap_buffered"),
            blocks_rejected: metrics.counter("dag.blocks_rejected"),
            losing_branches_rolled_back: metrics.counter("dag.losing_branches_rolled_back"),
            confirmed_unadoptable: metrics.counter("dag.confirmed_unadoptable"),
            blocks_confirmed: metrics.counter("dag.blocks_confirmed"),
            vote_flips: metrics.counter("dag.vote_flips"),
            confirm_latency_ms: metrics.series("dag.confirm_latency_ms"),
        }
    }
}

/// A full DAG node: lattice, elections, relay and (optionally) voting.
pub struct DagNode {
    lattice: Lattice,
    elections: ElectionManager,
    config: DagNodeConfig,
    /// Gossip dedup for blocks and votes.
    seen: BTreeSet<Digest>,
    /// Blocks whose `previous` has not arrived yet, keyed by that gap.
    gap_buffer: BTreeMap<Digest, Vec<LatticeBlock>>,
    /// Candidate block bodies per root, so a losing node can adopt the
    /// confirmed winner it rejected earlier.
    candidates: BTreeMap<Digest, LatticeBlock>,
    /// Block arrival times (µs) for confirmation-latency metrics.
    arrival_micros: BTreeMap<Digest, u64>,
    /// Locally confirmed blocks.
    confirmed: BTreeSet<Digest>,
    /// Metric handles, registered in `on_start`.
    metrics: Option<DagMetrics>,
}

impl DagNode {
    /// Creates a node over a copy of the shared genesis ledger.
    pub fn new(params: LatticeParams, genesis: LatticeBlock, config: DagNodeConfig) -> Self {
        DagNode {
            lattice: Lattice::new(params, genesis),
            elections: ElectionManager::new(config.quorum_fraction),
            config,
            seen: BTreeSet::new(),
            gap_buffer: BTreeMap::new(),
            candidates: BTreeMap::new(),
            arrival_micros: BTreeMap::new(),
            confirmed: BTreeSet::new(),
            metrics: None,
        }
    }

    /// The node's metric handles (registered in `on_start`).
    fn handles(&self) -> DagMetrics {
        self.metrics.expect("metric handles registered in on_start")
    }

    /// This node's ledger view.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Installs a pre-network block directly into the local ledger
    /// (initial distribution / bootstrap state shared by all nodes
    /// before the simulation starts).
    ///
    /// # Panics
    ///
    /// Panics if the block does not apply cleanly — bootstrap state
    /// must be valid by construction.
    pub fn bootstrap(&mut self, block: LatticeBlock) {
        let hash = block.hash();
        self.lattice
            .process(block)
            .expect("bootstrap blocks are valid");
        self.seen.insert(hash);
    }

    /// This node's election state.
    pub fn elections(&self) -> &ElectionManager {
        &self.elections
    }

    /// Whether this node has confirmed a block.
    pub fn is_confirmed(&self, hash: &Digest) -> bool {
        self.confirmed.contains(hash)
    }

    /// Number of blocks confirmed locally.
    pub fn confirmed_count(&self) -> usize {
        self.confirmed.len()
    }

    fn election_root(block: &LatticeBlock) -> ElectionRoot {
        (block.account, block.previous)
    }

    /// Casts this node's representative vote (if it is one) and
    /// gossips it.
    fn cast_vote(&mut self, ctx: &mut Context<'_, DagMsg>, root: ElectionRoot, candidate: Digest) {
        let Some(rep) = self.config.representative else {
            return;
        };
        let weight = self.lattice.weight(&rep);
        if weight == 0 {
            return;
        }
        let vote = Vote {
            representative: rep,
            root,
            candidate,
        };
        self.handle_vote(ctx, vote);
        ctx.broadcast(DagMsg::Vote(vote));
        let m = self.handles();
        ctx.metrics().inc(m.votes_cast);
    }

    /// Processes a gossiped `Publish`. Takes the shared payload so the
    /// flood relay re-shares the sender's allocation instead of
    /// cloning the block per peer.
    fn handle_publish(&mut self, ctx: &mut Context<'_, DagMsg>, msg: Payload<DagMsg>) {
        let DagMsg::Publish(block) = &*msg else {
            return;
        };
        let hash = block.hash();
        if !self.seen.insert(hash) {
            return;
        }
        let m = self.handles();
        self.arrival_micros.insert(hash, ctx.now().as_micros());
        self.candidates.insert(hash, block.clone());
        ctx.broadcast(Payload::clone(&msg));

        let root = Self::election_root(block);
        let gap_parent = block.previous;
        match self.lattice.process(block.clone()) {
            Ok(_) => {
                ctx.metrics().inc(m.blocks_accepted);
                self.cast_vote(ctx, root, hash);
                // A gap behind this block may now be fillable.
                if let Some(waiting) = self.gap_buffer.remove(&hash) {
                    for held in waiting {
                        self.seen.remove(&held.hash()); // reprocess fully
                        self.handle_publish(ctx, Payload::new(DagMsg::Publish(held)));
                    }
                }
            }
            Err(LatticeError::Fork { existing }) => {
                // First-seen voting policy: back the incumbent.
                ctx.metrics().inc(m.forks_detected);
                ctx.trace_mark("dag.fork_detected", 1);
                self.cast_vote(ctx, root, existing);
            }
            Err(LatticeError::GapPrevious) => {
                ctx.metrics().inc(m.gap_buffered);
                if let DagMsg::Publish(block) = &*msg {
                    self.gap_buffer
                        .entry(gap_parent)
                        .or_default()
                        .push(block.clone());
                }
            }
            Err(LatticeError::Duplicate) => {}
            Err(_) => {
                ctx.metrics().inc(m.blocks_rejected);
            }
        }
        // The election for this position may have concluded before the
        // winning block's body reached us — apply it now that we hold
        // the body.
        if self.elections.is_confirmed(&root, &hash) && !self.is_confirmed(&hash) {
            self.apply_confirmation(ctx, root, hash);
        }
    }

    fn handle_vote(&mut self, ctx: &mut Context<'_, DagMsg>, vote: Vote) {
        let weight = self.lattice.weight(&vote.representative);
        let total = self.lattice.total_supply();
        let flips_before = self.elections.vote_flips();
        let winner = self.elections.tally(vote, weight, total);
        let flips = self.elections.vote_flips() - flips_before;
        if flips > 0 {
            let m = self.handles();
            ctx.metrics().add(m.vote_flips, flips);
            ctx.trace_mark("dag.vote_flip", flips);
        }
        if let Some(winner) = winner {
            self.apply_confirmation(ctx, vote.root, winner);
        }
    }

    /// Adopts and cements a confirmed winner, rolling back a locally
    /// adopted losing branch if necessary.
    fn apply_confirmation(
        &mut self,
        ctx: &mut Context<'_, DagMsg>,
        root: ElectionRoot,
        winner: Digest,
    ) {
        let m = self.handles();
        if !self.lattice.contains(&winner) {
            // We adopted the loser (or nothing). Roll back whatever
            // occupies the disputed position and install the winner.
            let (account, previous) = root;
            let occupier = self.lattice.account(&account).and_then(|_| {
                // Find the block at this position: the successor of
                // `previous` on the account chain.
                self.lattice
                    .chain_of(&account)
                    .iter()
                    .find(|b| b.previous == previous)
                    .map(|b| b.hash())
            });
            if let Some(loser) = occupier {
                if self.lattice.rollback(&loser).is_ok() {
                    ctx.metrics().inc(m.losing_branches_rolled_back);
                }
            }
            if let Some(block) = self.candidates.get(&winner).cloned() {
                if self.lattice.process(block).is_err() {
                    // Can't adopt yet (e.g. deeper gaps); leave it —
                    // the block will be re-offered by gossip.
                    ctx.metrics().inc(m.confirmed_unadoptable);
                    return;
                }
            } else {
                return; // body unknown; confirmation applies on arrival
            }
        }
        if self.confirmed.insert(winner) {
            ctx.metrics().inc(m.blocks_confirmed);
            ctx.trace_mark("dag.block_confirmed", self.confirmed.len() as u64);
            if let Some(arrived) = self.arrival_micros.get(&winner) {
                let latency_ms = (ctx.now().as_micros().saturating_sub(*arrived)) as f64 / 1e3;
                ctx.metrics().record(m.confirm_latency_ms, latency_ms);
            }
            if self.config.cement_on_confirm {
                let _ = self.lattice.cement(&winner);
            }
        }
    }
}

impl SimNode<DagMsg> for DagNode {
    fn on_start(&mut self, ctx: &mut Context<'_, DagMsg>) {
        self.metrics = Some(DagMetrics::register(ctx.metrics()));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DagMsg>, _from: NodeId, msg: Payload<DagMsg>) {
        match &*msg {
            DagMsg::Publish(_) => self.handle_publish(ctx, msg),
            DagMsg::Vote(vote) => {
                let vote = *vote;
                let key = vote.dedup_key();
                if !self.seen.insert(key) {
                    return;
                }
                // Relay the shared payload (no per-peer deep clone).
                ctx.broadcast(Payload::clone(&msg));
                self.handle_vote(ctx, vote);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::NanoAccount;
    use dlt_sim::engine::Simulation;
    use dlt_sim::latency::LatencyModel;
    use dlt_sim::time::SimTime;

    const BITS: u32 = 2;

    fn params() -> LatticeParams {
        LatticeParams {
            work_difficulty_bits: BITS,
            verify_signatures: true,
            verify_work: true,
        }
    }

    type Net = Simulation<DagMsg, DagNode>;

    /// A network of `reps` representative nodes. The genesis account
    /// delegates its full weight equally by funding `reps` rep accounts
    /// — for test simplicity the genesis weight itself backs node 0's
    /// rep identity, and we fund the others from it.
    struct Fixture {
        sim: Net,
        genesis: NanoAccount,
        rep_accounts: Vec<NanoAccount>,
    }

    /// Builds `n` nodes; reps[i] is an account with `share` balance
    /// delegated to itself, funded from genesis before the network
    /// starts (the funding blocks are injected to every node directly).
    fn fixture(seed: u64, n: usize, latency_ms: u64) -> Fixture {
        let mut genesis = NanoAccount::from_seed([9u8; 32], 8, BITS);
        let genesis_block = genesis.genesis_block(1_000_000);

        let mut rep_accounts: Vec<NanoAccount> = (0..n)
            .map(|i| NanoAccount::from_seed([10 + i as u8; 32], 8, BITS))
            .collect();

        // Pre-ledger: fund each rep with an equal share.
        let share = 1_000_000 / (n as u64 + 1);
        let mut bootstrap = vec![genesis_block.clone()];
        for rep in rep_accounts.iter_mut() {
            let send = genesis.send(rep.address(), share).unwrap();
            let send_hash = send.hash();
            bootstrap.push(send);
            bootstrap.push(rep.receive(send_hash, share).unwrap());
        }

        let mut sim: Net =
            Simulation::new(seed, LatencyModel::Fixed(SimTime::from_millis(latency_ms)));
        for rep_account in rep_accounts.iter().take(n) {
            let config = DagNodeConfig {
                representative: Some(rep_account.address()),
                quorum_fraction: 0.5,
                cement_on_confirm: true,
            };
            let mut node = DagNode::new(params(), genesis_block.clone(), config);
            for block in &bootstrap[1..] {
                node.bootstrap(block.clone());
            }
            sim.add_node(node);
        }
        Fixture {
            sim,
            genesis,
            rep_accounts,
        }
    }

    #[test]
    fn published_block_reaches_everyone_and_confirms() {
        let mut fx = fixture(1, 4, 10);
        let recipient = Address::from_label("recipient");
        let send = fx.rep_accounts[0].send(recipient, 500).unwrap();
        let send_hash = send.hash();
        fx.sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            DagMsg::Publish(send),
        );
        fx.sim.run_until_idle(SimTime::from_secs(10));

        for i in 0..4 {
            let node = fx.sim.node(NodeId(i));
            assert!(node.lattice().contains(&send_hash), "node {i} has block");
            assert!(node.is_confirmed(&send_hash), "node {i} confirmed");
            assert!(node.lattice().is_cemented(&send_hash), "node {i} cemented");
        }
        assert!(fx.sim.metrics().count("dag.votes_cast") >= 4);
        let _ = fx.genesis;
    }

    #[test]
    fn fork_resolved_by_weighted_vote_with_consistent_winner() {
        let mut fx = fixture(2, 5, 30);
        // The attacker signs two conflicting sends (double spend).
        let mut attacker = fx.rep_accounts[4].clone();
        let mut attacker_fork = attacker.fork_state();
        let a = attacker.send(Address::from_label("merchant"), 100).unwrap();
        let b = attacker_fork
            .send(Address::from_label("self"), 100)
            .unwrap();
        let (a_hash, b_hash) = (a.hash(), b.hash());
        // Half the network sees A first, half sees B first.
        fx.sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            DagMsg::Publish(a.clone()),
        );
        fx.sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(3),
            NodeId(3),
            DagMsg::Publish(b.clone()),
        );
        fx.sim.run_until_idle(SimTime::from_secs(30));

        // Exactly one branch confirmed, consistently across nodes.
        let confirmed_a: usize = (0..5)
            .filter(|i| fx.sim.node(NodeId(*i)).is_confirmed(&a_hash))
            .count();
        let confirmed_b: usize = (0..5)
            .filter(|i| fx.sim.node(NodeId(*i)).is_confirmed(&b_hash))
            .count();
        assert!(
            (confirmed_a == 5 && confirmed_b == 0) || (confirmed_b == 5 && confirmed_a == 0),
            "one winner network-wide (a: {confirmed_a}, b: {confirmed_b})"
        );
        assert!(fx.sim.metrics().count("dag.forks_detected") > 0);
        // Every node's ledger holds the winner at the disputed position.
        let winner = if confirmed_a == 5 { a_hash } else { b_hash };
        for i in 0..5 {
            assert!(fx.sim.node(NodeId(i)).lattice().contains(&winner));
        }
    }

    #[test]
    fn out_of_order_blocks_heal_via_gap_buffer() {
        let mut fx = fixture(3, 3, 10);
        let recipient = Address::from_label("r");
        let s1 = fx.rep_accounts[0].send(recipient, 10).unwrap();
        let s2 = fx.rep_accounts[0].send(recipient, 10).unwrap();
        let (s1_hash, s2_hash) = (s1.hash(), s2.hash());
        // Deliver the second first.
        fx.sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(1),
            NodeId(1),
            DagMsg::Publish(s2),
        );
        fx.sim.deliver_at(
            SimTime::from_millis(50),
            NodeId(1),
            NodeId(1),
            DagMsg::Publish(s1),
        );
        fx.sim.run_until_idle(SimTime::from_secs(10));
        for i in 0..3 {
            let node = fx.sim.node(NodeId(i));
            assert!(node.lattice().contains(&s1_hash));
            assert!(node.lattice().contains(&s2_hash), "gap healed on node {i}");
        }
        assert!(fx.sim.metrics().count("dag.gap_buffered") > 0);
    }

    #[test]
    fn no_voting_overhead_without_conflict() {
        // §III-B: "For a transaction with no issues, no voting overhead
        // is required" — votes still circulate for confirmation, but no
        // election ever has two candidates.
        let mut fx = fixture(4, 3, 10);
        let send = fx.rep_accounts[0]
            .send(Address::from_label("x"), 5)
            .unwrap();
        fx.sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            DagMsg::Publish(send),
        );
        fx.sim.run_until_idle(SimTime::from_secs(10));
        assert_eq!(fx.sim.metrics().count("dag.forks_detected"), 0);
        assert_eq!(fx.sim.metrics().count("dag.losing_branches_rolled_back"), 0);
    }

    #[test]
    fn confirmation_latency_recorded() {
        let mut fx = fixture(5, 4, 25);
        let send = fx.rep_accounts[1]
            .send(Address::from_label("y"), 5)
            .unwrap();
        fx.sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(1),
            NodeId(1),
            DagMsg::Publish(send),
        );
        fx.sim.run_until_idle(SimTime::from_secs(10));
        let latency = fx.sim.metrics().mean("dag.confirm_latency_ms");
        assert!(latency.is_some(), "latency samples recorded");
        // With 25 ms links, confirmation needs at least one vote round.
        assert!(latency.unwrap() >= 20.0, "latency {latency:?}");
    }
}
