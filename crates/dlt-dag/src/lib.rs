//! The DAG paradigm of `dlt-compare`: a Nano-like **block-lattice**
//! (paper §II-B, Fig. 2 & 3).
//!
//! "A DAG structure stores transactions in nodes, where each node holds
//! a single transaction. In Nano, every account is linked to its own
//! account-chain … Nodes are appended to an account-chain, each node
//! representing a single transaction."
//!
//! * [`block`] — lattice blocks (open/send/receive/change), account
//!   signatures, and the Hashcash-style anti-spam proof-of-work the
//!   paper describes in §III-B.
//! * [`lattice`] — the ledger: per-account chains, the pending
//!   (unsettled) send map and its settlement on receive (Fig. 3), fork
//!   detection, rollback of unconfirmed branches, cementing, and
//!   delegated representative weights.
//! * [`account`] — an account holder that builds signed, worked blocks.
//! * [`voting`] — weighted representative voting: elections over
//!   conflicting blocks, quorum confirmation (§III-B, §IV-B).
//! * [`node`] — a network node for the [`dlt-sim`](dlt_sim) engine:
//!   publishes blocks, relays, votes as a representative, confirms.
//! * [`prune`] — node roles (historical / current / light) and the
//!   ledger-size accounting of §V-B.
//! * [`tangle`] — an IOTA-style tangle (the paper's footnote-1 "other
//!   DAG approach"): approve-two-tips attachment, cumulative weight,
//!   MCMC tip selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod block;
pub mod lattice;
pub mod node;
pub mod prune;
pub mod tangle;
pub mod voting;

pub use block::{BlockKind, LatticeBlock};
pub use lattice::{Lattice, LatticeError};
