//! Lattice blocks: one transaction per block (paper §II-B).
//!
//! Modelled on Nano's *state blocks*: every block carries the account,
//! the hash of the account's previous block (zero for the first block
//! of a chain), the chosen representative, and the account balance
//! *after* the block. The balance-difference encoding is what lets
//! Nano "keep record of account balances instead of unspent transaction
//! inputs" and prune history (§V-B).
//!
//! Each block also carries a **Hashcash-style proof-of-work** (§III-B:
//! "PoW is used as a spam protection measure … similar to Hashcash"):
//! a nonce such that `H(work-root ‖ nonce)` has a required number of
//! leading zero bits, where the work root is the previous block hash
//! (or the account address for the first block). The work is *not* a
//! lottery — any node can compute it in bounded expected time; it just
//! makes bulk spam expensive.

use dlt_crypto::codec::{Decode, DecodeError, Encode};
use dlt_crypto::keys::{Address, PublicKey, Signature};
use dlt_crypto::sha256::Sha256;
use dlt_crypto::Digest;

/// What a lattice block does to its account chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Deducts funds and targets a destination account (Fig. 3 "S").
    Send {
        /// The account to be credited when the matching receive lands.
        destination: Address,
    },
    /// Claims a pending send (Fig. 3 "R"); the first block of an
    /// account chain is always a receive (Nano's "open" block).
    Receive {
        /// Hash of the send block being claimed.
        source: Digest,
    },
    /// Re-delegates the account's weight to a new representative
    /// (the representative field carries the new choice).
    Change,
}

impl Encode for BlockKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BlockKind::Send { destination } => {
                out.push(0);
                destination.encode(out);
            }
            BlockKind::Receive { source } => {
                out.push(1);
                source.encode(out);
            }
            BlockKind::Change => out.push(2),
        }
    }
}

impl Decode for BlockKind {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(BlockKind::Send {
                destination: Address::decode(input)?,
            }),
            1 => Ok(BlockKind::Receive {
                source: Digest::decode(input)?,
            }),
            2 => Ok(BlockKind::Change),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// One node of the block-lattice: a single transaction on one
/// account's chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatticeBlock {
    /// The account this block belongs to.
    pub account: Address,
    /// The account's public key (its hash must equal `account`).
    pub account_key: PublicKey,
    /// Hash of the account's previous block; zero for the first.
    pub previous: Digest,
    /// The representative this account delegates its weight to.
    pub representative: Address,
    /// Account balance *after* this block.
    pub balance: u64,
    /// The operation.
    pub kind: BlockKind,
    /// Anti-spam PoW nonce.
    pub work: u64,
    /// The account's signature over [`LatticeBlock::hash`].
    pub signature: Signature,
}

impl LatticeBlock {
    /// The block hash: covers all consensus-relevant fields but not the
    /// work nonce or the signature (as Nano's block hash does), so the
    /// signature can sign the hash and work can be attached afterwards.
    pub fn hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"lattice-block");
        let mut buf = Vec::new();
        self.account.encode(&mut buf);
        self.account_key.encode(&mut buf);
        self.previous.encode(&mut buf);
        self.representative.encode(&mut buf);
        self.balance.encode(&mut buf);
        self.kind.encode(&mut buf);
        h.update(&buf);
        h.finalize()
    }

    /// Whether this is the first block of its account chain.
    pub fn is_first(&self) -> bool {
        self.previous.is_zero()
    }

    /// The value the anti-spam work must be computed over: the previous
    /// block hash, or the account address for a chain's first block.
    /// Tying work to the chain position stops precomputing a stockpile
    /// of work for one position.
    pub fn work_root(&self) -> Digest {
        if self.is_first() {
            self.account.0
        } else {
            self.previous
        }
    }

    /// The work hash for a given nonce over this block's work root.
    fn work_hash(root: &Digest, nonce: u64) -> Digest {
        let mut h = Sha256::new();
        h.update(b"lattice-work");
        h.update(root.as_bytes());
        h.update(&nonce.to_be_bytes());
        h.finalize()
    }

    /// Whether the attached work meets `difficulty_bits` leading zeros.
    pub fn work_valid(&self, difficulty_bits: u32) -> bool {
        Self::work_hash(&self.work_root(), self.work).leading_zero_bits() >= difficulty_bits
    }

    /// Computes valid anti-spam work for a work root by brute force
    /// (expected `2^difficulty_bits` attempts).
    pub fn compute_work(root: &Digest, difficulty_bits: u32) -> u64 {
        let mut nonce = 0u64;
        loop {
            if Self::work_hash(root, nonce).leading_zero_bits() >= difficulty_bits {
                return nonce;
            }
            nonce += 1;
        }
    }

    /// Number of attempts `compute_work` used for a nonce (the energy
    /// accounting of experiment `e15`): nonces are tried from zero, so
    /// the nonce value itself is the attempt count minus one.
    pub fn work_attempts(&self) -> u64 {
        self.work + 1
    }

    /// Serialized size in bytes (ledger-size accounting, §V-B).
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for LatticeBlock {
    fn encode(&self, out: &mut Vec<u8>) {
        self.account.encode(out);
        self.account_key.encode(out);
        self.previous.encode(out);
        self.representative.encode(out);
        self.balance.encode(out);
        self.kind.encode(out);
        self.work.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for LatticeBlock {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(LatticeBlock {
            account: Address::decode(input)?,
            account_key: PublicKey::decode(input)?,
            previous: Digest::decode(input)?,
            representative: Address::decode(input)?,
            balance: u64::decode(input)?,
            kind: BlockKind::decode(input)?,
            work: u64::decode(input)?,
            signature: Signature::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_crypto::keys::Keypair;
    use dlt_crypto::sha256::sha256;

    fn sample_block(previous: Digest) -> LatticeBlock {
        let mut key = Keypair::mss_from_seed([1u8; 32], 2);
        let mut block = LatticeBlock {
            account: key.address(),
            account_key: key.public_key(),
            previous,
            representative: Address::from_label("rep"),
            balance: 100,
            kind: BlockKind::Send {
                destination: Address::from_label("dest"),
            },
            work: 0,
            signature: key.sign(&Digest::ZERO).unwrap(), // replaced below
        };
        let hash = block.hash();
        let mut key2 = Keypair::mss_from_seed([1u8; 32], 2);
        block.signature = key2.sign(&hash).unwrap();
        block
    }

    #[test]
    fn hash_excludes_work_and_signature() {
        let block = sample_block(sha256(b"prev"));
        let h1 = block.hash();
        let mut modified = block.clone();
        modified.work = 999;
        assert_eq!(modified.hash(), h1);
        // But consensus fields change it.
        let mut modified = block;
        modified.balance = 50;
        assert_ne!(modified.hash(), h1);
    }

    #[test]
    fn work_root_depends_on_position() {
        let first = sample_block(Digest::ZERO);
        assert!(first.is_first());
        assert_eq!(first.work_root(), first.account.0);
        let later = sample_block(sha256(b"prev"));
        assert!(!later.is_first());
        assert_eq!(later.work_root(), sha256(b"prev"));
    }

    #[test]
    fn computed_work_validates() {
        let mut block = sample_block(sha256(b"prev"));
        let bits = 8;
        assert!(!block.work_valid(bits) || block.work_attempts() == 1);
        block.work = LatticeBlock::compute_work(&block.work_root(), bits);
        assert!(block.work_valid(bits));
        // Work for one root doesn't transfer to another position.
        let mut moved = block.clone();
        moved.previous = sha256(b"other-prev");
        // Overwhelmingly unlikely to still validate.
        assert!(!moved.work_valid(bits));
    }

    #[test]
    fn work_attempts_scale_with_difficulty() {
        // Expected attempts double per extra bit; check the trend over
        // many roots (noisy, so use medians of small samples).
        let attempts = |bits: u32| -> u64 {
            let mut total = 0;
            for i in 0..20u64 {
                let root = sha256(&i.to_be_bytes());
                total += LatticeBlock::compute_work(&root, bits) + 1;
            }
            total
        };
        let easy = attempts(2);
        let hard = attempts(7);
        assert!(hard > easy, "7-bit work ({hard}) > 2-bit work ({easy})");
    }

    #[test]
    fn codec_round_trip() {
        use dlt_crypto::codec::decode_exact;
        for kind in [
            BlockKind::Send {
                destination: Address::from_label("d"),
            },
            BlockKind::Receive {
                source: sha256(b"send"),
            },
            BlockKind::Change,
        ] {
            let mut block = sample_block(sha256(b"prev"));
            block.kind = kind;
            let back: LatticeBlock = decode_exact(&block.encode_to_vec()).unwrap();
            assert_eq!(back, block);
            assert_eq!(back.hash(), block.hash());
        }
    }

    #[test]
    fn block_size_is_a_few_kib() {
        // One MSS signature dominates: the paper's Nano ledger carries
        // one signature per block too (ed25519 is smaller; the *shape*
        // of per-block cost is what matters for §V comparisons).
        let block = sample_block(sha256(b"prev"));
        let size = block.size_bytes();
        assert!(size > 1_000 && size < 10_000, "size {size}");
    }
}
