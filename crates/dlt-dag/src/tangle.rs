//! An IOTA-style tangle — the paper's *other* DAG shape (footnote 1:
//! "Other DAG approaches are IOTA and Byteball").
//!
//! Where Nano's block-lattice is one chain per account, the tangle is a
//! single unstructured DAG: every new transaction *approves two
//! previous transactions* (its parents), directly verifying them. A
//! transaction's **cumulative weight** — the number of transactions
//! directly or indirectly approving it — grows as the tangle builds on
//! top of it, and plays the role block depth plays in §IV-A: a
//! transaction is confirmed once its cumulative weight passes a
//! threshold.
//!
//! Two tip-selection strategies are implemented:
//!
//! * [`TipSelection::UniformRandom`] — pick any two tips, the simplest
//!   reference rule;
//! * [`TipSelection::WeightedWalk`] — IOTA's MCMC walk: from genesis,
//!   repeatedly step to a child with probability ∝ exp(α·ΔW). Higher α
//!   concentrates approval on the heavy subtangle, which defends
//!   against lazy/parasite tips at the cost of leaving more honest
//!   tips behind — the trade-off the `tangle_dynamics` test exercises.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dlt_crypto::sha256::Sha256;
use dlt_crypto::Digest;
use dlt_sim::metrics::{CounterId, Metrics, SeriesId};
use dlt_sim::rng::SimRng;

/// How new transactions choose the two tips they approve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TipSelection {
    /// Two independent uniformly random tips.
    UniformRandom,
    /// A biased random walk from genesis with the given α ≥ 0
    /// (α = 0 degenerates to an unbiased walk).
    WeightedWalk {
        /// Bias strength toward heavier children.
        alpha: f64,
    },
}

/// One transaction site in the tangle.
#[derive(Debug, Clone)]
struct Site {
    approves: [Digest; 2],
    approvers: Vec<Digest>,
    cumulative_weight: u64,
}

/// Pre-interned handles into the tangle's own metrics sink. The
/// tangle runs outside the discrete-event engine (e17 drives it
/// directly), so it carries its own [`Metrics`] instead of using a
/// simulation context.
#[derive(Debug, Clone, Copy)]
struct TangleMetrics {
    attachments: CounterId,
    weight_updates: CounterId,
    ancestors_per_attach: SeriesId,
}

impl TangleMetrics {
    fn register(metrics: &mut Metrics) -> Self {
        TangleMetrics {
            attachments: metrics.counter("tangle.attachments"),
            weight_updates: metrics.counter("tangle.weight_updates"),
            ancestors_per_attach: metrics.series("tangle.ancestors_per_attach"),
        }
    }
}

/// The tangle.
#[derive(Debug, Clone)]
pub struct Tangle {
    sites: BTreeMap<Digest, Site>,
    tips: BTreeSet<Digest>,
    genesis: Digest,
    /// Cumulative weight at which a transaction counts as confirmed.
    confirmation_weight: u64,
    metrics: Metrics,
    m: TangleMetrics,
}

impl Tangle {
    /// Creates a tangle with the genesis transaction and the given
    /// confirmation-weight threshold.
    ///
    /// # Panics
    ///
    /// Panics if `confirmation_weight == 0`.
    pub fn new(confirmation_weight: u64) -> Self {
        assert!(confirmation_weight > 0, "need a positive threshold");
        let genesis = Self::tx_id(&Digest::ZERO, &[Digest::ZERO, Digest::ZERO], 0);
        let mut sites = BTreeMap::new();
        sites.insert(
            genesis,
            Site {
                approves: [Digest::ZERO, Digest::ZERO],
                approvers: Vec::new(),
                cumulative_weight: 0,
            },
        );
        let mut metrics = Metrics::new();
        let m = TangleMetrics::register(&mut metrics);
        Tangle {
            sites,
            tips: BTreeSet::from([genesis]),
            genesis,
            confirmation_weight,
            metrics,
            m,
        }
    }

    /// The tangle's metrics: attachment count, total weight-propagation
    /// work, and the per-attach ancestor-update series.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn tx_id(payload: &Digest, parents: &[Digest; 2], nonce: u64) -> Digest {
        let mut h = Sha256::new();
        h.update(b"tangle-tx");
        h.update(payload.as_bytes());
        h.update(parents[0].as_bytes());
        h.update(parents[1].as_bytes());
        h.update(&nonce.to_be_bytes());
        h.finalize()
    }

    /// The genesis transaction id.
    pub fn genesis(&self) -> Digest {
        self.genesis
    }

    /// Number of transactions (including genesis).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether only the genesis exists.
    pub fn is_empty(&self) -> bool {
        self.sites.len() == 1
    }

    /// Current tip count — the paper-relevant health metric (a healthy
    /// tangle keeps the tip pool roughly constant under steady load).
    pub fn tip_count(&self) -> usize {
        self.tips.len()
    }

    /// A transaction's cumulative weight (indirect approvals).
    pub fn cumulative_weight(&self, id: &Digest) -> Option<u64> {
        self.sites.get(id).map(|s| s.cumulative_weight)
    }

    /// Whether a transaction has reached the confirmation weight.
    pub fn is_confirmed(&self, id: &Digest) -> bool {
        self.cumulative_weight(id)
            .is_some_and(|w| w >= self.confirmation_weight)
    }

    /// The two parents a transaction approved.
    pub fn parents(&self, id: &Digest) -> Option<[Digest; 2]> {
        self.sites.get(id).map(|s| s.approves)
    }

    /// Selects two tips per the strategy.
    pub fn select_tips(&self, strategy: TipSelection, rng: &mut SimRng) -> [Digest; 2] {
        match strategy {
            TipSelection::UniformRandom => {
                let tips: Vec<Digest> = self.tips.iter().copied().collect();
                let a = tips[rng.below(tips.len() as u64) as usize];
                let b = tips[rng.below(tips.len() as u64) as usize];
                [a, b]
            }
            TipSelection::WeightedWalk { alpha } => [
                self.weighted_walk(alpha, rng),
                self.weighted_walk(alpha, rng),
            ],
        }
    }

    /// One MCMC walk from genesis to a tip, stepping to approvers with
    /// probability ∝ exp(α · weight).
    fn weighted_walk(&self, alpha: f64, rng: &mut SimRng) -> Digest {
        let mut here = self.genesis;
        loop {
            let site = &self.sites[&here];
            if site.approvers.is_empty() {
                return here; // a tip
            }
            let max_weight = site
                .approvers
                .iter()
                .map(|a| self.sites[a].cumulative_weight)
                .max()
                .expect("non-empty");
            let weights: Vec<f64> = site
                .approvers
                .iter()
                .map(|a| {
                    // Stabilised exponent: exp(α (w − w_max)) ≤ 1.
                    let w = self.sites[a].cumulative_weight;
                    (alpha * (w as f64 - max_weight as f64)).exp()
                })
                .collect();
            let choice = rng.weighted_choice(&weights);
            here = site.approvers[choice];
        }
    }

    /// Attaches a new transaction approving two tips chosen by
    /// `strategy`; returns its id.
    ///
    /// Cumulative weights of all (transitive) ancestors increase by
    /// one — the mechanism that buries old transactions ever deeper.
    pub fn attach(&mut self, payload: Digest, strategy: TipSelection, rng: &mut SimRng) -> Digest {
        let parents = self.select_tips(strategy, rng);
        self.attach_approving(payload, parents, rng.below(u64::MAX))
    }

    /// Attaches approving explicit parents (used by tests and by the
    /// lazy-tip attack below).
    ///
    /// # Panics
    ///
    /// Panics if a parent is unknown.
    pub fn attach_approving(
        &mut self,
        payload: Digest,
        parents: [Digest; 2],
        nonce: u64,
    ) -> Digest {
        assert!(
            parents.iter().all(|p| self.sites.contains_key(p)),
            "parents must exist"
        );
        let id = Self::tx_id(&payload, &parents, nonce);
        if self.sites.contains_key(&id) {
            return id; // idempotent re-attach
        }
        self.sites.insert(
            id,
            Site {
                approves: parents,
                approvers: Vec::new(),
                cumulative_weight: 0,
            },
        );
        for parent in parents.iter().collect::<BTreeSet<_>>() {
            self.sites
                .get_mut(parent)
                .expect("checked")
                .approvers
                .push(id);
            self.tips.remove(parent);
        }
        self.tips.insert(id);

        // Propagate +1 weight to every distinct ancestor.
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<Digest> = parents.iter().copied().collect();
        let mut updated = 0u64;
        while let Some(ancestor) = queue.pop_front() {
            if ancestor.is_zero() || !seen.insert(ancestor) {
                continue;
            }
            let site = self.sites.get_mut(&ancestor).expect("ancestors exist");
            site.cumulative_weight += 1;
            updated += 1;
            queue.extend(site.approves);
        }
        self.metrics.inc(self.m.attachments);
        self.metrics.add(self.m.weight_updates, updated);
        self.metrics
            .record(self.m.ancestors_per_attach, updated as f64);
        id
    }

    /// Confirmation latency proxy: how many subsequent attachments a
    /// transaction needed before confirming (None if unconfirmed).
    pub fn confirmed_fraction(&self) -> f64 {
        let confirmed = self
            .sites
            .values()
            .filter(|s| s.cumulative_weight >= self.confirmation_weight)
            .count();
        confirmed as f64 / self.sites.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_crypto::sha256::sha256;

    fn payload(i: u64) -> Digest {
        sha256(&i.to_be_bytes())
    }

    #[test]
    fn genesis_only_tangle() {
        let tangle = Tangle::new(5);
        assert!(tangle.is_empty());
        assert_eq!(tangle.tip_count(), 1);
        assert_eq!(tangle.cumulative_weight(&tangle.genesis()), Some(0));
        assert!(!tangle.is_confirmed(&tangle.genesis()));
    }

    #[test]
    fn attachment_updates_tips_and_weights() {
        let mut tangle = Tangle::new(2);
        let mut rng = SimRng::new(1);
        let genesis = tangle.genesis();
        let a = tangle.attach(payload(1), TipSelection::UniformRandom, &mut rng);
        // a approves genesis twice (only tip available).
        assert_eq!(tangle.parents(&a), Some([genesis, genesis]));
        assert_eq!(tangle.tip_count(), 1);
        assert_eq!(tangle.cumulative_weight(&genesis), Some(1));

        let b = tangle.attach(payload(2), TipSelection::UniformRandom, &mut rng);
        assert_eq!(tangle.cumulative_weight(&genesis), Some(2));
        assert_eq!(tangle.cumulative_weight(&a), Some(1));
        assert!(tangle.is_confirmed(&genesis));
        assert!(!tangle.is_confirmed(&b));
    }

    #[test]
    fn weights_count_distinct_descendants() {
        // Diamond: c approves a and b, both approving genesis; genesis
        // weight must count c once.
        let mut tangle = Tangle::new(100);
        let genesis = tangle.genesis();
        let a = tangle.attach_approving(payload(1), [genesis, genesis], 1);
        let b = tangle.attach_approving(payload(2), [genesis, genesis], 2);
        let c = tangle.attach_approving(payload(3), [a, b], 3);
        assert_eq!(tangle.cumulative_weight(&genesis), Some(3)); // a, b, c
        assert_eq!(tangle.cumulative_weight(&a), Some(1));
        assert_eq!(tangle.cumulative_weight(&b), Some(1));
        assert_eq!(tangle.cumulative_weight(&c), Some(0));
        assert_eq!(tangle.tip_count(), 1);
    }

    #[test]
    fn steady_load_keeps_tip_pool_bounded() {
        let mut tangle = Tangle::new(10);
        let mut rng = SimRng::new(2);
        for i in 0..500 {
            tangle.attach(payload(i), TipSelection::UniformRandom, &mut rng);
        }
        // Uniform selection keeps tips ~O(1)-ish (λ-dependent in the
        // IOTA analysis; sequential attachment here trends low).
        assert!(tangle.tip_count() < 50, "tips {}", tangle.tip_count());
        assert_eq!(tangle.len(), 501);
        // Early transactions are deeply confirmed.
        assert!(tangle.is_confirmed(&tangle.genesis()));
        assert!(tangle.confirmed_fraction() > 0.8);
    }

    #[test]
    fn weighted_walk_reaches_a_tip_and_prefers_heavy_subtangle() {
        let mut tangle = Tangle::new(10);
        let genesis = tangle.genesis();
        // Build a heavy branch (chain of 30) and a light branch (1 tx).
        let mut heavy_tip = tangle.attach_approving(payload(1), [genesis, genesis], 1);
        for i in 2..30 {
            heavy_tip = tangle.attach_approving(payload(i), [heavy_tip, heavy_tip], i);
        }
        let light_tip = tangle.attach_approving(payload(999), [genesis, genesis], 999);

        let mut rng = SimRng::new(3);
        let mut heavy_hits = 0;
        let runs = 200;
        for _ in 0..runs {
            let tip = tangle.select_tips(TipSelection::WeightedWalk { alpha: 0.5 }, &mut rng)[0];
            if tip != light_tip {
                heavy_hits += 1;
            }
        }
        assert!(
            heavy_hits > runs * 8 / 10,
            "weighted walk picked the heavy branch {heavy_hits}/{runs}"
        );
    }

    #[test]
    fn lazy_tip_starves_under_weighted_walk() {
        // A "lazy" participant approves only old transactions and never
        // helps the frontier; the weighted walk rarely builds on it.
        let mut tangle = Tangle::new(10);
        let mut rng = SimRng::new(4);
        for i in 0..100 {
            tangle.attach(
                payload(i),
                TipSelection::WeightedWalk { alpha: 0.3 },
                &mut rng,
            );
        }
        let genesis = tangle.genesis();
        let lazy = tangle.attach_approving(payload(5000), [genesis, genesis], 5000);
        for i in 100..200 {
            tangle.attach(
                payload(i),
                TipSelection::WeightedWalk { alpha: 0.3 },
                &mut rng,
            );
        }
        let lazy_weight = tangle.cumulative_weight(&lazy).unwrap();
        assert!(
            lazy_weight < 5,
            "lazy tip accumulated weight {lazy_weight} despite approving stale txs"
        );
        assert!(!tangle.is_confirmed(&lazy));
    }

    #[test]
    fn tangle_metrics_track_attachment_work() {
        let mut tangle = Tangle::new(5);
        let genesis = tangle.genesis();
        let a = tangle.attach_approving(payload(1), [genesis, genesis], 1);
        tangle.attach_approving(payload(2), [a, genesis], 2);
        let metrics = tangle.metrics();
        assert_eq!(metrics.count("tangle.attachments"), 2);
        // First attach touches genesis (1); second touches a + genesis (2).
        assert_eq!(metrics.count("tangle.weight_updates"), 3);
        assert_eq!(metrics.samples("tangle.ancestors_per_attach"), &[1.0, 2.0]);
    }

    #[test]
    fn idempotent_reattach() {
        let mut tangle = Tangle::new(5);
        let genesis = tangle.genesis();
        let a = tangle.attach_approving(payload(1), [genesis, genesis], 7);
        let a2 = tangle.attach_approving(payload(1), [genesis, genesis], 7);
        assert_eq!(a, a2);
        assert_eq!(tangle.len(), 2);
        assert_eq!(tangle.cumulative_weight(&genesis), Some(1));
    }

    #[test]
    #[should_panic(expected = "parents must exist")]
    fn unknown_parent_rejected() {
        let mut tangle = Tangle::new(5);
        tangle.attach_approving(payload(1), [sha256(b"ghost"), tangle.genesis()], 0);
    }
}
