//! The block-lattice ledger (paper §II-B, Fig. 2 & 3).
//!
//! Every account has its own chain; the global ledger is the set of
//! all account chains plus the *pending* map linking send blocks to
//! their not-yet-claimed funds:
//!
//! * a **send** deducts from the sender's chain and parks the amount in
//!   the pending map ("funds are deducted … and are pending in the
//!   network awaiting for the recipient"); the transfer is *unsettled*;
//! * the matching **receive** on the recipient's chain claims it; the
//!   transfer is *settled* (Fig. 3);
//! * a **fork** — two blocks claiming the same predecessor — is
//!   detected here and *resolved* by representative voting
//!   ([`voting`](crate::voting)); the losing branch is
//!   [rolled back](Lattice::rollback), unless
//!   [cemented](Lattice::cement) (§IV-B's block-cementing).
//!
//! Representative **weights** (§III-B: "a representative's weight is
//! calculated as the sum of all balances for accounts that chose this
//! representative") are maintained incrementally on every block.

use std::collections::{BTreeMap, BTreeSet};

use dlt_crypto::codec::Encode;
use dlt_crypto::keys::Address;
use dlt_crypto::Digest;

use crate::block::{BlockKind, LatticeBlock};

/// Ledger configuration.
#[derive(Debug, Clone, Copy)]
pub struct LatticeParams {
    /// Leading zero bits required of each block's anti-spam work.
    pub work_difficulty_bits: u32,
    /// Verify account signatures (disable for large simulations —
    /// the "assume valid" knob, identical to the blockchain side).
    pub verify_signatures: bool,
    /// Verify anti-spam work.
    pub verify_work: bool,
}

impl Default for LatticeParams {
    fn default() -> Self {
        LatticeParams {
            work_difficulty_bits: 8,
            verify_signatures: true,
            verify_work: true,
        }
    }
}

/// Per-account chain summary (what a "current" node keeps, §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccountInfo {
    /// The chain's newest block.
    pub head: Digest,
    /// The chain's first block.
    pub open: Digest,
    /// Number of blocks on the chain.
    pub block_count: u64,
    /// Current balance.
    pub balance: u64,
    /// The delegated representative.
    pub representative: Address,
}

/// A parked, unsettled send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingInfo {
    /// Who may claim it.
    pub destination: Address,
    /// The parked amount.
    pub amount: u64,
}

/// Why a block was rejected (or a rollback refused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeError {
    /// The block is already in the ledger.
    Duplicate,
    /// The embedded public key does not hash to the account address.
    BadAccountKey,
    /// The anti-spam work does not meet the difficulty.
    BadWork,
    /// The account signature is invalid.
    BadSignature,
    /// Two blocks claim the same predecessor — "forks in Nano are only
    /// possible as a result of a malicious attack or bad programming".
    Fork {
        /// The block already occupying the disputed position.
        existing: Digest,
    },
    /// The previous block is unknown ("a transaction may not have been
    /// properly broadcasted, causing the network to ignore all
    /// subsequent transactions on top of the missing block").
    GapPrevious,
    /// A non-first block for an account with no chain.
    UnknownAccount,
    /// A first block for an account that already has a chain.
    AccountAlreadyOpen,
    /// An account chain must start with a receive.
    FirstBlockNotReceive,
    /// A send must strictly decrease the balance.
    SendAmountInvalid,
    /// A receive references a send that is not pending for this
    /// account.
    SourceNotPending,
    /// A receive's balance does not equal previous + pending amount.
    ReceiveAmountMismatch,
    /// A change block must not alter the balance.
    ChangeAltersBalance,
    /// Rollback refused: the block (or a dependent) is cemented.
    Cemented,
    /// Rollback target not found.
    UnknownBlock,
}

impl std::fmt::Display for LatticeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            LatticeError::Duplicate => "duplicate block",
            LatticeError::BadAccountKey => "public key does not match account",
            LatticeError::BadWork => "anti-spam work below difficulty",
            LatticeError::BadSignature => "invalid account signature",
            LatticeError::Fork { .. } => "fork: predecessor already has a successor",
            LatticeError::GapPrevious => "previous block unknown",
            LatticeError::UnknownAccount => "account has no chain",
            LatticeError::AccountAlreadyOpen => "account chain already open",
            LatticeError::FirstBlockNotReceive => "first block must be a receive",
            LatticeError::SendAmountInvalid => "send must decrease balance",
            LatticeError::SourceNotPending => "source send is not pending for this account",
            LatticeError::ReceiveAmountMismatch => "receive amount mismatch",
            LatticeError::ChangeAltersBalance => "change block altered balance",
            LatticeError::Cemented => "block is cemented and cannot be rolled back",
            LatticeError::UnknownBlock => "unknown block",
        };
        f.write_str(text)
    }
}

impl std::error::Error for LatticeError {}

/// The block-lattice ledger.
#[derive(Debug, Clone)]
pub struct Lattice {
    params: LatticeParams,
    blocks: BTreeMap<Digest, LatticeBlock>,
    accounts: BTreeMap<Address, AccountInfo>,
    /// `previous → successor` per account chain (fork detection).
    successors: BTreeMap<Digest, Digest>,
    /// Unsettled sends by send-block hash.
    pending: BTreeMap<Digest, PendingInfo>,
    /// Settled sends: send hash → receive hash (rollback cascade).
    received: BTreeMap<Digest, Digest>,
    rep_weights: BTreeMap<Address, u64>,
    cemented: BTreeSet<Digest>,
    genesis: Digest,
    total_supply: u64,
}

impl Lattice {
    /// Creates a ledger from a genesis block: the first block of the
    /// genesis account, a receive-from-nowhere minting the entire
    /// supply. Signature and work are still verified (the genesis
    /// account is an ordinary account holding everything at first).
    ///
    /// # Panics
    ///
    /// Panics if the genesis block is not a first block receiving the
    /// full supply.
    pub fn new(params: LatticeParams, genesis: LatticeBlock) -> Self {
        assert!(genesis.is_first(), "genesis must open a chain");
        assert!(
            matches!(genesis.kind, BlockKind::Receive { source } if source.is_zero()),
            "genesis must be a receive from the zero source"
        );
        let hash = genesis.hash();
        let supply = genesis.balance;
        let mut lattice = Lattice {
            params,
            blocks: BTreeMap::new(),
            accounts: BTreeMap::new(),
            successors: BTreeMap::new(),
            pending: BTreeMap::new(),
            received: BTreeMap::new(),
            rep_weights: BTreeMap::new(),
            cemented: BTreeSet::new(),
            genesis: hash,
            total_supply: supply,
        };
        lattice.accounts.insert(
            genesis.account,
            AccountInfo {
                head: hash,
                open: hash,
                block_count: 1,
                balance: supply,
                representative: genesis.representative,
            },
        );
        *lattice
            .rep_weights
            .entry(genesis.representative)
            .or_insert(0) += supply;
        lattice.blocks.insert(hash, genesis);
        lattice.cemented.insert(hash);
        lattice
    }

    /// The ledger parameters.
    pub fn params(&self) -> &LatticeParams {
        &self.params
    }

    /// The genesis block hash.
    pub fn genesis(&self) -> Digest {
        self.genesis
    }

    /// The fixed total supply.
    pub fn total_supply(&self) -> u64 {
        self.total_supply
    }

    /// Number of blocks in the ledger (all account chains).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of open account chains.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Number of unsettled sends.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// A block by hash.
    pub fn block(&self, hash: &Digest) -> Option<&LatticeBlock> {
        self.blocks.get(hash)
    }

    /// Whether the ledger holds a block.
    pub fn contains(&self, hash: &Digest) -> bool {
        self.blocks.contains_key(hash)
    }

    /// An account's chain summary.
    pub fn account(&self, address: &Address) -> Option<&AccountInfo> {
        self.accounts.get(address)
    }

    /// An account's balance (zero if no chain).
    pub fn balance(&self, address: &Address) -> u64 {
        self.accounts.get(address).map_or(0, |info| info.balance)
    }

    /// A pending (unsettled) send, if still unclaimed.
    pub fn pending(&self, send_hash: &Digest) -> Option<&PendingInfo> {
        self.pending.get(send_hash)
    }

    /// All pending sends addressed to `destination`.
    pub fn pending_for(&self, destination: &Address) -> Vec<(Digest, u64)> {
        let mut out: Vec<(Digest, u64)> = self
            .pending
            .iter()
            .filter(|(_, info)| info.destination == *destination)
            .map(|(hash, info)| (*hash, info.amount))
            .collect();
        out.sort();
        out
    }

    /// Whether a send has been settled by a receive (Fig. 3).
    pub fn is_settled(&self, send_hash: &Digest) -> bool {
        self.received.contains_key(send_hash)
    }

    /// A representative's voting weight: the sum of balances delegated
    /// to it (§III-B).
    pub fn weight(&self, representative: &Address) -> u64 {
        self.rep_weights.get(representative).copied().unwrap_or(0)
    }

    /// Whether a block is cemented (irreversible, §IV-B).
    pub fn is_cemented(&self, hash: &Digest) -> bool {
        self.cemented.contains(hash)
    }

    /// Validates and appends one block to its account chain.
    ///
    /// # Errors
    ///
    /// See [`LatticeError`]; notably [`LatticeError::Fork`] when the
    /// block conflicts with an existing successor — the caller should
    /// open an election.
    pub fn process(&mut self, block: LatticeBlock) -> Result<Digest, LatticeError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Err(LatticeError::Duplicate);
        }
        if block.account_key.address() != block.account {
            return Err(LatticeError::BadAccountKey);
        }
        if self.params.verify_work && !block.work_valid(self.params.work_difficulty_bits) {
            return Err(LatticeError::BadWork);
        }
        if self.params.verify_signatures && !block.signature.verify(&hash, &block.account_key) {
            return Err(LatticeError::BadSignature);
        }

        let prev_balance = if block.is_first() {
            if self.accounts.contains_key(&block.account) {
                return Err(LatticeError::AccountAlreadyOpen);
            }
            if !matches!(block.kind, BlockKind::Receive { .. }) {
                return Err(LatticeError::FirstBlockNotReceive);
            }
            0
        } else {
            let info = self
                .accounts
                .get(&block.account)
                .ok_or(LatticeError::UnknownAccount)?;
            if block.previous != info.head {
                return if let Some(existing) = self.successors.get(&block.previous) {
                    Err(LatticeError::Fork {
                        existing: *existing,
                    })
                } else if self.blocks.contains_key(&block.previous) {
                    // Previous is this account's head? No (checked), so
                    // it must be a stale position with no successor —
                    // impossible for non-head blocks, which always have
                    // successors; defensively report a fork on the head.
                    Err(LatticeError::Fork {
                        existing: info.head,
                    })
                } else {
                    Err(LatticeError::GapPrevious)
                };
            }
            info.balance
        };

        // Kind-specific validation.
        match block.kind {
            BlockKind::Send { destination } => {
                if block.balance >= prev_balance {
                    return Err(LatticeError::SendAmountInvalid);
                }
                let amount = prev_balance - block.balance;
                self.pending.insert(
                    hash,
                    PendingInfo {
                        destination,
                        amount,
                    },
                );
            }
            BlockKind::Receive { source } => {
                let info = self
                    .pending
                    .get(&source)
                    .ok_or(LatticeError::SourceNotPending)?;
                if info.destination != block.account {
                    return Err(LatticeError::SourceNotPending);
                }
                if block.balance != prev_balance + info.amount {
                    return Err(LatticeError::ReceiveAmountMismatch);
                }
                self.pending.remove(&source);
                self.received.insert(source, hash);
            }
            BlockKind::Change => {
                if block.balance != prev_balance {
                    return Err(LatticeError::ChangeAltersBalance);
                }
            }
        }

        // Commit: account info, successor link, weights.
        let (old_rep, old_balance) = match self.accounts.get(&block.account) {
            Some(info) => (Some(info.representative), info.balance),
            None => (None, 0),
        };
        if let Some(rep) = old_rep {
            self.shift_weight(&rep, old_balance, 0);
        }
        self.shift_weight(&block.representative, 0, block.balance);

        let entry = self
            .accounts
            .entry(block.account)
            .or_insert_with(|| AccountInfo {
                head: hash,
                open: hash,
                block_count: 0,
                balance: 0,
                representative: block.representative,
            });
        entry.head = hash;
        entry.balance = block.balance;
        entry.representative = block.representative;
        entry.block_count += 1;
        if !block.is_first() {
            self.successors.insert(block.previous, hash);
        }
        self.blocks.insert(hash, block);
        Ok(hash)
    }

    fn shift_weight(&mut self, rep: &Address, remove: u64, add: u64) {
        let weight = self.rep_weights.entry(*rep).or_insert(0);
        *weight = *weight - remove + add;
    }

    /// Marks a block and all its chain ancestors irreversible —
    /// "block-cementing … will prevent transactions from being rolled
    /// back after a certain period of time" (§IV-B).
    ///
    /// # Errors
    ///
    /// [`LatticeError::UnknownBlock`] if the hash is not in the ledger.
    pub fn cement(&mut self, hash: &Digest) -> Result<(), LatticeError> {
        if !self.blocks.contains_key(hash) {
            return Err(LatticeError::UnknownBlock);
        }
        let mut cursor = *hash;
        loop {
            if !self.cemented.insert(cursor) {
                break; // ancestors already cemented
            }
            let block = &self.blocks[&cursor];
            if block.is_first() {
                break;
            }
            cursor = block.previous;
        }
        Ok(())
    }

    /// Rolls back `target` and everything that depends on it: the rest
    /// of its account chain above it, and (recursively) any receive
    /// that settled a rolled-back send. Used when an election resolves
    /// a fork against the branch a node had adopted.
    ///
    /// Returns the removed block hashes.
    ///
    /// # Errors
    ///
    /// Refuses ([`LatticeError::Cemented`]) if any affected block is
    /// cemented; the ledger is left unchanged in that case.
    pub fn rollback(&mut self, target: &Digest) -> Result<Vec<Digest>, LatticeError> {
        if !self.blocks.contains_key(target) {
            return Err(LatticeError::UnknownBlock);
        }
        // Pre-check cementing across the whole dependency closure so the
        // operation is atomic.
        if self.rollback_touches_cemented(target) {
            return Err(LatticeError::Cemented);
        }
        let mut removed = Vec::new();
        self.rollback_inner(target, &mut removed);
        Ok(removed)
    }

    fn rollback_touches_cemented(&self, target: &Digest) -> bool {
        let mut stack = vec![*target];
        let mut seen = BTreeSet::new();
        while let Some(hash) = stack.pop() {
            if !seen.insert(hash) {
                continue;
            }
            if self.cemented.contains(&hash) {
                return true;
            }
            // Chain successor.
            if let Some(next) = self.successors.get(&hash) {
                stack.push(*next);
            }
            // Settlement dependency.
            if let Some(receive) = self.received.get(&hash) {
                stack.push(*receive);
            }
        }
        false
    }

    fn rollback_inner(&mut self, target: &Digest, removed: &mut Vec<Digest>) {
        let Some(block) = self.blocks.get(target) else {
            return; // already removed via another dependency path
        };
        let account = block.account;
        // Pop this account's head until `target` itself is popped.
        loop {
            let head = match self.accounts.get(&account) {
                Some(info) => info.head,
                None => return,
            };
            let done = head == *target;
            self.pop_head(account, removed);
            if done {
                return;
            }
        }
    }

    /// Removes the newest block of `account`, cascading into dependent
    /// receives. Caller has verified nothing cemented is affected.
    fn pop_head(&mut self, account: Address, removed: &mut Vec<Digest>) {
        let info = self.accounts[&account];
        let head = info.head;
        let block = self.blocks[&head].clone();

        match block.kind {
            BlockKind::Send { destination } => {
                if let Some(receive) = self.received.get(&head).copied() {
                    // The send was already settled: the receive (and its
                    // descendants) must go first.
                    self.rollback_inner(&receive, removed);
                    self.received.remove(&head);
                }
                self.pending.remove(&head);
                let _ = destination;
            }
            BlockKind::Receive { source } => {
                if !source.is_zero() {
                    // Restore the unsettled send.
                    let prev_balance = if block.is_first() {
                        0
                    } else {
                        self.blocks[&block.previous].balance
                    };
                    let amount = block.balance - prev_balance;
                    self.pending.insert(
                        source,
                        PendingInfo {
                            destination: account,
                            amount,
                        },
                    );
                    self.received.remove(&source);
                }
            }
            BlockKind::Change => {}
        }

        // Restore account info from the predecessor.
        self.shift_weight(&info.representative, info.balance, 0);
        if block.is_first() {
            self.accounts.remove(&account);
        } else {
            let prev = self.blocks[&block.previous].clone();
            self.shift_weight(&prev.representative, 0, prev.balance);
            let entry = self.accounts.get_mut(&account).expect("account exists");
            entry.head = block.previous;
            entry.balance = prev.balance;
            entry.representative = prev.representative;
            entry.block_count -= 1;
            self.successors.remove(&block.previous);
        }
        self.blocks.remove(&head);
        removed.push(head);
    }

    /// Sum of all account balances plus pending amounts — must always
    /// equal the total supply (the conservation invariant the property
    /// tests check).
    pub fn circulating_total(&self) -> u64 {
        let balances: u64 = self.accounts.values().map(|info| info.balance).sum();
        let parked: u64 = self.pending.values().map(|info| info.amount).sum();
        balances + parked
    }

    /// Total encoded bytes of every block — a *historical* node's
    /// ledger size (§V-B).
    pub fn total_bytes(&self) -> usize {
        self.blocks.values().map(|b| b.encoded_len()).sum()
    }

    /// Iterates an account's chain from its first block to the head.
    pub fn chain_of(&self, address: &Address) -> Vec<&LatticeBlock> {
        let Some(info) = self.accounts.get(address) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(info.block_count as usize);
        let mut cursor = info.head;
        loop {
            let block = &self.blocks[&cursor];
            out.push(block);
            if block.is_first() {
                break;
            }
            cursor = block.previous;
        }
        out.reverse();
        out
    }

    /// All open accounts with their summaries, sorted by address.
    pub fn accounts_iter(&self) -> Vec<(Address, &AccountInfo)> {
        let mut out: Vec<(Address, &AccountInfo)> =
            self.accounts.iter().map(|(a, i)| (*a, i)).collect();
        out.sort_by_key(|(a, _)| *a);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::NanoAccount;

    const BITS: u32 = 4;

    fn params() -> LatticeParams {
        LatticeParams {
            work_difficulty_bits: BITS,
            verify_signatures: true,
            verify_work: true,
        }
    }

    /// Genesis holder + ledger with the full supply.
    fn setup(supply: u64) -> (Lattice, NanoAccount) {
        let mut genesis = NanoAccount::from_seed([1u8; 32], 6, BITS);
        let block = genesis.genesis_block(supply);
        (Lattice::new(params(), block), genesis)
    }

    fn new_account(tag: u8) -> NanoAccount {
        NanoAccount::from_seed([tag; 32], 6, BITS)
    }

    #[test]
    fn genesis_establishes_supply_and_weight() {
        let (lattice, genesis) = setup(1_000_000);
        assert_eq!(lattice.total_supply(), 1_000_000);
        assert_eq!(lattice.balance(&genesis.address()), 1_000_000);
        assert_eq!(lattice.weight(&genesis.address()), 1_000_000);
        assert_eq!(lattice.block_count(), 1);
        assert_eq!(lattice.circulating_total(), 1_000_000);
        assert!(lattice.is_cemented(&lattice.genesis()));
    }

    #[test]
    fn send_parks_funds_then_receive_settles() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut bob = new_account(2);

        // Send: funds leave the sender and sit pending (unsettled).
        let send = genesis.send(bob.address(), 300).unwrap();
        let send_hash = lattice.process(send).unwrap();
        assert_eq!(lattice.balance(&genesis.address()), 700);
        assert_eq!(lattice.balance(&bob.address()), 0);
        assert_eq!(lattice.pending_count(), 1);
        assert!(!lattice.is_settled(&send_hash));
        assert_eq!(
            lattice.pending(&send_hash),
            Some(&PendingInfo {
                destination: bob.address(),
                amount: 300
            })
        );
        assert_eq!(lattice.circulating_total(), 1000);

        // Receive: bob's first block claims it; settled.
        let receive = bob.receive(send_hash, 300).unwrap();
        lattice.process(receive).unwrap();
        assert_eq!(lattice.balance(&bob.address()), 300);
        assert_eq!(lattice.pending_count(), 0);
        assert!(lattice.is_settled(&send_hash));
        assert_eq!(lattice.circulating_total(), 1000);
        // Bob's weight delegated to his rep (himself by default).
        assert_eq!(lattice.weight(&bob.address()), 300);
        assert_eq!(lattice.weight(&genesis.address()), 700);
    }

    #[test]
    fn offline_receiver_leaves_transfer_unsettled() {
        // "The downside of this approach is that a node has to be
        // online in order to receive a transaction."
        let (mut lattice, mut genesis) = setup(1000);
        let bob = new_account(3);
        let send = genesis.send(bob.address(), 100).unwrap();
        let send_hash = lattice.process(send).unwrap();
        // No receive ever issued: stays pending indefinitely.
        assert!(!lattice.is_settled(&send_hash));
        assert_eq!(lattice.pending_for(&bob.address()), vec![(send_hash, 100)]);
    }

    #[test]
    fn duplicate_rejected() {
        let (mut lattice, mut genesis) = setup(1000);
        let send = genesis.send(Address::from_label("x"), 1).unwrap();
        lattice.process(send.clone()).unwrap();
        assert_eq!(lattice.process(send), Err(LatticeError::Duplicate));
    }

    #[test]
    fn bad_work_rejected() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut send = genesis.send(Address::from_label("x"), 1).unwrap();
        send.work = send.work.wrapping_add(1); // almost surely invalid
        let result = lattice.process(send);
        assert!(matches!(
            result,
            Err(LatticeError::BadWork) | Ok(_) // astronomically unlikely Ok
        ));
    }

    #[test]
    fn bad_signature_rejected() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut send = genesis.send(Address::from_label("x"), 1).unwrap();
        send.balance += 1; // breaks both signature and semantics
                           // Recompute work so we hit the signature check, not the work
                           // check (hash changed => work root same, work still fine).
        assert_eq!(lattice.process(send), Err(LatticeError::BadSignature));
    }

    #[test]
    fn fork_detected_on_double_send() {
        // An attacker signs two different sends from the same chain
        // position (the §IV-B double-spend attempt).
        let (mut lattice, mut genesis) = setup(1000);
        let mut attacker_copy = genesis.fork_state();
        let honest = genesis.send(Address::from_label("honest"), 100).unwrap();
        let conflicting = attacker_copy
            .send(Address::from_label("attacker"), 900)
            .unwrap();
        let honest_hash = lattice.process(honest).unwrap();
        let result = lattice.process(conflicting);
        assert_eq!(
            result,
            Err(LatticeError::Fork {
                existing: honest_hash
            })
        );
    }

    #[test]
    fn gap_previous_detected() {
        let (mut lattice, mut genesis) = setup(1000);
        // Build two sends locally but only publish the second.
        let _unpublished = genesis.send(Address::from_label("a"), 10).unwrap();
        let second = genesis.send(Address::from_label("b"), 10).unwrap();
        assert_eq!(lattice.process(second), Err(LatticeError::GapPrevious));
    }

    #[test]
    fn receive_without_pending_rejected() {
        let (mut lattice, _genesis) = setup(1000);
        let mut bob = new_account(4);
        let fake = dlt_crypto::sha256::sha256(b"no such send");
        let receive = bob.receive(fake, 100).unwrap();
        assert_eq!(
            lattice.process(receive),
            Err(LatticeError::SourceNotPending)
        );
    }

    #[test]
    fn receive_to_wrong_account_rejected() {
        let (mut lattice, mut genesis) = setup(1000);
        let bob = new_account(5);
        let mut eve = new_account(6);
        let send = genesis.send(bob.address(), 100).unwrap();
        let send_hash = lattice.process(send).unwrap();
        // Eve tries to claim bob's pending send.
        let theft = eve.receive(send_hash, 100).unwrap();
        assert_eq!(lattice.process(theft), Err(LatticeError::SourceNotPending));
    }

    #[test]
    fn receive_amount_must_match() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut bob = new_account(7);
        let send = genesis.send(bob.address(), 100).unwrap();
        let send_hash = lattice.process(send).unwrap();
        let greedy = bob.receive(send_hash, 150).unwrap();
        assert_eq!(
            lattice.process(greedy),
            Err(LatticeError::ReceiveAmountMismatch)
        );
    }

    #[test]
    fn send_must_decrease_balance() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut send = genesis.send(Address::from_label("x"), 10).unwrap();
        // Tamper: zero-amount send (balance unchanged) — re-sign so we
        // reach the semantic check. Simpler: build via a fresh account
        // state claiming a higher balance is not possible through the
        // NanoAccount API, so tamper + expect BadSignature instead.
        send.balance = 1000;
        assert!(matches!(
            lattice.process(send),
            Err(LatticeError::BadSignature) | Err(LatticeError::SendAmountInvalid)
        ));
    }

    #[test]
    fn change_moves_weight_without_funds() {
        let (mut lattice, mut genesis) = setup(1000);
        let rep = Address::from_label("professional-rep");
        let change = genesis.change_representative(rep).unwrap();
        lattice.process(change).unwrap();
        assert_eq!(lattice.balance(&genesis.address()), 1000);
        assert_eq!(lattice.weight(&rep), 1000);
        assert_eq!(lattice.weight(&genesis.address()), 0);
    }

    #[test]
    fn rollback_restores_pending_and_balances() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut bob = new_account(8);
        let send = genesis.send(bob.address(), 100).unwrap();
        let send_hash = lattice.process(send).unwrap();
        let receive = bob.receive(send_hash, 100).unwrap();
        let receive_hash = lattice.process(receive).unwrap();
        assert_eq!(lattice.balance(&bob.address()), 100);

        // Roll back bob's receive: send becomes pending again.
        let removed = lattice.rollback(&receive_hash).unwrap();
        assert_eq!(removed, vec![receive_hash]);
        assert_eq!(lattice.balance(&bob.address()), 0);
        assert!(lattice.account(&bob.address()).is_none());
        assert!(!lattice.is_settled(&send_hash));
        assert_eq!(lattice.pending_count(), 1);
        assert_eq!(lattice.circulating_total(), 1000);
    }

    #[test]
    fn rollback_of_send_cascades_into_receive() {
        let (mut lattice, mut genesis) = setup(1000);
        let mut bob = new_account(9);
        let send = genesis.send(bob.address(), 100).unwrap();
        let send_hash = lattice.process(send).unwrap();
        let receive = bob.receive(send_hash, 100).unwrap();
        let receive_hash = lattice.process(receive).unwrap();

        let removed = lattice.rollback(&send_hash).unwrap();
        assert!(removed.contains(&send_hash));
        assert!(removed.contains(&receive_hash));
        assert_eq!(lattice.balance(&genesis.address()), 1000);
        assert_eq!(lattice.balance(&bob.address()), 0);
        assert_eq!(lattice.pending_count(), 0);
        assert_eq!(lattice.circulating_total(), 1000);
        // Weights restored too.
        assert_eq!(lattice.weight(&genesis.address()), 1000);
        assert_eq!(lattice.weight(&bob.address()), 0);
    }

    #[test]
    fn rollback_refused_for_cemented() {
        let (mut lattice, mut genesis) = setup(1000);
        let send = genesis.send(Address::from_label("x"), 10).unwrap();
        let send_hash = lattice.process(send).unwrap();
        lattice.cement(&send_hash).unwrap();
        assert_eq!(lattice.rollback(&send_hash), Err(LatticeError::Cemented));
        // Still present.
        assert!(lattice.contains(&send_hash));
    }

    #[test]
    fn cement_covers_ancestors() {
        let (mut lattice, mut genesis) = setup(1000);
        let s1 = genesis.send(Address::from_label("a"), 10).unwrap();
        let s1_hash = lattice.process(s1).unwrap();
        let s2 = genesis.send(Address::from_label("b"), 10).unwrap();
        let s2_hash = lattice.process(s2).unwrap();
        lattice.cement(&s2_hash).unwrap();
        assert!(lattice.is_cemented(&s1_hash));
        assert!(lattice.is_cemented(&s2_hash));
    }

    #[test]
    fn chain_of_returns_ordered_blocks() {
        let (mut lattice, mut genesis) = setup(1000);
        for i in 0..3 {
            let send = genesis
                .send(Address::from_label(&format!("t{i}")), 10)
                .unwrap();
            lattice.process(send).unwrap();
        }
        let chain = lattice.chain_of(&genesis.address());
        assert_eq!(chain.len(), 4); // genesis + 3 sends
        assert!(chain[0].is_first());
        for pair in chain.windows(2) {
            assert_eq!(pair[1].previous, pair[0].hash());
        }
    }

    #[test]
    fn many_accounts_conservation() {
        let (mut lattice, mut genesis) = setup(1_000_000);
        let mut accounts: Vec<NanoAccount> = (10..20).map(new_account).collect();
        // Fund everyone.
        for (i, account) in accounts.iter_mut().enumerate() {
            let amount = (i as u64 + 1) * 1000;
            let send = genesis.send(account.address(), amount).unwrap();
            let send_hash = lattice.process(send).unwrap();
            let receive = account.receive(send_hash, amount).unwrap();
            lattice.process(receive).unwrap();
        }
        // Shuffle money between them.
        for i in 0..accounts.len() {
            let j = (i + 3) % accounts.len();
            let to = accounts[j].address();
            let send = accounts[i].send(to, 100).unwrap();
            let send_hash = lattice.process(send).unwrap();
            let receive = accounts[j].receive(send_hash, 100).unwrap();
            lattice.process(receive).unwrap();
        }
        assert_eq!(lattice.circulating_total(), 1_000_000);
        assert_eq!(lattice.account_count(), 11);
        // Every block holds exactly one transaction — block count is
        // 1 (genesis) + 10*2 (funding) + 10*2 (shuffle).
        assert_eq!(lattice.block_count(), 41);
    }
}
