//! An account holder: builds signed, worked lattice blocks.
//!
//! "Users are obligated to order their own transactions" (§III-B) — a
//! [`NanoAccount`] is that user-side state: the keypair, the local view
//! of the chain head and balance, and the block construction logic
//! (including computing the anti-spam work for each block, which is
//! what couples "network usage and transaction verification" in §VI-B).

use dlt_crypto::keys::{Address, Keypair, PublicKey};
use dlt_crypto::Digest;

use crate::block::{BlockKind, LatticeBlock};

/// Why a block could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountBuildError {
    /// Balance cannot cover the send amount.
    InsufficientBalance,
    /// The account's one-time signature capacity is exhausted.
    KeyExhausted,
    /// A receive on a fresh account must be its first block; a
    /// non-first receive needs the chain opened first.
    NothingToReceive,
}

impl std::fmt::Display for AccountBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            AccountBuildError::InsufficientBalance => "insufficient balance",
            AccountBuildError::KeyExhausted => "account key exhausted",
            AccountBuildError::NothingToReceive => "nothing to receive",
        };
        f.write_str(text)
    }
}

impl std::error::Error for AccountBuildError {}

/// A user's account: keypair plus local chain state.
#[derive(Debug, Clone)]
pub struct NanoAccount {
    keypair: Keypair,
    head: Digest,
    balance: u64,
    representative: Address,
    difficulty_bits: u32,
}

impl NanoAccount {
    /// Derives an account from a seed. `height` bounds lifetime
    /// signatures at `2^height`; `difficulty_bits` is the anti-spam
    /// work the network demands per block.
    pub fn from_seed(seed: [u8; 32], height: u32, difficulty_bits: u32) -> Self {
        let keypair = Keypair::mss_from_seed(seed, height);
        let representative = keypair.address(); // self-represent by default
        NanoAccount {
            keypair,
            head: Digest::ZERO,
            balance: 0,
            representative,
            difficulty_bits,
        }
    }

    /// The account's address.
    pub fn address(&self) -> Address {
        self.keypair.address()
    }

    /// The account's public key.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public_key()
    }

    /// The local view of the chain head (zero before the first block).
    pub fn head(&self) -> Digest {
        self.head
    }

    /// The local balance.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// The current representative choice.
    pub fn representative(&self) -> Address {
        self.representative
    }

    /// Remaining signatures before the key exhausts.
    pub fn remaining_signatures(&self) -> u32 {
        self.keypair.remaining().unwrap_or(u32::MAX)
    }

    /// Clones the account state — the tool an *attacker* (or test)
    /// uses to sign two different blocks for the same chain position,
    /// i.e. to manufacture the forks of §IV-B.
    pub fn fork_state(&self) -> NanoAccount {
        self.clone()
    }

    /// Changes which representative future blocks delegate to (takes
    /// effect on the next block; issue `change_representative` to apply
    /// it immediately).
    pub fn set_representative(&mut self, rep: Address) {
        self.representative = rep;
    }

    fn build(
        &mut self,
        kind: BlockKind,
        new_balance: u64,
    ) -> Result<LatticeBlock, AccountBuildError> {
        let mut block = LatticeBlock {
            account: self.address(),
            account_key: self.public_key(),
            previous: self.head,
            representative: self.representative,
            balance: new_balance,
            kind,
            work: 0,
            signature: dlt_crypto::keys::Signature::Mss(
                dlt_crypto::mss::MssKeypair::from_seed([0u8; 32], 1)
                    .sign(&Digest::ZERO)
                    .expect("fresh throwaway key"),
            ),
        };
        let hash = block.hash();
        block.signature = self
            .keypair
            .sign(&hash)
            .map_err(|_| AccountBuildError::KeyExhausted)?;
        block.work = LatticeBlock::compute_work(&block.work_root(), self.difficulty_bits);
        self.head = hash;
        self.balance = new_balance;
        Ok(block)
    }

    /// The genesis block: a receive-from-nowhere minting `supply`.
    ///
    /// # Panics
    ///
    /// Panics if this account has already issued blocks.
    pub fn genesis_block(&mut self, supply: u64) -> LatticeBlock {
        assert!(self.head.is_zero(), "genesis must be the first block");
        self.build(
            BlockKind::Receive {
                source: Digest::ZERO,
            },
            supply,
        )
        .expect("fresh key signs the genesis")
    }

    /// Builds a send of `amount` to `destination` (Fig. 3 "S").
    ///
    /// # Errors
    ///
    /// [`AccountBuildError::InsufficientBalance`] or
    /// [`AccountBuildError::KeyExhausted`].
    pub fn send(
        &mut self,
        destination: Address,
        amount: u64,
    ) -> Result<LatticeBlock, AccountBuildError> {
        if amount == 0 || amount > self.balance {
            return Err(AccountBuildError::InsufficientBalance);
        }
        let new_balance = self.balance - amount;
        self.build(BlockKind::Send { destination }, new_balance)
    }

    /// Builds the receive claiming a pending send of `amount`
    /// (Fig. 3 "R"); opens the account chain if this is its first
    /// block.
    ///
    /// # Errors
    ///
    /// [`AccountBuildError::KeyExhausted`].
    pub fn receive(
        &mut self,
        source: Digest,
        amount: u64,
    ) -> Result<LatticeBlock, AccountBuildError> {
        let new_balance = self.balance + amount;
        self.build(BlockKind::Receive { source }, new_balance)
    }

    /// Builds a representative change block (§III-B: a representative
    /// "can be changed over time").
    ///
    /// # Errors
    ///
    /// [`AccountBuildError::KeyExhausted`].
    pub fn change_representative(
        &mut self,
        representative: Address,
    ) -> Result<LatticeBlock, AccountBuildError> {
        self.representative = representative;
        self.build(BlockKind::Change, self.balance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account(tag: u8) -> NanoAccount {
        NanoAccount::from_seed([tag; 32], 3, 2)
    }

    #[test]
    fn genesis_block_shape() {
        let mut genesis = account(1);
        let block = genesis.genesis_block(500);
        assert!(block.is_first());
        assert_eq!(block.balance, 500);
        assert!(matches!(block.kind, BlockKind::Receive { source } if source.is_zero()));
        assert!(block.work_valid(2));
        assert!(block.signature.verify(&block.hash(), &block.account_key));
        assert_eq!(genesis.balance(), 500);
        assert_eq!(genesis.head(), block.hash());
    }

    #[test]
    fn send_decrements_local_balance_and_links_chain() {
        let mut genesis = account(2);
        let g = genesis.genesis_block(100);
        let send = genesis.send(Address::from_label("x"), 30).unwrap();
        assert_eq!(send.previous, g.hash());
        assert_eq!(send.balance, 70);
        assert_eq!(genesis.balance(), 70);
    }

    #[test]
    fn overspend_refused() {
        let mut genesis = account(3);
        genesis.genesis_block(10);
        assert_eq!(
            genesis.send(Address::from_label("x"), 11),
            Err(AccountBuildError::InsufficientBalance)
        );
        assert_eq!(
            genesis.send(Address::from_label("x"), 0),
            Err(AccountBuildError::InsufficientBalance)
        );
    }

    #[test]
    fn key_exhaustion_reported() {
        let mut tiny = NanoAccount::from_seed([4u8; 32], 1, 2); // 2 sigs
        tiny.genesis_block(100);
        tiny.send(Address::from_label("a"), 1).unwrap();
        assert_eq!(
            tiny.send(Address::from_label("b"), 1),
            Err(AccountBuildError::KeyExhausted)
        );
    }

    #[test]
    fn fork_state_produces_conflicting_blocks() {
        let mut honest = account(5);
        honest.genesis_block(100);
        let mut evil = honest.fork_state();
        let a = honest.send(Address::from_label("a"), 10).unwrap();
        let b = evil.send(Address::from_label("b"), 20).unwrap();
        assert_eq!(a.previous, b.previous);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn representative_persists_across_blocks() {
        let mut acct = account(6);
        acct.genesis_block(100);
        let rep = Address::from_label("rep");
        let change = acct.change_representative(rep).unwrap();
        assert_eq!(change.representative, rep);
        let send = acct.send(Address::from_label("x"), 1).unwrap();
        assert_eq!(send.representative, rep);
    }
}
