//! Node roles and DAG ledger-size accounting (paper §V-B).
//!
//! "Nano distinguishes between three types of nodes: *historical* which
//! keep record of all transactions, *current* which keep only the head
//! of account-chains, and *light* that do not hold any ledger data."
//!
//! Because account chains record balances rather than unspent inputs,
//! "all other historical data can be discarded to decrease ledger
//! size" — a current node needs only each account's head block (plus
//! the pending map) to validate everything that comes next.

use dlt_crypto::codec::Encode;

use crate::lattice::Lattice;

/// The §V-B node role taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Keeps every block since genesis.
    Historical,
    /// Keeps only account heads, summaries and the pending map.
    Current,
    /// Keeps no ledger data; observes or creates transactions only.
    Light,
}

/// Per-account bookkeeping overhead a current node stores besides the
/// head block: address, head/open hashes, balance, count,
/// representative.
const ACCOUNT_INFO_BYTES: usize = 32 + 32 + 32 + 8 + 8 + 32;

/// Bytes per pending-map entry: send hash, destination, amount.
const PENDING_ENTRY_BYTES: usize = 32 + 32 + 8;

/// Ledger bytes a node of the given role must store.
pub fn ledger_size(lattice: &Lattice, role: NodeRole) -> usize {
    match role {
        NodeRole::Historical => {
            lattice.total_bytes() + lattice.pending_count() * PENDING_ENTRY_BYTES
        }
        NodeRole::Current => {
            let heads: usize = lattice
                .accounts_iter()
                .iter()
                .map(|(_, info)| {
                    let head_block = lattice
                        .block(&info.head)
                        .expect("heads are stored")
                        .encoded_len();
                    head_block + ACCOUNT_INFO_BYTES
                })
                .sum();
            heads + lattice.pending_count() * PENDING_ENTRY_BYTES
        }
        NodeRole::Light => 0,
    }
}

/// A size comparison across the three roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagStorageReport {
    /// Total blocks in the ledger.
    pub blocks: usize,
    /// Open accounts.
    pub accounts: usize,
    /// Bytes a historical node stores.
    pub historical_bytes: usize,
    /// Bytes a current node stores.
    pub current_bytes: usize,
}

impl DagStorageReport {
    /// Measures a ledger.
    pub fn measure(lattice: &Lattice) -> Self {
        DagStorageReport {
            blocks: lattice.block_count(),
            accounts: lattice.account_count(),
            historical_bytes: ledger_size(lattice, NodeRole::Historical),
            current_bytes: ledger_size(lattice, NodeRole::Current),
        }
    }

    /// Fraction of the historical size a current node saves.
    pub fn pruning_savings(&self) -> f64 {
        if self.historical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.current_bytes as f64 / self.historical_bytes as f64
    }
}

impl std::fmt::Display for DagStorageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "blocks={} accounts={} historical={}B current={}B savings={:.1}%",
            self.blocks,
            self.accounts,
            self.historical_bytes,
            self.current_bytes,
            self.pruning_savings() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::NanoAccount;
    use crate::lattice::LatticeParams;
    use dlt_crypto::keys::Address;

    fn busy_lattice(traffic_rounds: usize) -> Lattice {
        let params = LatticeParams {
            work_difficulty_bits: 2,
            verify_signatures: true,
            verify_work: true,
        };
        let mut genesis = NanoAccount::from_seed([1u8; 32], 8, 2);
        let mut lattice = Lattice::new(params, genesis.genesis_block(1_000_000));
        let mut bob = NanoAccount::from_seed([2u8; 32], 8, 2);
        // Open bob.
        let send = genesis.send(bob.address(), 10_000).unwrap();
        let hash = lattice.process(send).unwrap();
        lattice.process(bob.receive(hash, 10_000).unwrap()).unwrap();
        // Traffic: genesis -> bob repeatedly.
        for _ in 0..traffic_rounds {
            let send = genesis.send(bob.address(), 10).unwrap();
            let hash = lattice.process(send).unwrap();
            lattice.process(bob.receive(hash, 10).unwrap()).unwrap();
        }
        lattice
    }

    #[test]
    fn light_stores_nothing() {
        let lattice = busy_lattice(5);
        assert_eq!(ledger_size(&lattice, NodeRole::Light), 0);
    }

    #[test]
    fn current_is_much_smaller_than_historical() {
        let lattice = busy_lattice(20);
        let report = DagStorageReport::measure(&lattice);
        assert!(report.current_bytes < report.historical_bytes / 5);
        assert!(report.pruning_savings() > 0.8);
        assert_eq!(report.accounts, 2);
        assert_eq!(report.blocks, 1 + 2 + 40);
    }

    #[test]
    fn historical_grows_with_traffic_current_does_not() {
        let small = DagStorageReport::measure(&busy_lattice(5));
        let large = DagStorageReport::measure(&busy_lattice(50));
        assert!(large.historical_bytes > small.historical_bytes * 3);
        // Current size is per-account, not per-transaction.
        let ratio = large.current_bytes as f64 / small.current_bytes as f64;
        assert!(ratio < 1.5, "current size nearly flat (ratio {ratio})");
    }

    #[test]
    fn pending_entries_count_for_both_roles() {
        let params = LatticeParams {
            work_difficulty_bits: 2,
            verify_signatures: true,
            verify_work: true,
        };
        let mut genesis = NanoAccount::from_seed([3u8; 32], 6, 2);
        let mut lattice = Lattice::new(params, genesis.genesis_block(1_000));
        let before = ledger_size(&lattice, NodeRole::Current);
        // An unreceived send adds a pending entry.
        let send = genesis.send(Address::from_label("offline"), 10).unwrap();
        lattice.process(send).unwrap();
        let after = ledger_size(&lattice, NodeRole::Current);
        assert!(after > before);
    }

    #[test]
    fn display_report() {
        let report = DagStorageReport::measure(&busy_lattice(3));
        assert!(report.to_string().contains("savings="));
    }
}
