//! Transaction-rate models (paper §VI).
//!
//! The paper's throughput numbers are all block-capacity arithmetic:
//!
//! * Bitcoin: "a block is mined roughly every 10 minutes with a maximum
//!   block size of 1 MB, thereby limiting the Bitcoin transaction rate
//!   to between 3 and 7 transactions per second, depending on the size
//!   of individual transactions";
//! * Ethereum: "a block is mined roughly every 15 seconds" with a gas
//!   limit, giving "roughly between 7 to 15 transactions per second",
//!   dropping to ~4-second blocks under PoS;
//! * Visa processes 56 000 TPS (the centralised reference line);
//! * Nano has "no inherent cap in the transaction throughput in the
//!   protocol itself", but measured 306 TPS peak / 105.75 TPS average,
//!   "determined by the quality of consumer grade hardware and network
//!   conditions".
//!
//! [`blockchain_tps`] is that arithmetic; [`NanoThroughputModel`]
//! expresses the hardware/network-bound model; the `e09` experiment
//! *measures* all of them on the real implementations and checks the
//! shapes match these closed forms.

/// Visa's throughput, the paper's centralised-payment reference.
pub const VISA_TPS: f64 = 56_000.0;

/// Transactions per second of a chain that produces a block of
/// `block_capacity` weight units every `block_interval_secs`, carrying
/// transactions of `avg_tx_weight` weight units.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn blockchain_tps(block_capacity: f64, avg_tx_weight: f64, block_interval_secs: f64) -> f64 {
    assert!(block_capacity > 0.0 && avg_tx_weight > 0.0 && block_interval_secs > 0.0);
    (block_capacity / avg_tx_weight) / block_interval_secs
}

/// The Bitcoin-parameter TPS range for a span of transaction sizes
/// (the paper's "3 to 7 depending on the size of individual
/// transactions": ~250-byte and ~550-byte transactions in a 1 MB /
/// 600 s block).
pub fn bitcoin_tps_range() -> (f64, f64) {
    let low = blockchain_tps(1_000_000.0, 550.0, 600.0);
    let high = blockchain_tps(1_000_000.0, 250.0, 600.0);
    (low, high)
}

/// The Ethereum-parameter TPS range (8M gas / 15 s blocks; plain
/// transfers cost 21k gas, average mainnet transactions of the paper's
/// era ~50k gas).
pub fn ethereum_tps_range() -> (f64, f64) {
    let low = blockchain_tps(8_000_000.0, 50_000.0, 15.0);
    let high = blockchain_tps(8_000_000.0, 21_000.0, 15.0);
    (low, high)
}

/// Ethereum-under-PoS TPS (the paper: "should decrease Ethereum's block
/// generation time to 4 seconds or lower").
pub fn ethereum_pos_tps(avg_tx_gas: f64) -> f64 {
    blockchain_tps(8_000_000.0, avg_tx_gas, 4.0)
}

/// Nano's throughput model: protocol-uncapped, bounded by node hardware
/// and network, per §VI-B.
#[derive(Debug, Clone, Copy)]
pub struct NanoThroughputModel {
    /// Blocks per second one consumer-grade node can verify and store
    /// (signature checks dominate).
    pub node_processing_bps: f64,
    /// Blocks per second the node's link can gossip.
    pub network_bps: f64,
}

impl NanoThroughputModel {
    /// The effective transfer rate: a *transfer* needs a send **and** a
    /// receive block (Fig. 3), and the node is limited by the slower of
    /// CPU and network.
    pub fn transfers_per_second(&self) -> f64 {
        self.node_processing_bps.min(self.network_bps) / 2.0
    }

    /// The paper's measured reference points: 306 TPS peak,
    /// 105.75 TPS average on the 2018 main network.
    pub fn paper_reference() -> (f64, f64) {
        (306.0, 105.75)
    }
}

/// How a saturated chain's pending backlog grows: offered load beyond
/// capacity accumulates (§VI's "186,951 pending transactions in the
/// Bitcoin network").
pub fn backlog_after(offered_tps: f64, capacity_tps: f64, seconds: f64) -> f64 {
    ((offered_tps - capacity_tps) * seconds).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcoin_range_matches_paper() {
        let (low, high) = bitcoin_tps_range();
        assert!((3.0..=4.0).contains(&low), "low {low}");
        assert!((6.0..=7.0).contains(&high), "high {high}");
    }

    #[test]
    fn ethereum_range_matches_paper() {
        let (low, high) = ethereum_tps_range();
        assert!((7.0..=12.0).contains(&low), "low {low}");
        assert!((15.0..=30.0).contains(&high), "high {high}");
    }

    #[test]
    fn pos_speedup() {
        // 15 s -> 4 s blocks: 3.75x the PoW rate at equal gas.
        let pow = blockchain_tps(8_000_000.0, 50_000.0, 15.0);
        let pos = ethereum_pos_tps(50_000.0);
        assert!((pos / pow - 3.75).abs() < 1e-9);
    }

    #[test]
    fn visa_dwarfs_both() {
        let (_, btc_high) = bitcoin_tps_range();
        let (_, eth_high) = ethereum_tps_range();
        assert!(VISA_TPS / btc_high > 5_000.0);
        assert!(VISA_TPS / eth_high > 1_000.0);
    }

    #[test]
    fn bigger_blocks_increase_tps_linearly() {
        let base = blockchain_tps(1_000_000.0, 250.0, 600.0);
        let double = blockchain_tps(2_000_000.0, 250.0, 600.0);
        assert!((double / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nano_model_is_hardware_bound() {
        let cpu_bound = NanoThroughputModel {
            node_processing_bps: 200.0,
            network_bps: 10_000.0,
        };
        assert_eq!(cpu_bound.transfers_per_second(), 100.0);
        let net_bound = NanoThroughputModel {
            node_processing_bps: 10_000.0,
            network_bps: 600.0,
        };
        assert_eq!(net_bound.transfers_per_second(), 300.0);
        // Paper's measured peak ~306 TPS corresponds to ~612 blocks/s
        // of effective capacity.
        let (peak, avg) = NanoThroughputModel::paper_reference();
        assert!(peak > avg);
    }

    #[test]
    fn backlog_growth() {
        assert_eq!(backlog_after(10.0, 7.0, 100.0), 300.0);
        assert_eq!(backlog_after(5.0, 7.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_args_rejected() {
        blockchain_tps(0.0, 1.0, 1.0);
    }
}
