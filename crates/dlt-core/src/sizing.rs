//! Ledger-size accounting and growth projection (paper §V).
//!
//! The paper reports point-in-time sizes: Bitcoin 145.95 GB, Ethereum
//! 39.62 GB, Nano 3.42 GB at ~6,700,078 blocks. Absolute numbers depend
//! on each network's age and traffic; what a reproduction can and
//! should recover is the *mechanism*: size grows linearly in
//! transaction count with a per-transaction footprint set by the data
//! structures, and pruning trades history for a bounded working set.
//!
//! [`GrowthModel`] projects size from a measured per-transaction
//! footprint; [`paper_reported_sizes`] pins the paper's reference
//! points for the experiment tables.

/// The paper's reported ledger sizes (§V), in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperSizes {
    /// Bitcoin, 2018-01-02.
    pub bitcoin_bytes: f64,
    /// Ethereum, 2018-01-02.
    pub ethereum_bytes: f64,
    /// Nano, 2018-02-25.
    pub nano_bytes: f64,
    /// Nano's block count at that size.
    pub nano_blocks: f64,
}

/// The §V reference points.
pub fn paper_reported_sizes() -> PaperSizes {
    PaperSizes {
        bitcoin_bytes: 145.95e9,
        ethereum_bytes: 39.62e9,
        nano_bytes: 3.42e9,
        nano_blocks: 6_700_078.0,
    }
}

/// Linear ledger-growth model: `size = genesis + per_tx × txs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthModel {
    /// Fixed overhead (genesis, headers amortised in `per_tx_bytes`).
    pub base_bytes: f64,
    /// Marginal bytes per transaction (measured on the implementation).
    pub per_tx_bytes: f64,
}

impl GrowthModel {
    /// Fits the model from two measurements `(txs, bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the two measurements have the same transaction count.
    pub fn fit(a: (f64, f64), b: (f64, f64)) -> Self {
        assert!(a.0 != b.0, "need two distinct transaction counts");
        let per_tx_bytes = (b.1 - a.1) / (b.0 - a.0);
        GrowthModel {
            base_bytes: a.1 - per_tx_bytes * a.0,
            per_tx_bytes,
        }
    }

    /// Projected size after `txs` transactions.
    pub fn size_at(&self, txs: f64) -> f64 {
        self.base_bytes + self.per_tx_bytes * txs
    }

    /// Transactions until the ledger reaches `bytes`.
    pub fn txs_until(&self, bytes: f64) -> f64 {
        ((bytes - self.base_bytes) / self.per_tx_bytes).max(0.0)
    }

    /// Projected size after running at `tps` for `days`.
    pub fn size_after_days(&self, tps: f64, days: f64) -> f64 {
        self.size_at(tps * 86_400.0 * days)
    }
}

/// Annual growth in bytes for a sustained transaction rate.
pub fn annual_growth_bytes(per_tx_bytes: f64, tps: f64) -> f64 {
    per_tx_bytes * tps * 86_400.0 * 365.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_ordering() {
        let sizes = paper_reported_sizes();
        assert!(sizes.bitcoin_bytes > sizes.ethereum_bytes);
        assert!(sizes.ethereum_bytes > sizes.nano_bytes);
        // Nano per-block footprint implied by the paper: ~510 B.
        let per_block = sizes.nano_bytes / sizes.nano_blocks;
        assert!((450.0..600.0).contains(&per_block), "{per_block}");
    }

    #[test]
    fn fit_recovers_line() {
        let model = GrowthModel::fit((100.0, 1_500.0), (200.0, 2_500.0));
        assert!((model.per_tx_bytes - 10.0).abs() < 1e-9);
        assert!((model.base_bytes - 500.0).abs() < 1e-9);
        assert!((model.size_at(300.0) - 3_500.0).abs() < 1e-9);
        assert!((model.txs_until(3_500.0) - 300.0).abs() < 1e-6);
    }

    #[test]
    fn projection_grows_with_time() {
        let model = GrowthModel {
            base_bytes: 0.0,
            per_tx_bytes: 500.0,
        };
        let one_year = model.size_after_days(7.0, 365.0);
        // 7 TPS * 500 B ≈ 110 GB/year — Bitcoin-like scale.
        assert!(one_year > 100e9 && one_year < 120e9, "{one_year}");
        assert!((annual_growth_bytes(500.0, 7.0) - one_year).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "distinct transaction counts")]
    fn fit_rejects_degenerate() {
        GrowthModel::fit((100.0, 1.0), (100.0, 2.0));
    }
}
