//! The comparison layer of `dlt-compare` — the paper's actual
//! contribution, as an executable framework.
//!
//! The paper compares blockchain (Bitcoin, Ethereum) and DAG (Nano)
//! ledgers along five axes; every axis has a module here that drives
//! the concrete implementations from the substrate crates and produces
//! the corresponding quantitative comparison:
//!
//! * [`ledger`] — the unified [`DistributedLedger`](ledger::DistributedLedger)
//!   abstraction with adapters for all three reference implementations,
//!   plus the identical-workload scenario runner (§II, §V, §VI).
//! * [`confidence`] — transaction-confirmation confidence (§IV):
//!   the Nakamoto double-spend race, analytically and by Monte-Carlo,
//!   and the depth tables behind "six for Bitcoin, five to eleven for
//!   Ethereum".
//! * [`throughput`] — transaction-rate models (§VI): block-capacity
//!   arithmetic for Bitcoin/Ethereum, the Visa reference line, and
//!   Nano's hardware-limited asynchronous model.
//! * [`sizing`] — ledger-growth accounting and projections (§V).
//! * [`energy`] — hash-attempts-per-transaction accounting (§III-A-2's
//!   PoW-vs-PoS energy argument, extended to Nano's anti-spam work).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod energy;
pub mod ledger;
pub mod sizing;
pub mod throughput;
