//! Confirmation confidence (paper §IV-A).
//!
//! "As the chain increases in length over the referent block, the
//! probability of the block being discarded decreases. Depending on the
//! implementation, there is a suggested number of blocks that need to
//! be appended above the referent one before it is safe to say that it
//! will remain in the chain with great certainty. Six for Bitcoin and
//! five to eleven for Ethereum."
//!
//! This module quantifies that: [`revert_probability`] is the
//! Nakamoto double-spend race analysis (the probability an attacker
//! controlling a fraction `q` of the hash power ever overtakes a block
//! buried `z` deep), [`depth_for_risk`] inverts it into the suggested
//! confirmation count, and [`simulate_race`] cross-validates the
//! analytic with a Monte-Carlo mining race on the sampled PoW backend.

use dlt_sim::rng::SimRng;

/// Probability that an attacker with hash-power share `q` eventually
/// replaces a block that is `z` confirmations deep (Nakamoto 2008,
/// section 11, with the Poisson-mixture correction).
///
/// Returns 1.0 whenever `q ≥ 0.5` — a majority attacker always wins.
///
/// # Panics
///
/// Panics unless `0 ≤ q ≤ 1`.
pub fn revert_probability(q: f64, z: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q is a probability");
    if q <= 0.0 {
        return 0.0;
    }
    let p = 1.0 - q;
    if q >= p {
        return 1.0;
    }
    if z == 0 {
        return 1.0; // an unburied block can always be raced
    }
    // Attacker progress while the honest chain mined z blocks is
    // Poisson with λ = z·q/p; if the attacker is k behind, they catch
    // up with probability (q/p)^k.
    let lambda = z as f64 * q / p;
    let ratio = q / p;
    let mut sum = 0.0;
    let mut poisson = (-lambda).exp(); // P(k = 0)
    for k in 0..=z {
        // Nakamoto's formulation: with the attacker k blocks along
        // while the honest chain mined z, the attacker must still make
        // up z − k; the gambler's-ruin catch-up probability is
        // (q/p)^(z−k).
        let catch_up = ratio.powi((z - k) as i32);
        sum += poisson * (1.0 - catch_up);
        poisson *= lambda / (k as f64 + 1.0);
    }
    (1.0 - sum).clamp(0.0, 1.0)
}

/// The smallest confirmation depth `z` such that
/// `revert_probability(q, z) < risk`. Returns `None` when no finite
/// depth suffices (`q ≥ 0.5`).
///
/// # Panics
///
/// Panics unless `0 < risk < 1`.
pub fn depth_for_risk(q: f64, risk: f64) -> Option<u32> {
    assert!(risk > 0.0 && risk < 1.0, "risk is a probability");
    if q >= 0.5 {
        return None;
    }
    (0..=10_000).find(|&z| revert_probability(q, z) < risk)
}

/// Result of a Monte-Carlo double-spend race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceOutcome {
    /// Fraction of trials the attacker won.
    pub attacker_win_rate: f64,
    /// Trials run.
    pub trials: u32,
}

/// Simulates `trials` double-spend races: honest miners (share `1−q`)
/// must extend the chain by `z` while the attacker (share `q`) secretly
/// mines a replacement branch; the attacker keeps mining until they
/// lead or fall hopelessly behind (`give_up_deficit`).
///
/// Block arrivals use the memoryless property: each next block is the
/// attacker's with probability `q`. This is exactly the sampled-PoW
/// model's race, so agreement with [`revert_probability`] validates
/// both (the `e05` ablation).
pub fn simulate_race(
    q: f64,
    z: u32,
    trials: u32,
    give_up_deficit: i64,
    rng: &mut SimRng,
) -> RaceOutcome {
    assert!((0.0..1.0).contains(&q), "q in [0, 1)");
    let mut wins = 0u32;
    for _ in 0..trials {
        // Phase 1: honest chain accumulates z blocks; attacker mines
        // in parallel (starting one behind the block being attacked,
        // pre-mining their alternative).
        let mut attacker: i64 = 0;
        let mut honest: i64 = 0;
        while honest < z as i64 {
            if rng.chance(q) {
                attacker += 1;
            } else {
                honest += 1;
            }
        }
        // Phase 2: the attacker must make up the remaining deficit
        // (Nakamoto counts catching up to a tie as success — from a tie
        // the attacker releases the longer private branch first).
        let mut deficit = honest - attacker;
        loop {
            if deficit <= 0 {
                wins += 1;
                break;
            }
            if deficit > give_up_deficit {
                break;
            }
            if rng.chance(q) {
                deficit -= 1;
            } else {
                deficit += 1;
            }
        }
    }
    RaceOutcome {
        attacker_win_rate: wins as f64 / trials as f64,
        trials,
    }
}

/// A row of the §IV-A confidence table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceRow {
    /// Attacker hash-power share.
    pub attacker_share: f64,
    /// Revert probability at 1, 6 and 12 confirmations.
    pub p_revert_1: f64,
    /// Revert probability at 6 confirmations (Bitcoin's rule).
    pub p_revert_6: f64,
    /// Revert probability at 12 confirmations.
    pub p_revert_12: f64,
    /// Depth needed for <0.1% revert risk.
    pub depth_for_01pct: Option<u32>,
}

/// Builds the confidence table over a sweep of attacker shares.
pub fn confidence_table(shares: &[f64]) -> Vec<ConfidenceRow> {
    shares
        .iter()
        .map(|&q| ConfidenceRow {
            attacker_share: q,
            p_revert_1: revert_probability(q, 1),
            p_revert_6: revert_probability(q, 6),
            p_revert_12: revert_probability(q, 12),
            depth_for_01pct: depth_for_risk(q, 0.001),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_attacker_never_reverts() {
        assert_eq!(revert_probability(0.0, 6), 0.0);
        assert_eq!(depth_for_risk(0.0, 0.001), Some(0));
    }

    #[test]
    fn majority_attacker_always_reverts() {
        assert_eq!(revert_probability(0.5, 100), 1.0);
        assert_eq!(revert_probability(0.7, 1000), 1.0);
        assert_eq!(depth_for_risk(0.5, 0.001), None);
    }

    #[test]
    fn probability_decreases_with_depth() {
        let q = 0.2;
        let mut prev = 1.0;
        for z in 1..30 {
            let p = revert_probability(q, z);
            assert!(p <= prev + 1e-12, "z={z}: {p} > {prev}");
            prev = p;
        }
        assert!(prev < 1e-3);
    }

    #[test]
    fn probability_increases_with_attacker_share() {
        let z = 6;
        let mut prev = 0.0;
        for q10 in 1..50 {
            let q = q10 as f64 / 100.0;
            let p = revert_probability(q, z);
            assert!(p >= prev, "q={q}");
            prev = p;
        }
    }

    #[test]
    fn nakamoto_table_reproduced() {
        // The canonical table from the Bitcoin paper (§11): depth needed
        // for P < 0.1%.
        let expected = [
            (0.10, 5),
            (0.15, 8),
            (0.20, 11),
            (0.25, 15),
            (0.30, 24),
            (0.35, 41),
            (0.40, 89),
            (0.45, 340),
        ];
        for (q, z) in expected {
            assert_eq!(depth_for_risk(q, 0.001), Some(z), "q={q} should need z={z}");
        }
    }

    #[test]
    fn six_confirmations_rationale() {
        // The paper's "six for Bitcoin" convention corresponds to a
        // ~10% attacker: at z=6 the revert probability is well under 1%.
        let p = revert_probability(0.10, 6);
        assert!(p < 0.001, "p {p}");
        // Against a 30% attacker six is NOT enough:
        assert!(revert_probability(0.30, 6) > 0.1);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic() {
        // The Monte-Carlo race samples the attacker's head start from
        // the exact negative-binomial distribution, whereas Nakamoto's
        // closed form approximates it as Poisson; the approximation is
        // known to slightly *underestimate* the attacker (Rosenfeld
        // 2014). The simulation must therefore sit at or a little above
        // the analytic value, never meaningfully below it.
        let mut rng = SimRng::new(11);
        for (q, z) in [(0.1, 2u32), (0.2, 4), (0.3, 6)] {
            let analytic = revert_probability(q, z);
            let simulated = simulate_race(q, z, 20_000, 60, &mut rng).attacker_win_rate;
            assert!(
                simulated > analytic - 0.01,
                "q={q} z={z}: simulated {simulated} below analytic {analytic}"
            );
            assert!(
                simulated - analytic < 0.05,
                "q={q} z={z}: simulated {simulated} far above analytic {analytic}"
            );
        }
    }

    #[test]
    fn table_rows_are_consistent() {
        let table = confidence_table(&[0.1, 0.25, 0.45]);
        assert_eq!(table.len(), 3);
        for row in &table {
            assert!(row.p_revert_1 >= row.p_revert_6);
            assert!(row.p_revert_6 >= row.p_revert_12);
        }
        assert!(table[0].depth_for_01pct.unwrap() < table[2].depth_for_01pct.unwrap());
    }

    #[test]
    fn depth_zero_block_always_at_risk() {
        assert_eq!(revert_probability(0.1, 0), 1.0);
    }
}
