//! Energy accounting: hash attempts per confirmed transaction
//! (paper §III-A-2).
//!
//! "PoS … consumes far less electricity than PoW. For example, based on
//! a recent analysis, Bitcoin mining consumes more electricity in a
//! year than a selected set of 159 countries."
//!
//! Hash attempts are the simulator's energy proxy: every SHA-256
//! evaluation costs the same joules regardless of who computes it, so
//! the *ratio* of attempts per confirmed transaction across consensus
//! mechanisms is exactly the paper's electricity argument. Experiment
//! `e15` measures these on the implementations; this module holds the
//! closed forms they must match.

/// Expected hash attempts per transaction for a PoW chain: the whole
/// network grinds `difficulty` expected attempts per block regardless
/// of how many transactions the block carries.
pub fn pow_attempts_per_tx(difficulty: u64, txs_per_block: u64) -> f64 {
    difficulty as f64 / txs_per_block.max(1) as f64
}

/// Attempts per transaction under PoS: proposer election is one hash
/// evaluation per slot — no grinding. (Validators still hash to verify,
/// linear in transactions, identical across all designs.)
pub fn pos_attempts_per_tx(txs_per_block: u64) -> f64 {
    1.0 / txs_per_block.max(1) as f64
}

/// Attempts per *transfer* for Nano's anti-spam work: a transfer is a
/// send plus a receive, each expecting `2^difficulty_bits` attempts.
pub fn nano_attempts_per_transfer(difficulty_bits: u32) -> f64 {
    2.0 * (2.0f64).powi(difficulty_bits as i32)
}

/// A row of the energy comparison table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyRow {
    /// Mechanism label.
    pub mechanism: &'static str,
    /// Expected hash attempts per transaction.
    pub attempts_per_tx: f64,
    /// Whether the cost secures the ledger (PoW) or only meters spam
    /// (Nano) / nothing hash-related (PoS).
    pub is_security_budget: bool,
}

/// Builds the comparison table for given operating points.
pub fn energy_table(
    pow_difficulty: u64,
    pow_txs_per_block: u64,
    pos_txs_per_block: u64,
    nano_difficulty_bits: u32,
) -> Vec<EnergyRow> {
    vec![
        EnergyRow {
            mechanism: "PoW (Bitcoin-like)",
            attempts_per_tx: pow_attempts_per_tx(pow_difficulty, pow_txs_per_block),
            is_security_budget: true,
        },
        EnergyRow {
            mechanism: "PoS (Casper-like)",
            attempts_per_tx: pos_attempts_per_tx(pos_txs_per_block),
            is_security_budget: false,
        },
        EnergyRow {
            mechanism: "DAG anti-spam (Nano-like)",
            attempts_per_tx: nano_attempts_per_transfer(nano_difficulty_bits),
            is_security_budget: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_scales_with_difficulty_not_txs_energy_wise() {
        // Higher difficulty = more energy per tx at equal block fill.
        assert!(pow_attempts_per_tx(1_000_000, 100) > pow_attempts_per_tx(1_000, 100));
        // Fuller blocks amortise the same grind.
        assert!(pow_attempts_per_tx(1_000_000, 1000) < pow_attempts_per_tx(1_000_000, 100));
    }

    #[test]
    fn pos_is_orders_of_magnitude_cheaper() {
        let pow = pow_attempts_per_tx(600_000_000, 2000);
        let pos = pos_attempts_per_tx(2000);
        assert!(pow / pos > 1e6, "ratio {}", pow / pos);
    }

    #[test]
    fn nano_work_is_fixed_per_transfer() {
        assert_eq!(nano_attempts_per_transfer(16), 2.0 * 65_536.0);
        // Independent of network size or traffic.
        assert_eq!(
            nano_attempts_per_transfer(16),
            nano_attempts_per_transfer(16)
        );
    }

    #[test]
    fn table_ordering_matches_paper_argument() {
        let table = energy_table(600_000_000, 2000, 2000, 16);
        let pow = table[0].attempts_per_tx;
        let pos = table[1].attempts_per_tx;
        let nano = table[2].attempts_per_tx;
        assert!(pow > nano, "PoW security budget dwarfs anti-spam work");
        assert!(nano > pos, "anti-spam work still beats one election hash");
        assert!(table[0].is_security_budget);
        assert!(!table[1].is_security_budget);
    }

    #[test]
    fn zero_txs_does_not_divide_by_zero() {
        assert!(pow_attempts_per_tx(1000, 0).is_finite());
        assert!(pos_attempts_per_tx(0).is_finite());
    }
}
