//! The unified ledger abstraction and the identical-workload scenario
//! runner.
//!
//! The paper's method is to ask the *same* questions of three concrete
//! systems. [`DistributedLedger`] is that question set as a trait —
//! submit a transfer between workload actors, let simulated time pass,
//! ask about confirmation and ledger size — and the three adapters wrap
//! the reference implementations:
//!
//! * [`BitcoinAdapter`] — UTXO chain, 10-minute blocks, 1 MB capacity;
//! * [`EthereumAdapter`] — account chain, 15-second (or 4-second PoS)
//!   blocks, gas capacity;
//! * [`NanoAdapter`] — block-lattice, asynchronous sends/receives,
//!   vote-latency confirmation.
//!
//! [`run_workload`] drives any of them with a Poisson payment workload
//! and produces the [`WorkloadReport`] rows the §V/§VI experiments
//! print.

use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::ethereum::{EthereumChain, EthereumParams};
use dlt_blockchain::utxo::Wallet;
use dlt_crypto::keys::Address;
use dlt_crypto::Digest;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};
use dlt_sim::rng::SimRng;
use dlt_sim::time::SimTime;
use dlt_sim::trace::{NoopTracer, TraceEvent, Tracer};

/// Where a submitted transfer stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Never seen (or dropped).
    Unknown,
    /// Waiting (mempool / unsettled).
    Pending,
    /// In the ledger but below the confirmation threshold.
    Included {
        /// Blockchain confirmations so far (1 = in the tip block).
        confirmations: u64,
    },
    /// Confirmed at the ledger's own threshold (§IV).
    Confirmed,
}

/// Point-in-time ledger statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerStats {
    /// Transfers accepted for processing.
    pub submitted: u64,
    /// Transfers confirmed at the ledger's threshold.
    pub confirmed: u64,
    /// Transfers still pending (mempool backlog / unsettled sends).
    pub pending: u64,
    /// Ledger size in bytes (what a historical node stores).
    pub ledger_bytes: usize,
    /// Blocks in the ledger (chain blocks or lattice blocks).
    pub blocks: u64,
}

/// A ledger that can run the comparison workload.
pub trait DistributedLedger {
    /// Human-readable name for report rows.
    fn name(&self) -> &'static str;

    /// Number of workload actors (funded identities).
    fn actor_count(&self) -> usize;

    /// Submits a transfer of `amount` from actor `from` to actor `to`.
    /// Returns a ticket to query [`DistributedLedger::status`] with, or
    /// `None` if the actor cannot currently pay (insufficient funds or
    /// spent key capacity).
    fn submit_transfer(&mut self, from: usize, to: usize, amount: u64) -> Option<Digest>;

    /// Advances simulated time: blocks get produced, votes circulate,
    /// receives are issued.
    fn advance(&mut self, dt: SimTime);

    /// Where a ticket stands.
    fn status(&self, ticket: &Digest) -> TxStatus;

    /// Current statistics.
    fn stats(&self) -> LedgerStats;
}

// ---------------------------------------------------------------------
// Bitcoin adapter
// ---------------------------------------------------------------------

/// [`DistributedLedger`] over the Bitcoin-like UTXO chain.
pub struct BitcoinAdapter {
    chain: BitcoinChain,
    wallets: Vec<Wallet>,
    actor_addresses: Vec<Vec<Address>>,
    miner: Address,
    elapsed: SimTime,
    next_block_at: SimTime,
    block_interval: SimTime,
    submitted: u64,
    tickets: Vec<Digest>,
}

impl BitcoinAdapter {
    /// Funds `actors` wallets with `outputs_per_actor` outputs of
    /// `funds_per_output` each, so several transfers can be in flight
    /// before the first block confirms change.
    pub fn new(
        params: BitcoinParams,
        block_interval: SimTime,
        actors: usize,
        outputs_per_actor: usize,
        funds_per_output: u64,
        seed: u64,
    ) -> Self {
        let mut wallets: Vec<Wallet> = (0..actors)
            .map(|i| Wallet::new(seed.wrapping_add(i as u64)))
            .collect();
        let mut allocations = Vec::new();
        let mut actor_addresses = vec![Vec::new(); actors];
        for (i, wallet) in wallets.iter_mut().enumerate() {
            for _ in 0..outputs_per_actor {
                let address = wallet.new_address();
                actor_addresses[i].push(address);
                allocations.push((address, funds_per_output));
            }
        }
        let chain = BitcoinChain::new(params, &allocations);
        BitcoinAdapter {
            chain,
            wallets,
            actor_addresses,
            miner: Address::from_label("workload-miner"),
            elapsed: SimTime::ZERO,
            next_block_at: block_interval,
            block_interval,
            submitted: 0,
            tickets: Vec::new(),
        }
    }

    /// The wrapped chain (post-run inspection).
    pub fn chain(&self) -> &BitcoinChain {
        &self.chain
    }
}

impl DistributedLedger for BitcoinAdapter {
    fn name(&self) -> &'static str {
        "bitcoin-like"
    }

    fn actor_count(&self) -> usize {
        self.wallets.len()
    }

    fn submit_transfer(&mut self, from: usize, to: usize, amount: u64) -> Option<Digest> {
        let recipient = self.wallets[to].new_address();
        self.actor_addresses[to].push(recipient);
        let tx = self.wallets[from].build_transfer(self.chain.ledger(), recipient, amount, 1)?;
        let id = dlt_blockchain::block::LedgerTx::id(&tx);
        if self.chain.submit_tx(tx) {
            self.submitted += 1;
            self.tickets.push(id);
            Some(id)
        } else {
            None
        }
    }

    fn advance(&mut self, dt: SimTime) {
        self.elapsed += dt;
        while self.elapsed >= self.next_block_at {
            self.chain
                .mine_block(self.miner, self.next_block_at.as_micros());
            self.next_block_at += self.block_interval;
        }
    }

    fn status(&self, ticket: &Digest) -> TxStatus {
        if self.chain.is_confirmed(ticket) {
            return TxStatus::Confirmed;
        }
        // Included but not deep enough?
        for (height, block_id) in self.chain.chain().active_chain().iter().enumerate() {
            let block = self.chain.chain().block(block_id).expect("active stored");
            if block
                .txs
                .iter()
                .any(|t| dlt_blockchain::block::LedgerTx::id(t) == *ticket)
            {
                let confirmations = self.chain.chain().tip_height() - height as u64 + 1;
                return TxStatus::Included { confirmations };
            }
        }
        if self.chain.mempool().contains(ticket) {
            return TxStatus::Pending;
        }
        TxStatus::Unknown
    }

    fn stats(&self) -> LedgerStats {
        let confirmed = self
            .tickets
            .iter()
            .filter(|t| self.chain.is_confirmed(t))
            .count() as u64;
        LedgerStats {
            submitted: self.submitted,
            confirmed,
            pending: self.chain.mempool().len() as u64,
            ledger_bytes: self.chain.chain().total_bytes(),
            blocks: self.chain.chain().tip_height() + 1,
        }
    }
}

// ---------------------------------------------------------------------
// Ethereum adapter
// ---------------------------------------------------------------------

/// [`DistributedLedger`] over the Ethereum-like account chain.
pub struct EthereumAdapter {
    chain: EthereumChain,
    holders: Vec<dlt_blockchain::account::AccountHolder>,
    producer: Address,
    elapsed: SimTime,
    next_block_at: SimTime,
    block_interval: SimTime,
    submitted: u64,
    tickets: Vec<Digest>,
}

impl EthereumAdapter {
    /// Funds `actors` accounts with `funds_per_actor`; each account can
    /// sign up to `2^key_height` transfers.
    pub fn new(
        params: EthereumParams,
        block_interval: SimTime,
        actors: usize,
        funds_per_actor: u64,
        key_height: u32,
        seed: u64,
    ) -> Self {
        let holders: Vec<dlt_blockchain::account::AccountHolder> = (0..actors)
            .map(|i| {
                let mut account_seed = [0u8; 32];
                account_seed[..8].copy_from_slice(&seed.to_be_bytes());
                account_seed[8..16].copy_from_slice(&(i as u64).to_be_bytes());
                dlt_blockchain::account::AccountHolder::from_seed(account_seed, key_height)
            })
            .collect();
        let allocations: Vec<(Address, u64)> = holders
            .iter()
            .map(|h| (h.address(), funds_per_actor))
            .collect();
        let chain = EthereumChain::new(params, &allocations);
        EthereumAdapter {
            chain,
            holders,
            producer: Address::from_label("workload-validator"),
            elapsed: SimTime::ZERO,
            next_block_at: block_interval,
            block_interval,
            submitted: 0,
            tickets: Vec::new(),
        }
    }

    /// The wrapped chain (post-run inspection).
    pub fn chain(&self) -> &EthereumChain {
        &self.chain
    }
}

impl DistributedLedger for EthereumAdapter {
    fn name(&self) -> &'static str {
        "ethereum-like"
    }

    fn actor_count(&self) -> usize {
        self.holders.len()
    }

    fn submit_transfer(&mut self, from: usize, to: usize, amount: u64) -> Option<Digest> {
        if self.holders[from].remaining_signatures() == 0 {
            return None;
        }
        let to_address = self.holders[to].address();
        let tx = self.holders[from].transfer(to_address, amount, 1);
        let id = dlt_blockchain::block::LedgerTx::id(&tx);
        if self.chain.submit_tx(tx) {
            self.submitted += 1;
            self.tickets.push(id);
            Some(id)
        } else {
            None
        }
    }

    fn advance(&mut self, dt: SimTime) {
        self.elapsed += dt;
        while self.elapsed >= self.next_block_at {
            self.chain
                .produce_block(self.producer, self.next_block_at.as_micros());
            self.next_block_at += self.block_interval;
        }
    }

    fn status(&self, ticket: &Digest) -> TxStatus {
        if self.chain.is_confirmed(ticket) {
            return TxStatus::Confirmed;
        }
        for (height, block_id) in self.chain.chain().active_chain().iter().enumerate() {
            let block = self.chain.chain().block(block_id).expect("active stored");
            if block
                .txs
                .iter()
                .any(|t| dlt_blockchain::block::LedgerTx::id(t) == *ticket)
            {
                let confirmations = self.chain.chain().tip_height() - height as u64 + 1;
                return TxStatus::Included { confirmations };
            }
        }
        if self.chain.mempool().contains(ticket) {
            return TxStatus::Pending;
        }
        TxStatus::Unknown
    }

    fn stats(&self) -> LedgerStats {
        let confirmed = self
            .tickets
            .iter()
            .filter(|t| self.chain.is_confirmed(t))
            .count() as u64;
        LedgerStats {
            submitted: self.submitted,
            confirmed,
            pending: self.chain.mempool().len() as u64,
            ledger_bytes: self.chain.chain().total_bytes()
                + self.chain.state().trie().total_bytes(),
            blocks: self.chain.chain().tip_height() + 1,
        }
    }
}

// ---------------------------------------------------------------------
// Nano adapter
// ---------------------------------------------------------------------

/// A transfer in flight on the DAG: the send is in the ledger, the
/// receive is issued after the recipient's polling delay.
struct InFlight {
    send_hash: Digest,
    to: usize,
    amount: u64,
    receive_at: SimTime,
}

/// [`DistributedLedger`] over the Nano-like block-lattice.
///
/// Asynchrony model: the send block enters the ledger immediately (the
/// sender orders its own transactions); the recipient issues the
/// matching receive after `receive_delay`; the transfer counts as
/// *confirmed* once representatives' votes would have quorum —
/// `confirm_delay` after the receive (a constant standing in for the
/// measured vote round-trips of `e06`).
pub struct NanoAdapter {
    lattice: Lattice,
    accounts: Vec<NanoAccount>,
    elapsed: SimTime,
    receive_delay: SimTime,
    confirm_delay: SimTime,
    in_flight: Vec<InFlight>,
    /// ticket → the simulated time at which it is fully confirmed.
    confirmed_at: std::collections::HashMap<Digest, SimTime>,
    submitted: u64,
}

impl NanoAdapter {
    /// Funds `actors` accounts with `funds_per_actor` each from the
    /// genesis account. Each account signs up to `2^key_height` blocks.
    pub fn new(
        params: LatticeParams,
        actors: usize,
        funds_per_actor: u64,
        key_height: u32,
        receive_delay: SimTime,
        confirm_delay: SimTime,
        seed: u64,
    ) -> Self {
        let mut genesis_seed = [0u8; 32];
        genesis_seed[..8].copy_from_slice(&seed.to_be_bytes());
        genesis_seed[31] = 0xff;
        let supply = funds_per_actor * actors as u64 + 1;
        let mut genesis = NanoAccount::from_seed(
            genesis_seed,
            (actors + 2).next_power_of_two().trailing_zeros() + 1,
            params.work_difficulty_bits,
        );
        let mut lattice = Lattice::new(params, genesis.genesis_block(supply));

        let mut accounts = Vec::with_capacity(actors);
        for i in 0..actors {
            let mut account_seed = [0u8; 32];
            account_seed[..8].copy_from_slice(&seed.to_be_bytes());
            account_seed[8..16].copy_from_slice(&(i as u64).to_be_bytes());
            account_seed[31] = 0xaa;
            let mut account =
                NanoAccount::from_seed(account_seed, key_height, params.work_difficulty_bits);
            let send = genesis
                .send(account.address(), funds_per_actor)
                .expect("genesis funded");
            let send_hash = lattice.process(send).expect("genesis send applies");
            let receive = account
                .receive(send_hash, funds_per_actor)
                .expect("fresh key");
            lattice.process(receive).expect("funding receive applies");
            accounts.push(account);
        }
        NanoAdapter {
            lattice,
            accounts,
            elapsed: SimTime::ZERO,
            receive_delay,
            confirm_delay,
            in_flight: Vec::new(),
            confirmed_at: std::collections::HashMap::new(),
            submitted: 0,
        }
    }

    /// The wrapped lattice (post-run inspection).
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }
}

impl DistributedLedger for NanoAdapter {
    fn name(&self) -> &'static str {
        "nano-like"
    }

    fn actor_count(&self) -> usize {
        self.accounts.len()
    }

    fn submit_transfer(&mut self, from: usize, to: usize, amount: u64) -> Option<Digest> {
        let to_address = self.accounts[to].address();
        let send = self.accounts[from].send(to_address, amount).ok()?;
        let send_hash = self.lattice.process(send).ok()?;
        self.submitted += 1;
        self.in_flight.push(InFlight {
            send_hash,
            to,
            amount,
            receive_at: self.elapsed + self.receive_delay,
        });
        Some(send_hash)
    }

    fn advance(&mut self, dt: SimTime) {
        self.elapsed += dt;
        let due: Vec<InFlight> = {
            let elapsed = self.elapsed;
            let (ready, waiting): (Vec<InFlight>, Vec<InFlight>) = self
                .in_flight
                .drain(..)
                .partition(|f| f.receive_at <= elapsed);
            self.in_flight = waiting;
            ready
        };
        for flight in due {
            if let Ok(receive) = self.accounts[flight.to].receive(flight.send_hash, flight.amount) {
                if self.lattice.process(receive).is_ok() {
                    self.confirmed_at
                        .insert(flight.send_hash, self.elapsed + self.confirm_delay);
                }
            }
        }
    }

    fn status(&self, ticket: &Digest) -> TxStatus {
        match self.confirmed_at.get(ticket) {
            Some(at) if *at <= self.elapsed => TxStatus::Confirmed,
            Some(_) => TxStatus::Included { confirmations: 1 },
            None => {
                if self.lattice.contains(ticket) {
                    TxStatus::Pending // sent, unsettled
                } else {
                    TxStatus::Unknown
                }
            }
        }
    }

    fn stats(&self) -> LedgerStats {
        let confirmed = self
            .confirmed_at
            .values()
            .filter(|at| **at <= self.elapsed)
            .count() as u64;
        LedgerStats {
            submitted: self.submitted,
            confirmed,
            pending: (self.lattice.pending_count() + self.in_flight.len()) as u64,
            ledger_bytes: self.lattice.total_bytes(),
            blocks: self.lattice.block_count() as u64,
        }
    }
}

// ---------------------------------------------------------------------
// Workload runner
// ---------------------------------------------------------------------

/// Workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Offered load in transfers per second (Poisson arrivals).
    pub offered_tps: f64,
    /// Workload duration.
    pub duration: SimTime,
    /// Extra drain time after the last submission (lets blocks, votes
    /// and receives finish).
    pub drain: SimTime,
    /// Transfer amount.
    pub amount: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

/// The measured outcome of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Which ledger ran.
    pub ledger: &'static str,
    /// Transfers offered by the generator.
    pub offered: u64,
    /// Transfers the ledger accepted.
    pub submitted: u64,
    /// Transfers confirmed by the end of the drain.
    pub confirmed: u64,
    /// Confirmed transfers per second of workload time.
    pub confirmed_tps: f64,
    /// Ledger bytes at the end.
    pub ledger_bytes: usize,
    /// Marginal bytes per confirmed transfer.
    pub bytes_per_tx: f64,
    /// Backlog still pending at the end.
    pub backlog: u64,
    /// Blocks produced.
    pub blocks: u64,
}

/// Drives `ledger` with a Poisson workload of transfers between
/// uniformly random actor pairs and reports the §V/§VI metrics.
pub fn run_workload(ledger: &mut dyn DistributedLedger, config: &WorkloadConfig) -> WorkloadReport {
    run_workload_traced(ledger, config, &mut NoopTracer)
}

/// [`run_workload`] with a [`Tracer`] observing the run: each rejected
/// submission and each sampling milestone emits a [`TraceEvent::Mark`].
/// The workload runs outside the discrete-event engine, so marks are
/// the only event kind it produces; pass [`NoopTracer`] (or call
/// [`run_workload`]) to trace nothing at zero cost.
pub fn run_workload_traced(
    ledger: &mut dyn DistributedLedger,
    config: &WorkloadConfig,
    tracer: &mut dyn Tracer,
) -> WorkloadReport {
    let mut rng = SimRng::new(config.seed);
    let actors = ledger.actor_count();
    assert!(actors >= 2, "workload needs at least two actors");
    let initial_bytes = ledger.stats().ledger_bytes;
    let tracing = tracer.enabled();

    let step = SimTime::from_millis(100);
    let mut now = SimTime::ZERO;
    let mut offered = 0u64;
    while now < config.duration {
        let arrivals = rng.poisson(config.offered_tps * step.as_secs_f64());
        for _ in 0..arrivals {
            let from = rng.below(actors as u64) as usize;
            let mut to = rng.below(actors as u64 - 1) as usize;
            if to >= from {
                to += 1;
            }
            offered += 1;
            if ledger.submit_transfer(from, to, config.amount).is_none() && tracing {
                tracer.trace(TraceEvent::Mark {
                    at: now,
                    label: "workload.rejected",
                    value: offered,
                });
            }
        }
        ledger.advance(step);
        now += step;
    }
    // Throughput is sampled at the end of the loaded interval — the
    // drain below exists to settle backlogs and in-flight receives for
    // the size/backlog statistics, and must not inflate the rate.
    let at_load_end = ledger.stats();
    if tracing {
        tracer.trace(TraceEvent::Mark {
            at: now,
            label: "workload.offered",
            value: offered,
        });
        tracer.trace(TraceEvent::Mark {
            at: now,
            label: "workload.confirmed_at_load_end",
            value: at_load_end.confirmed,
        });
    }
    let mut drained = SimTime::ZERO;
    while drained < config.drain {
        ledger.advance(step);
        drained += step;
    }
    if tracing {
        tracer.trace(TraceEvent::Mark {
            at: now.saturating_add(drained),
            label: "workload.confirmed_after_drain",
            value: ledger.stats().confirmed,
        });
    }

    let stats = ledger.stats();
    let duration_secs = config.duration.as_secs_f64();
    WorkloadReport {
        ledger: ledger.name(),
        offered,
        submitted: stats.submitted,
        confirmed: stats.confirmed,
        confirmed_tps: at_load_end.confirmed as f64 / duration_secs,
        ledger_bytes: stats.ledger_bytes,
        bytes_per_tx: if stats.confirmed == 0 {
            0.0
        } else {
            (stats.ledger_bytes.saturating_sub(initial_bytes)) as f64 / stats.confirmed as f64
        },
        backlog: stats.pending,
        blocks: stats.blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bitcoin(actors: usize) -> BitcoinAdapter {
        // Compressed timescale: 10-second blocks stand in for 10-minute
        // ones, and the 1 MB cap is scaled down in proportion (to ~8 KB
        // ≈ 3 WOTS-signed transactions) so the capacity-to-interval
        // ratio — which is what limits TPS — stays Bitcoin-shaped.
        BitcoinAdapter::new(
            BitcoinParams {
                confirmation_depth: 3,
                max_block_bytes: 8_000,
                ..BitcoinParams::default()
            },
            SimTime::from_secs(10),
            actors,
            6,
            10_000,
            7,
        )
    }

    fn fast_ethereum(actors: usize) -> EthereumAdapter {
        EthereumAdapter::new(
            EthereumParams {
                confirmation_depth: 3,
                ..EthereumParams::default()
            },
            SimTime::from_secs(1),
            actors,
            10_000_000,
            7,
            7,
        )
    }

    fn fast_nano(actors: usize) -> NanoAdapter {
        NanoAdapter::new(
            LatticeParams {
                work_difficulty_bits: 2,
                verify_signatures: true,
                verify_work: true,
            },
            actors,
            1_000_000,
            7,
            SimTime::from_millis(200),
            SimTime::from_millis(300),
            7,
        )
    }

    fn config(tps: f64, secs: u64) -> WorkloadConfig {
        WorkloadConfig {
            offered_tps: tps,
            duration: SimTime::from_secs(secs),
            drain: SimTime::from_secs(60),
            amount: 5,
            seed: 99,
        }
    }

    #[test]
    fn bitcoin_adapter_processes_workload() {
        let mut ledger = fast_bitcoin(4);
        let report = run_workload(&mut ledger, &config(0.5, 60));
        assert!(report.submitted > 0, "report {report:?}");
        assert!(report.confirmed > 0, "report {report:?}");
        assert!(report.ledger_bytes > 0);
        assert!(report.blocks > 3);
    }

    #[test]
    fn ethereum_adapter_processes_workload() {
        let mut ledger = fast_ethereum(4);
        let report = run_workload(&mut ledger, &config(1.0, 30));
        assert!(report.confirmed > 10, "report {report:?}");
        assert!(report.bytes_per_tx > 0.0);
    }

    #[test]
    fn traced_workload_emits_marks_and_matches_untraced_report() {
        use dlt_sim::trace::RecordingTracer;
        let mut plain = fast_bitcoin(4);
        let untraced = run_workload(&mut plain, &config(0.5, 60));
        let mut tracer = RecordingTracer::new();
        let log = tracer.log();
        let mut traced_ledger = fast_bitcoin(4);
        let traced = run_workload_traced(&mut traced_ledger, &config(0.5, 60), &mut tracer);
        // Tracing is pure observation: the report is identical.
        assert_eq!(traced.offered, untraced.offered);
        assert_eq!(traced.confirmed, untraced.confirmed);
        let marks: Vec<&'static str> = log
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Mark { label, .. } => Some(*label),
                _ => None,
            })
            .collect();
        assert!(marks.contains(&"workload.offered"));
        assert!(marks.contains(&"workload.confirmed_at_load_end"));
        assert!(marks.contains(&"workload.confirmed_after_drain"));
    }

    #[test]
    fn nano_adapter_processes_workload() {
        let mut ledger = fast_nano(4);
        let report = run_workload(&mut ledger, &config(1.0, 30));
        assert!(report.confirmed > 10, "report {report:?}");
        // Asynchronous settlement: near-zero backlog after drain.
        assert_eq!(report.backlog, 0, "report {report:?}");
    }

    #[test]
    fn statuses_progress_to_confirmed() {
        let mut ledger = fast_ethereum(2);
        let ticket = ledger.submit_transfer(0, 1, 10).unwrap();
        assert_eq!(ledger.status(&ticket), TxStatus::Pending);
        ledger.advance(SimTime::from_secs(1));
        assert!(matches!(
            ledger.status(&ticket),
            TxStatus::Included { confirmations: 1 }
        ));
        ledger.advance(SimTime::from_secs(5));
        assert_eq!(ledger.status(&ticket), TxStatus::Confirmed);
    }

    #[test]
    fn nano_status_lifecycle() {
        let mut ledger = fast_nano(2);
        let ticket = ledger.submit_transfer(0, 1, 10).unwrap();
        assert_eq!(ledger.status(&ticket), TxStatus::Pending);
        ledger.advance(SimTime::from_millis(250)); // receive issued
        assert!(matches!(ledger.status(&ticket), TxStatus::Included { .. }));
        ledger.advance(SimTime::from_millis(400)); // votes confirm
        assert_eq!(ledger.status(&ticket), TxStatus::Confirmed);
    }

    #[test]
    fn unknown_ticket_is_unknown() {
        let ledger = fast_nano(2);
        assert_eq!(
            ledger.status(&dlt_crypto::sha256::sha256(b"nothing")),
            TxStatus::Unknown
        );
    }

    #[test]
    fn bitcoin_saturates_ethereum_keeps_up() {
        // The §VI shape at compressed scale: identical offered load,
        // Bitcoin's slow blocks leave a backlog, Ethereum's frequent
        // blocks absorb it.
        let cfg = config(2.0, 60);
        let mut bitcoin = fast_bitcoin(6);
        let mut ethereum = fast_ethereum(6);
        let btc_report = run_workload(&mut bitcoin, &cfg);
        let eth_report = run_workload(&mut ethereum, &cfg);
        assert!(
            eth_report.confirmed > btc_report.confirmed,
            "eth {} vs btc {}",
            eth_report.confirmed,
            btc_report.confirmed
        );
    }

    #[test]
    fn nano_bytes_per_tx_counts_two_blocks() {
        // A transfer is a send + receive: bytes/tx ≈ 2 lattice blocks.
        let mut ledger = fast_nano(4);
        let report = run_workload(&mut ledger, &config(1.0, 20));
        let block_bytes = 2.0 * 2_400.0; // ~2.4 KB per MSS-signed block
        assert!(
            report.bytes_per_tx > block_bytes * 0.5 && report.bytes_per_tx < block_bytes * 2.5,
            "bytes/tx {}",
            report.bytes_per_tx
        );
    }
}
