//! The e18 fault-scenario machinery, shared between the `e18_faults`
//! experiment binary and the det-sanitizer regression tests.
//!
//! Both callers must drive byte-for-byte identical simulations — the
//! binary for the printed report, the tests for the dispatch-hash
//! determinism assertion — so the scenario list, the fixture
//! construction, and the run loop live here, parameterized only by the
//! run length and an `install` hook (the binary hangs its tracer on
//! it; the tests pass a no-op).

use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::LatticeParams;
use dlt_dag::node::{DagMsg, DagNode, DagNodeConfig};
use dlt_sim::engine::Simulation;
use dlt_sim::fault::FaultInterceptor;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

/// Miners in the blockchain act.
pub const MINERS: usize = 4;
/// Representatives in the DAG act.
pub const DAG_REPS: usize = 4;
/// Expected block interval of the blockchain act, in seconds.
pub const MINE_INTERVAL_SECS: f64 = 2.0;

const BITS: u32 = 2;

/// One fault scenario applied to both paradigms.
pub struct Scenario {
    /// Display name (report row label).
    pub name: &'static str,
    /// Builds the interceptor for this scenario, given the node count
    /// and the instant a windowed fault (the partition) heals.
    pub build: fn(u64, usize, SimTime) -> Option<FaultInterceptor>,
    /// Whether this scenario partitions the network until `heal`.
    /// The blockchain act then performs an explicit post-heal branch
    /// exchange (real nodes resynchronise via initial block download,
    /// which the simulated gossip alphabet does not carry), and the
    /// DAG act submits its workload after the heal (votes are flooded
    /// once, not retried, so transactions issued inside a minority
    /// partition would wait forever — real wallets hold and resubmit).
    pub partitions: bool,
}

/// Splits `n` nodes into the two halves used by the partition and
/// Byzantine-lag scenarios.
pub fn halves(n: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let left: Vec<NodeId> = (0..n / 2).map(NodeId).collect();
    let right: Vec<NodeId> = (n / 2..n).map(NodeId).collect();
    (left, right)
}

/// The six e18 fault scenarios, in report order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "baseline",
            build: |_, _, _| None,
            partitions: false,
        },
        Scenario {
            name: "drop 10%",
            build: |seed, _, _| Some(FaultInterceptor::new(seed).drop_messages(0.10)),
            partitions: false,
        },
        Scenario {
            name: "drop 30%",
            build: |seed, _, _| Some(FaultInterceptor::new(seed).drop_messages(0.30)),
            partitions: false,
        },
        Scenario {
            name: "partition+heal",
            build: |seed, n, heal| {
                let (left, right) = halves(n);
                Some(
                    FaultInterceptor::new(seed)
                        .partition(n, &[&left, &right])
                        .during(SimTime::ZERO, heal),
                )
            },
            partitions: true,
        },
        Scenario {
            name: "byzantine lag",
            build: |seed, n, _| {
                let (_, right) = halves(n);
                Some(FaultInterceptor::new(seed).lag_nodes(&right, SimTime::from_secs(1)))
            },
            partitions: false,
        },
        Scenario {
            name: "chaos",
            build: |seed, _, _| {
                Some(
                    FaultInterceptor::new(seed)
                        .drop_messages(0.10)
                        .duplicate(0.20, SimTime::from_millis(50))
                        .reorder(0.30, SimTime::from_millis(500)),
                )
            },
            partitions: false,
        },
    ]
}

/// Runs scenario `index` of the blockchain act for `run` simulated
/// time and returns the finished simulation for inspection. `install`
/// fires after the miners are added and before the interceptor — the
/// point where the binary installs its tracer.
pub fn run_blockchain_scenario(
    index: usize,
    scenario: &Scenario,
    run: SimTime,
    install: impl FnOnce(&mut Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>>),
) -> Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> {
    let heal = run.div(2);
    let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> = Simulation::new(
        1800 + index as u64,
        LatencyModel::LogNormal {
            median: SimTime::from_millis(150),
            sigma: 0.3,
        },
    );
    for m in 0..MINERS {
        let config = MinerConfig {
            hashrate: 1.0 / (MINERS as f64 * MINE_INTERVAL_SECS),
            mine: true,
            subsidy: 0,
            block_capacity: 1_000_000,
            retarget: RetargetParams {
                target_interval_micros: (MINE_INTERVAL_SECS * 1e6) as u64,
                window: 1_000_000, // effectively static difficulty
                max_step: 4,
            },
            miner_address: Address::from_label(&format!("miner-{m}")),
            coinbase: None,
            mempool_capacity: 10,
        };
        sim.add_node(MinerNode::new(Block::<UtxoTx>::empty_genesis(), config));
    }
    install(&mut sim);
    if let Some(faults) = (scenario.build)(900 + index as u64, MINERS, heal) {
        sim.set_interceptor(faults);
    }

    if scenario.partitions {
        // Run the partition out, then model the IBD resync real
        // nodes perform after a heal: every node offers its active
        // branch to every peer, outside the gossip fabric.
        sim.run_until(heal);
        let exchange_at = heal.saturating_add(SimTime::from_millis(1));
        for from in 0..MINERS {
            let branch: Vec<Block<UtxoTx>> = sim
                .node(NodeId(from))
                .chain()
                .iter_active()
                .filter(|b| !b.header.is_genesis())
                .cloned()
                .collect();
            for to in (0..MINERS).filter(|&to| to != from) {
                for block in &branch {
                    sim.deliver_at(
                        exchange_at,
                        NodeId(from),
                        NodeId(to),
                        NetMsg::Block(block.clone()),
                    );
                }
            }
        }
    }
    sim.run_until(run);
    sim.run_until_idle(run + SimTime::from_secs(30));
    sim
}

fn dag_params() -> LatticeParams {
    LatticeParams {
        work_difficulty_bits: BITS,
        verify_signatures: true,
        verify_work: true,
    }
}

/// A DAG network of `n` representative nodes with equal delegated
/// shares, plus the funded accounts to publish from.
pub fn dag_fixture(seed: u64, n: usize) -> (Simulation<DagMsg, DagNode>, Vec<NanoAccount>) {
    let mut genesis = NanoAccount::from_seed([9u8; 32], 8, BITS);
    let genesis_block = genesis.genesis_block(1_000_000);

    let mut rep_accounts: Vec<NanoAccount> = (0..n)
        .map(|i| NanoAccount::from_seed([10 + i as u8; 32], 8, BITS))
        .collect();
    let share = 1_000_000 / (n as u64 + 1);
    let mut bootstrap = vec![genesis_block.clone()];
    for rep in rep_accounts.iter_mut() {
        let send = genesis.send(rep.address(), share).unwrap();
        let send_hash = send.hash();
        bootstrap.push(send);
        bootstrap.push(rep.receive(send_hash, share).unwrap());
    }

    let mut sim: Simulation<DagMsg, DagNode> = Simulation::new(
        seed,
        LatencyModel::LogNormal {
            median: SimTime::from_millis(80),
            sigma: 0.3,
        },
    );
    for rep_account in rep_accounts.iter().take(n) {
        let config = DagNodeConfig {
            representative: Some(rep_account.address()),
            quorum_fraction: 0.5,
            cement_on_confirm: true,
        };
        let mut node = DagNode::new(dag_params(), genesis_block.clone(), config);
        for block in &bootstrap[1..] {
            node.bootstrap(block.clone());
        }
        sim.add_node(node);
    }
    (sim, rep_accounts)
}

/// Runs scenario `index` of the DAG act — `sends` staggered ordinary
/// sends plus one double spend — for `run` simulated time past the
/// workload start, and returns the finished simulation. `install`
/// fires after the representatives are added and before the
/// interceptor.
pub fn run_dag_scenario(
    index: usize,
    scenario: &Scenario,
    sends: usize,
    run: SimTime,
    install: impl FnOnce(&mut Simulation<DagMsg, DagNode>),
) -> Simulation<DagMsg, DagNode> {
    let reps = DAG_REPS;
    let heal = run.div(2);
    let (mut sim, mut accounts) = dag_fixture(4200 + index as u64, reps);
    install(&mut sim);
    if let Some(faults) = (scenario.build)(700 + index as u64, reps, heal) {
        sim.set_interceptor(faults);
    }

    // Under a partition, neither half holds the 0.5 quorum and
    // votes are flooded once (not retried) — so clients hold
    // their transactions until the heal, as real wallets do.
    let t0 = if scenario.partitions {
        heal
    } else {
        SimTime::ZERO
    };
    // Workload: a chain of ordinary sends from rep 0, staggered …
    let recipient = Address::from_label("shop");
    for s in 0..sends {
        let block = accounts[0].send(recipient, 10).unwrap();
        sim.deliver_at(
            t0.saturating_add(SimTime::from_millis(200 * (s as u64 + 1))),
            NodeId(0),
            NodeId(0),
            DagMsg::Publish(block),
        );
    }
    // … plus one double spend: two conflicting sends signed for
    // the same chain position, published at opposite ends.
    let attacker = &mut accounts[reps - 1];
    let mut attacker_fork = attacker.fork_state();
    let honest = attacker.send(Address::from_label("merchant"), 100).unwrap();
    let double = attacker_fork
        .send(Address::from_label("mule"), 100)
        .unwrap();
    let publish_at = t0.saturating_add(SimTime::from_millis(100));
    sim.deliver_at(publish_at, NodeId(0), NodeId(0), DagMsg::Publish(honest));
    sim.deliver_at(
        publish_at,
        NodeId(reps - 1),
        NodeId(reps - 1),
        DagMsg::Publish(double),
    );
    sim.run_until_idle(run.saturating_add(t0));
    sim
}
