//! Measured sharding workload for e13 (paper §VI-A).
//!
//! Replaces the analytic fluid model as the *measured* side of the e13
//! table: each shard is a real [`Simulation`] — one validator plus
//! gossip replicas — driven through the parallel shard executor
//! ([`dlt_sim::shard`]). The validator is an M/D/1 queue with capacity
//! `C` tx/s; a fraction `f` of submitted transactions are cross-shard
//! two-phase transfers (debit at the home shard, credit at the
//! destination), and inbound credits are prioritised over fresh
//! submissions — the same queueing discipline as the analytic
//! `dlt-scaling::sharding::ShardedNetwork`, so the measured column can
//! be read against the `K·C/(1+f)` ceiling.
//!
//! Cross-shard debits travel between shards only at epoch barriers
//! (sorted by `(sent_at, seq, src)`, delivered at `epoch_end +
//! cross_latency`), which is what makes the parallel run byte-identical
//! to the serial one — see DESIGN.md §3d.

use dlt_sim::latency::LatencyModel;
use dlt_sim::metrics::{CounterId, Metrics};
use dlt_sim::rng::SimRng;
use dlt_sim::shard::{mix, CrossMsg, ShardExecutor, ShardReport, ShardWorker};
use dlt_sim::{Context, NodeId, Payload, SimNode, SimTime, Simulation};

/// Messages inside one shard's simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMsg {
    /// A client transaction arriving at the validator. `cross_to` names
    /// the destination shard of a cross-shard transfer (`None` = local).
    Submit {
        /// Destination shard for the credit phase, if cross-shard.
        cross_to: Option<u32>,
    },
    /// The credit phase of a cross-shard transfer, injected at an epoch
    /// barrier by the executor.
    Credit,
    /// Post-commit gossip from the validator to its replicas.
    Applied,
}

/// Per-message fingerprint for the det-sanitizer dispatch hash.
pub fn digest_msg(msg: &ShardMsg) -> u64 {
    match msg {
        ShardMsg::Submit { cross_to: None } => 1,
        ShardMsg::Submit {
            cross_to: Some(dst),
        } => mix(2, u64::from(*dst)),
        ShardMsg::Credit => 3,
        ShardMsg::Applied => 4,
    }
}

/// One (K, f) sweep cell of the e13 workload.
#[derive(Debug, Clone, Copy)]
pub struct ShardNetParams {
    /// Shard count K.
    pub shards: usize,
    /// Validator service capacity C, in tx/s.
    pub capacity: f64,
    /// Fraction of submissions that are cross-shard transfers.
    pub cross_fraction: f64,
    /// Offered client load per shard, in tx/s (set above `capacity` to
    /// measure the saturated ceiling).
    pub offered_per_shard: f64,
    /// Measured window, in simulated seconds.
    pub duration: f64,
    /// Barrier spacing of the shard executor.
    pub epoch_len: SimTime,
    /// Fixed latency a cross-shard credit pays past its barrier.
    pub cross_latency: SimTime,
    /// Gossip replicas per shard (the validator broadcasts `Applied`
    /// to them after each commit).
    pub replicas: usize,
    /// Cell seed; per-shard simulation seeds are derived from it.
    pub seed: u64,
}

/// Timer id for "current service slot completes".
const TIMER_SERVICE_DONE: u64 = 1;

/// A queued unit of validator work.
#[derive(Debug, Clone, Copy)]
enum Job {
    Local,
    CrossDebit { dst: u32 },
    Credit,
}

/// Pre-interned metric handles, registered once in `on_start` (the
/// same pattern as `dlt-blockchain`'s `MinerMetrics`).
#[derive(Debug, Clone, Copy)]
struct ValidatorMetrics {
    completed: CounterId,
    completed_cross: CounterId,
    debits: CounterId,
}

/// The shard's single block producer: an M/D/1 queue over [`Job`]s,
/// credits first.
struct Validator {
    service: SimTime,
    busy: bool,
    current: Option<Job>,
    credits: u64,
    submits: std::collections::VecDeque<Job>,
    /// Completed cross-shard debits, drained by the worker at each
    /// barrier as `(completion_time, dst_shard)`.
    outbox: Vec<(SimTime, u32)>,
    metrics: Option<ValidatorMetrics>,
    queue_peak: u64,
}

impl Validator {
    fn new(service: SimTime) -> Self {
        Validator {
            service,
            busy: false,
            current: None,
            credits: 0,
            submits: std::collections::VecDeque::new(),
            outbox: Vec::new(),
            metrics: None,
            queue_peak: 0,
        }
    }

    fn handles(&self) -> ValidatorMetrics {
        self.metrics.expect("metric handles registered in on_start")
    }

    fn start_next(&mut self, ctx: &mut Context<'_, ShardMsg>) {
        debug_assert!(!self.busy);
        let job = if self.credits > 0 {
            self.credits -= 1;
            Some(Job::Credit)
        } else {
            self.submits.pop_front()
        };
        if let Some(job) = job {
            self.busy = true;
            self.current = Some(job);
            ctx.set_timer(self.service, TIMER_SERVICE_DONE);
        }
    }

    fn enqueue(&mut self, ctx: &mut Context<'_, ShardMsg>, job: Job) {
        match job {
            Job::Credit => self.credits += 1,
            other => self.submits.push_back(other),
        }
        self.queue_peak = self
            .queue_peak
            .max(self.credits + self.submits.len() as u64);
        if !self.busy {
            self.start_next(ctx);
        }
    }
}

impl SimNode<ShardMsg> for Validator {
    fn on_start(&mut self, ctx: &mut Context<'_, ShardMsg>) {
        let metrics = ctx.metrics();
        self.metrics = Some(ValidatorMetrics {
            completed: metrics.counter("tx.completed"),
            completed_cross: metrics.counter("tx.completed_cross"),
            debits: metrics.counter("tx.cross_debits"),
        });
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, ShardMsg>,
        _from: NodeId,
        msg: Payload<ShardMsg>,
    ) {
        match *msg {
            ShardMsg::Submit { cross_to: None } => self.enqueue(ctx, Job::Local),
            ShardMsg::Submit {
                cross_to: Some(dst),
            } => self.enqueue(ctx, Job::CrossDebit { dst }),
            ShardMsg::Credit => self.enqueue(ctx, Job::Credit),
            // Replica gossip bounced back is not validator work.
            ShardMsg::Applied => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ShardMsg>, timer: u64) {
        debug_assert_eq!(timer, TIMER_SERVICE_DONE);
        let job = self.current.take().expect("timer without a current job");
        let m = self.handles();
        self.busy = false;
        match job {
            Job::Local => ctx.metrics().inc(m.completed),
            Job::Credit => {
                // A cross-shard transfer completes when its credit
                // applies at the destination.
                ctx.metrics().inc(m.completed);
                ctx.metrics().inc(m.completed_cross);
            }
            Job::CrossDebit { dst } => {
                ctx.metrics().inc(m.debits);
                let now = ctx.now();
                self.outbox.push((now, dst));
            }
        }
        // Post-commit gossip: every completed service slot is announced
        // to the replicas, exercising the network/latency path.
        ctx.broadcast(ShardMsg::Applied);
        self.start_next(ctx);
    }
}

/// A passive gossip replica: counts the commits it hears about.
struct Replica {
    applied: Option<CounterId>,
}

impl SimNode<ShardMsg> for Replica {
    fn on_start(&mut self, ctx: &mut Context<'_, ShardMsg>) {
        self.applied = Some(ctx.metrics().counter("replica.applied"));
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, ShardMsg>,
        _from: NodeId,
        msg: Payload<ShardMsg>,
    ) {
        if *msg == ShardMsg::Applied {
            let applied = self.applied.expect("registered in on_start");
            ctx.metrics().inc(applied);
        }
    }
}

/// Heterogeneous node set without boxing.
enum Node {
    Validator(Validator),
    Replica(Replica),
}

impl SimNode<ShardMsg> for Node {
    fn on_start(&mut self, ctx: &mut Context<'_, ShardMsg>) {
        match self {
            Node::Validator(v) => v.on_start(ctx),
            Node::Replica(r) => r.on_start(ctx),
        }
    }
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, ShardMsg>,
        from: NodeId,
        msg: Payload<ShardMsg>,
    ) {
        match self {
            Node::Validator(v) => v.on_message(ctx, from, msg),
            Node::Replica(r) => r.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, ShardMsg>, timer: u64) {
        match self {
            Node::Validator(v) => v.on_timer(ctx, timer),
            Node::Replica(r) => r.on_timer(ctx, timer),
        }
    }
}

/// One shard's ledger simulation, adapted to the executor's
/// epoch/cross-shard protocol.
pub struct ShardLedgerWorker {
    sim: Simulation<ShardMsg, Node>,
    /// Monotone per-shard sequence for outbound cross messages (never
    /// reset between epochs — the exchange key depends on it).
    next_seq: u64,
    shard: usize,
}

const VALIDATOR: NodeId = NodeId(0);

impl ShardLedgerWorker {
    /// Builds shard `shard` of the cell: validator + replicas on a LAN
    /// gossip fabric, with the full client arrival schedule for
    /// `params.duration` pre-loaded into the event queue.
    pub fn new(params: &ShardNetParams, shard: usize) -> Self {
        assert!(params.capacity > 0.0 && params.offered_per_shard > 0.0);
        let mut sim = Simulation::with_network(
            mix(params.seed, shard as u64),
            dlt_sim::network::Network::new(LatencyModel::lan()),
        );
        #[cfg(feature = "det-sanitizer")]
        sim.set_msg_digester(digest_msg);
        let service = SimTime::from_secs_f64(1.0 / params.capacity);
        sim.add_node(Node::Validator(Validator::new(service)));
        for _ in 0..params.replicas {
            sim.add_node(Node::Replica(Replica { applied: None }));
        }

        // Pre-schedule the Poisson client arrivals from a dedicated
        // workload RNG (the sim's own RNG keeps sampling gossip
        // latencies; separating them keeps arrival times independent of
        // gossip traffic).
        let mut workload = SimRng::new(mix(mix(params.seed, shard as u64), 0x5eed));
        let mean_gap = 1.0 / params.offered_per_shard;
        let mut t = 0.0f64;
        loop {
            t += workload.exponential(mean_gap);
            if t >= params.duration {
                break;
            }
            let cross_to = if params.shards > 1 && workload.chance(params.cross_fraction) {
                // Uniform over the *other* shards.
                let mut dst = workload.below(params.shards as u64 - 1) as usize;
                if dst >= shard {
                    dst += 1;
                }
                Some(dst as u32)
            } else {
                None
            };
            sim.deliver_at(
                SimTime::from_secs_f64(t),
                VALIDATOR,
                VALIDATOR,
                ShardMsg::Submit { cross_to },
            );
        }

        ShardLedgerWorker {
            sim,
            next_seq: 0,
            shard,
        }
    }
}

impl ShardWorker for ShardLedgerWorker {
    type Cross = ();

    fn run_epoch(&mut self, _epoch: u64, epoch_end: SimTime) -> Vec<CrossMsg<()>> {
        self.sim.run_until(epoch_end);
        let Node::Validator(validator) = self.sim.node_mut(VALIDATOR) else {
            unreachable!("node 0 is always the validator");
        };
        let shard = self.shard;
        let drained: Vec<(SimTime, u32)> = validator.outbox.drain(..).collect();
        drained
            .into_iter()
            .map(|(sent_at, dst)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                CrossMsg {
                    sent_at,
                    seq,
                    src: shard,
                    dst: dst as usize,
                    payload: (),
                }
            })
            .collect()
    }

    fn on_cross(&mut self, deliver_at: SimTime, _msg: CrossMsg<()>) {
        self.sim
            .deliver_at(deliver_at, VALIDATOR, VALIDATOR, ShardMsg::Credit);
    }

    fn finish(self) -> ShardReport {
        let dispatch_hash = self.sim.dispatch_hash_or_zero();
        ShardReport {
            metrics: self.sim.into_metrics(),
            dispatch_hash,
        }
    }
}

/// What one sweep cell measured.
#[derive(Debug)]
pub struct CellOutcome {
    /// Completed transactions per simulated second (cross-shard ones
    /// count once, at credit time).
    pub measured_tps: f64,
    /// Completed transactions in the window.
    pub completed: u64,
    /// Cross-shard debits exchanged at barriers.
    pub cross_messages: u64,
    /// Final-epoch debits with no barrier left to deliver them.
    pub undelivered: u64,
    /// Fold of all per-shard dispatch hashes (0 without det-sanitizer).
    pub combined_hash: u64,
    /// The per-shard dispatch hashes the fold ran over, in shard-index
    /// order (all zero without det-sanitizer).
    pub shard_hashes: Vec<u64>,
    /// All shard metrics merged in shard-index order.
    pub metrics: Metrics,
}

/// Runs one (K, f) cell through the shard executor on `threads`
/// worker threads. `threads = 1` is the serial reference; any other
/// count must produce the identical outcome.
pub fn run_cell(params: &ShardNetParams, threads: usize) -> CellOutcome {
    let epochs = (params.duration / params.epoch_len.as_secs_f64())
        .ceil()
        .max(1.0) as u64;
    let executor = ShardExecutor {
        shards: params.shards,
        epochs,
        epoch_len: params.epoch_len,
        cross_latency: params.cross_latency,
        threads,
    };
    let outcome = executor.run(|shard| ShardLedgerWorker::new(params, shard));
    let completed = outcome.metrics.count("tx.completed");
    CellOutcome {
        measured_tps: completed as f64 / params.duration,
        completed,
        cross_messages: outcome.cross_messages,
        undelivered: outcome.undelivered,
        combined_hash: outcome.combined_hash,
        shard_hashes: outcome.shard_hashes,
        metrics: outcome.metrics,
    }
}

/// The e13 sweep-cell parameters shared by the experiment binary, the
/// determinism tests, and the shard bench: per-cell seed derived from
/// `(experiment, K, f_index)` so every sweep point is independently
/// reproducible.
pub fn cell_params(k: usize, f: f64, f_index: usize, smoke: bool) -> ShardNetParams {
    let capacity = 50.0;
    ShardNetParams {
        shards: k,
        capacity,
        cross_fraction: f,
        offered_per_shard: capacity * 3.0,
        duration: if smoke { 6.0 } else { 30.0 },
        epoch_len: SimTime::from_millis(1_000),
        cross_latency: SimTime::from_millis(100),
        replicas: 2,
        seed: mix(mix(mix(0, 13), k as u64), f_index as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shards: usize, f: f64) -> ShardNetParams {
        ShardNetParams {
            shards,
            capacity: 40.0,
            cross_fraction: f,
            offered_per_shard: 120.0,
            duration: 3.0,
            epoch_len: SimTime::from_millis(500),
            cross_latency: SimTime::from_millis(50),
            replicas: 2,
            seed: 0xabcdef,
        }
    }

    #[test]
    fn saturated_local_throughput_tracks_capacity() {
        let out = run_cell(&tiny(1, 0.0), 1);
        // Saturated M/D/1: throughput ≈ capacity (minus the ramp-in).
        assert!(
            out.measured_tps > 30.0 && out.measured_tps <= 41.0,
            "measured {}",
            out.measured_tps
        );
        assert_eq!(out.cross_messages, 0);
        assert_eq!(out.undelivered, 0);
    }

    #[test]
    fn cross_shard_traffic_pays_the_tax() {
        let local = run_cell(&tiny(4, 0.0), 1);
        let crossy = run_cell(&tiny(4, 1.0), 1);
        assert!(crossy.cross_messages > 0);
        assert!(
            crossy.measured_tps < local.measured_tps,
            "f=1.0 ({}) should complete fewer than f=0 ({})",
            crossy.measured_tps,
            local.measured_tps
        );
    }

    #[test]
    fn parallel_cell_matches_serial_cell() {
        for f in [0.0, 0.3] {
            let serial = run_cell(&tiny(4, f), 1);
            let parallel = run_cell(&tiny(4, f), 4);
            assert_eq!(serial.completed, parallel.completed);
            assert_eq!(serial.cross_messages, parallel.cross_messages);
            assert_eq!(serial.combined_hash, parallel.combined_hash);
            assert_eq!(serial.metrics.to_string(), parallel.metrics.to_string());
        }
    }

    #[test]
    fn gossip_reaches_replicas() {
        let out = run_cell(&tiny(2, 0.1), 1);
        // Every completed service slot broadcasts to both replicas.
        assert!(out.metrics.count("replica.applied") > out.completed);
    }

    #[test]
    fn cell_seeds_are_independent() {
        let a = cell_params(4, 0.3, 2, true);
        let b = cell_params(8, 0.3, 2, true);
        let c = cell_params(4, 1.0, 3, true);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }
}
