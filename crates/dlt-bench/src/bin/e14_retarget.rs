//! e14 — Difficulty retargeting (paper §VI-A).
//!
//! "When increasing the number of nodes in the system, the frequency of
//! block creation does not increase significantly due to the fact that
//! the PoW puzzle difficulty is dynamic so that the block generation
//! time converges to a fixed value."
//!
//! The experiment grows network hash power 10× mid-run and shows the
//! average block interval snapping back to the 600-second target as
//! retarget windows close.

use dlt_bench::{banner, trace, Table};
use dlt_blockchain::difficulty::{retarget, RetargetParams};
use dlt_blockchain::pow::sample_mining_time;
use dlt_sim::rng::SimRng;

fn main() {
    let _report = banner(
        "e14",
        "dynamic difficulty keeps the block interval fixed",
        "§VI-A",
    );
    let params = RetargetParams {
        target_interval_micros: 600_000_000, // 600 s — Bitcoin's target
        window: 400,
        max_step: 4,
    };
    let mut rng = SimRng::new(14);
    let mut difficulty: u64 = 600_000; // calibrated for the initial hashrate
    let windows = 16;

    println!("\nhash power is 1 kH/s for 5 windows, then jumps 10× to 10 kH/s:");
    let mut table = Table::new([
        "window",
        "hashrate",
        "difficulty",
        "avg block interval",
        "vs 600 s target",
    ]);
    // DLT_TRACE=1 records the difficulty trajectory per window.
    let trace = trace::from_env("e14");
    for window in 0..windows {
        trace.mark("retarget.difficulty", difficulty);
        let hashrate = if window < 5 { 1_000.0 } else { 10_000.0 };
        // Mine one window of blocks at the current difficulty.
        let mut span = 0.0;
        for _ in 0..params.window {
            span += sample_mining_time(&mut rng, hashrate, difficulty).as_secs_f64();
        }
        let avg = span / params.window as f64;
        table.row([
            window.to_string(),
            format!("{:.0} H/s", hashrate),
            difficulty.to_string(),
            format!("{avg:.1} s"),
            format!("{:+.0}%", (avg / 600.0 - 1.0) * 100.0),
        ]);
        difficulty = retarget(&params, difficulty, (span * 1e6) as u64);
    }
    table.print();
    println!(
        "\nreading: the 10× hash-power influx briefly drives the interval to \
         ~60 s; each retarget multiplies difficulty back toward \
         hashrate × target, and the interval converges to 600 s — more miners \
         do NOT mean more throughput (§VI-A)."
    );
}
