//! e06 — DAG vote confirmation (paper §IV-B).
//!
//! Measures Nano-style confirmation: a fork (double send) is injected
//! into a representative network and resolved by weighted voting;
//! confirmation latency is measured for ordinary (non-conflicting)
//! blocks as a function of link latency and representative-weight
//! concentration.

use dlt_bench::{banner, print_dispatch_hash, trace, Table};
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::LatticeParams;
use dlt_dag::node::{DagMsg, DagNode, DagNodeConfig};
use dlt_sim::engine::Simulation;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

const BITS: u32 = 2;

fn params() -> LatticeParams {
    LatticeParams {
        work_difficulty_bits: BITS,
        verify_signatures: true,
        verify_work: true,
    }
}

/// Builds an n-rep network whose reps hold the given weight shares (in
/// thousandths of the supply); returns the sim plus the rep accounts.
fn build(
    seed: u64,
    latency_ms: u64,
    shares: &[u64],
) -> (Simulation<DagMsg, DagNode>, Vec<NanoAccount>) {
    let supply = 1_000_000u64;
    let mut genesis = NanoAccount::from_seed([9u8; 32], 8, BITS);
    let genesis_block = genesis.genesis_block(supply);
    let mut reps: Vec<NanoAccount> = (0..shares.len())
        .map(|i| NanoAccount::from_seed([20 + i as u8; 32], 8, BITS))
        .collect();
    let mut bootstrap = Vec::new();
    for (rep, share) in reps.iter_mut().zip(shares) {
        let amount = supply * share / 1000;
        let send = genesis.send(rep.address(), amount).expect("funded");
        let hash = send.hash();
        bootstrap.push(send);
        bootstrap.push(rep.receive(hash, amount).expect("key"));
    }
    let mut sim: Simulation<DagMsg, DagNode> = Simulation::new(
        seed,
        LatencyModel::LogNormal {
            median: SimTime::from_millis(latency_ms),
            sigma: 0.3,
        },
    );
    for rep in &reps {
        let mut node = DagNode::new(
            params(),
            genesis_block.clone(),
            DagNodeConfig {
                representative: Some(rep.address()),
                quorum_fraction: 0.5,
                cement_on_confirm: true,
            },
        );
        for block in &bootstrap {
            node.bootstrap(block.clone());
        }
        sim.add_node(node);
    }
    (sim, reps)
}

fn main() {
    let _report = banner(
        "e06",
        "DAG confirmation by weighted representative vote",
        "§III-B, §IV-B",
    );

    // DLT_TRACE=1 records vote/confirmation traffic for every sweep
    // point of both parts into one event log.
    let trace = trace::from_env("e06");

    // Part 1: confirmation latency of ordinary transfers vs link latency.
    println!("\nconfirmation latency of a non-conflicting send:");
    let mut table = Table::new(["link latency", "confirm latency p50", "p99", "votes cast"]);
    for latency_ms in [20u64, 80, 200] {
        trace.mark("sweep.latency_ms", latency_ms);
        let (mut sim, mut reps) = build(1, latency_ms, &[200, 200, 200, 200, 200]);
        trace.install(&mut sim);
        for i in 0..20 {
            let send = reps[i % 5]
                .send(Address::from_label("shop"), 10)
                .expect("funded");
            let at = SimTime::from_millis(1 + i as u64 * 500);
            sim.deliver_at(at, NodeId(i % 5), NodeId(i % 5), DagMsg::Publish(send));
        }
        sim.run_until_idle(SimTime::from_secs(60));
        print_dispatch_hash(&format!("latency-{latency_ms}ms"), &sim);
        let p50 = sim
            .metrics()
            .percentile("dag.confirm_latency_ms", 0.5)
            .unwrap_or(0.0);
        let p99 = sim
            .metrics()
            .percentile("dag.confirm_latency_ms", 0.99)
            .unwrap_or(0.0);
        table.row([
            format!("{latency_ms} ms"),
            format!("{p50:.1} ms"),
            format!("{p99:.1} ms"),
            sim.metrics().count("dag.votes_cast").to_string(),
        ]);
    }
    table.print();

    // Part 2: fork resolution under different weight distributions.
    println!("\ndouble-send fork resolution vs weight concentration:");
    let mut table = Table::new([
        "weight distribution",
        "forks detected",
        "one winner everywhere",
        "rollbacks",
    ]);
    for (label, shares) in [
        ("equal 5×20%", vec![200u64, 200, 200, 200, 200]),
        ("whale 60% + 4×10%", vec![600, 100, 100, 100, 100]),
        ("two blocs 40/40 + 20", vec![400, 400, 200]),
    ] {
        let (mut sim, mut reps) = build(7, 50, &shares);
        trace.mark("sweep.fork_reps", shares.len() as u64);
        trace.install(&mut sim);
        let n = shares.len();
        // The attacker double-sends from a forked account state.
        let attacker_index = n - 1;
        let mut fork_state = reps[attacker_index].fork_state();
        let a = reps[attacker_index]
            .send(Address::from_label("merchant"), 50)
            .expect("funded");
        let b = fork_state
            .send(Address::from_label("laundry"), 50)
            .expect("funded");
        let (a_hash, b_hash) = (a.hash(), b.hash());
        sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(0),
            NodeId(0),
            DagMsg::Publish(a),
        );
        sim.deliver_at(
            SimTime::from_millis(1),
            NodeId(n - 1),
            NodeId(n - 1),
            DagMsg::Publish(b),
        );
        sim.run_until_idle(SimTime::from_secs(60));
        print_dispatch_hash(label, &sim);
        let a_wins = (0..n)
            .filter(|i| sim.node(NodeId(*i)).is_confirmed(&a_hash))
            .count();
        let b_wins = (0..n)
            .filter(|i| sim.node(NodeId(*i)).is_confirmed(&b_hash))
            .count();
        let consistent = (a_wins == n && b_wins == 0) || (b_wins == n && a_wins == 0);
        table.row([
            label.to_string(),
            sim.metrics().count("dag.forks_detected").to_string(),
            consistent.to_string(),
            sim.metrics()
                .count("dag.losing_branches_rolled_back")
                .to_string(),
        ]);
    }
    table.print();
    println!(
        "\nreading: for a transaction with no issues there is no conflict to \
         vote out (§III-B); confirmation latency is a few vote round-trips, \
         independent of any block interval — unlike §IV-A's depth-based wait."
    );
}
