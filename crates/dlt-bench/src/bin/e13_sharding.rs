//! e13 — Sharding (paper §VI-A).
//!
//! Sweeps shard count K and cross-shard traffic fraction f, measuring
//! completed-transaction throughput against the analytic ceiling
//! `K·C / (1 + f)`: linear scaling in K, a tax on cross-shard
//! communication — "the downside … is that developers would need to be
//! aware that they are programming in a cross shard environment."

use dlt_bench::{banner, trace, Table};
use dlt_scaling::sharding::{ShardedNetwork, ShardingParams};
use dlt_sim::rng::SimRng;

fn main() {
    let _report = banner("e13", "sharding", "§VI-A");
    let per_shard_rate = 50.0;
    let duration = 30.0;

    println!("\nthroughput vs shard count and cross-shard fraction (per-shard capacity {per_shard_rate} tx/s):");
    let mut table = Table::new([
        "shards K",
        "f = 0%",
        "f = 10%",
        "f = 30%",
        "f = 100%",
        "theory f=30%",
    ]);
    // DLT_TRACE=1 marks each (K, f) sweep point with the measured TPS.
    let trace = trace::from_env("e13");
    let mut rng = SimRng::new(13);
    for k in [1usize, 2, 4, 8, 16, 32] {
        trace.mark("sweep.shards", k as u64);
        let mut cells = vec![k.to_string()];
        for f in [0.0f64, 0.1, 0.3, 1.0] {
            let params = ShardingParams {
                shards: k,
                per_shard_rate,
                cross_shard_fraction: f,
            };
            let mut net = ShardedNetwork::new(params);
            let measured = net.run_saturated(per_shard_rate * k as f64 * 3.0, duration, &mut rng);
            trace.mark("shard.measured_tps", measured as u64);
            cells.push(format!("{measured:.0}"));
        }
        let theory = ShardingParams {
            shards: k,
            per_shard_rate,
            cross_shard_fraction: 0.3,
        }
        .theoretical_tps();
        cells.push(format!("{theory:.0}"));
        table.row(cells);
    }
    table.print();

    println!(
        "\nreading: K=1 is §VI's unsharded baseline (\"every node … process[es] \
         every transaction\"); throughput scales ~linearly in K and pays the \
         (1+f) cross-shard tax. With f=100% every transfer touches two shards \
         and half the capacity evaporates."
    );
}
