//! e13 — Sharding (paper §VI-A), measured.
//!
//! Sweeps shard count K and cross-shard traffic fraction f, now by
//! *running* K per-shard ledger simulations through the parallel shard
//! executor (`dlt_sim::shard`) instead of evaluating the analytic fluid
//! model: each shard is a validator (an M/D/1 queue at capacity C) plus
//! gossip replicas, cross-shard transfers are two-phase (debit at home,
//! credit at the destination after an epoch barrier), and inbound
//! credits are prioritised. The analytic ceiling `K·C / (1 + f)`
//! (`dlt-scaling`) stays as the reference column: linear scaling in K,
//! a tax on cross-shard communication — "the downside … is that
//! developers would need to be aware that they are programming in a
//! cross shard environment."
//!
//! `DLT_THREADS=N` runs the shards on N worker threads; the output is
//! byte-identical for every thread count (that determinism is CI-gated).

use dlt_bench::shardnet::{cell_params, run_cell};
use dlt_bench::{banner, smoke, trace, Table};
use dlt_sim::shard::threads_from_env;

fn main() {
    let _report = banner("e13", "sharding", "§VI-A");
    let threads = threads_from_env();
    let smoke = smoke();
    let shard_counts: &[usize] = if smoke {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let fractions = [0.0f64, 0.1, 0.3, 1.0];
    let reference = cell_params(1, 0.0, 0, smoke);

    println!(
        "\nmeasured throughput vs shard count and cross-shard fraction \
         (per-shard capacity {} tx/s, offered {} tx/s per shard, {}s window, 1s epochs):",
        reference.capacity, reference.offered_per_shard, reference.duration
    );
    let mut table = Table::new([
        "shards K",
        "f = 0%",
        "f = 10%",
        "f = 30%",
        "f = 100%",
        "theory f=30%",
    ]);
    // DLT_TRACE=1 marks each (K, f) sweep point with the measured TPS.
    let trace = trace::from_env("e13");
    let mut combined = 0u64;
    for &k in shard_counts {
        trace.mark("sweep.shards", k as u64);
        let mut cells = vec![k.to_string()];
        for (f_index, &f) in fractions.iter().enumerate() {
            // Per-cell seed from (experiment, K, f_index): every sweep
            // point reproduces independently of the rest of the grid.
            let params = cell_params(k, f, f_index, smoke);
            let outcome = run_cell(&params, threads);
            trace.mark("shard.measured_tps", outcome.measured_tps as u64);
            combined = dlt_sim::shard::mix(combined, outcome.combined_hash);
            cells.push(format!("{:.0}", outcome.measured_tps));
        }
        let theory = dlt_scaling::sharding::ShardingParams {
            shards: k,
            per_shard_rate: reference.capacity,
            cross_shard_fraction: 0.3,
        }
        .theoretical_tps();
        cells.push(format!("{theory:.0}"));
        table.row(cells);
    }
    table.print();

    #[cfg(feature = "det-sanitizer")]
    println!("det-sanitizer[e13] combined_hash=0x{combined:016x}");
    #[cfg(not(feature = "det-sanitizer"))]
    let _ = combined;

    println!(
        "\nreading: K=1 is §VI's unsharded baseline (\"every node … process[es] \
         every transaction\"); measured throughput scales ~linearly in K and \
         pays the (1+f) cross-shard tax, tracking the analytic ceiling from \
         below (epoch barriers delay the credit phase, so cross-heavy cells \
         drain a little slower than the fluid model). With f=100% every \
         transfer touches two shards and half the capacity evaporates."
    );
}
