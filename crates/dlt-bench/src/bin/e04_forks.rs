//! e04 — Soft forks under network delay (paper §IV-A, Fig. 4).
//!
//! Runs a PoW miner network at a fixed block interval while sweeping
//! the link latency, and measures the natural fork rate (stale blocks
//! per mined block), the reorg count and reorg depth distribution —
//! the quantitative content of Fig. 4's "two blocks claim the same
//! predecessor" scenario. The expected shape: fork rate grows roughly
//! with latency/interval, and nodes still converge on one chain.

use dlt_bench::{banner, print_dispatch_hash, trace, Table};
use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_sim::engine::Simulation;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

fn main() {
    let _report = banner("e04", "soft forks vs network delay", "§IV-A, Fig. 4");
    // Compressed timescale: 10 s target interval (instead of 600 s);
    // the dimensionless knob is latency / interval.
    let interval_secs = 10.0;
    let miners = 6;
    let run = SimTime::from_secs(3_000);

    let mut table = Table::new([
        "latency",
        "latency/interval",
        "blocks",
        "stale blocks",
        "fork rate",
        "reorgs",
        "max reorg depth",
        "converged",
    ]);

    // DLT_TRACE=1 records the full schedule/dispatch/mined/reorg event
    // stream of every sweep point into one log.
    let trace = trace::from_env("e04");
    for latency_ms in [10u64, 100, 500, 1_000, 3_000] {
        trace.mark("sweep.latency_ms", latency_ms);
        let mut sim: Simulation<NetMsg<_>, MinerNode<_>> = Simulation::new(
            42 + latency_ms,
            LatencyModel::LogNormal {
                median: SimTime::from_millis(latency_ms),
                sigma: 0.3,
            },
        );
        for m in 0..miners {
            let config = MinerConfig {
                hashrate: 1.0 / (miners as f64 * interval_secs),
                mine: true,
                subsidy: 0,
                block_capacity: 1_000_000,
                retarget: RetargetParams {
                    target_interval_micros: (interval_secs * 1e6) as u64,
                    window: 1_000_000, // effectively static difficulty
                    max_step: 4,
                },
                miner_address: Address::from_label(&format!("miner-{m}")),
                coinbase: None,
                mempool_capacity: 10,
            };
            sim.add_node(MinerNode::new(Block::<UtxoTx>::empty_genesis(), config));
        }
        trace.install(&mut sim);
        sim.run_until(run);
        sim.run_until_idle(run + SimTime::from_secs(30));
        print_dispatch_hash(&format!("latency-{latency_ms}ms"), &sim);

        let heights: Vec<u64> = (0..miners)
            .map(|i| sim.node(NodeId(i)).chain().tip_height())
            .collect();
        let stale: usize = sim.node(NodeId(0)).chain().stale_block_count();
        let total_blocks = sim.node(NodeId(0)).chain().block_count();
        let reorgs = sim.metrics().count("node.reorgs");
        let max_depth = sim.metrics().max("node.reorg_depth").unwrap_or(0.0);
        let settle = heights.iter().min().unwrap().saturating_sub(6);
        let converged = (0..miners)
            .map(|i| sim.node(NodeId(i)).chain().active_at(settle))
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0] == w[1]);

        table.row([
            format!("{latency_ms} ms"),
            format!("{:.3}", latency_ms as f64 / 1000.0 / interval_secs),
            total_blocks.to_string(),
            stale.to_string(),
            format!("{:.3}", stale as f64 / total_blocks as f64),
            reorgs.to_string(),
            format!("{max_depth:.0}"),
            converged.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nreading: fork rate rises with latency/interval; the longest \
         (most-work) chain always wins and the network converges — Fig. 4's \
         temporary forks resolve exactly as §IV-A describes."
    );
}
