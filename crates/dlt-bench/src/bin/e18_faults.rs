//! e18 — Confirmation confidence under injected network faults
//! (paper §IV-A, §IV-B).
//!
//! Drives both paradigms through the `dlt-sim` fault-injection
//! interceptor: message drop, duplication, reordering, a healed 2-way
//! partition, and Byzantine scheduling (half the network hears
//! everything late). For the blockchain it measures how fork rate and
//! reorg depth — the quantities the 6-block rule is calibrated against
//! — respond to each fault; for the DAG it measures whether weighted
//! voting still reaches quorum, how confirmation latency stretches,
//! and how often an election's leader flips before settling.
//!
//! Every fault schedule is seed-driven and reproducible; the whole
//! report is byte-deterministic. The scenario machinery lives in
//! `dlt_bench::faults` so the det-sanitizer regression tests replay
//! the exact same runs and assert their dispatch hashes.

use dlt_bench::faults::{run_blockchain_scenario, run_dag_scenario, scenarios, DAG_REPS, MINERS};
use dlt_bench::{banner, print_dispatch_hash, section, smoke, trace, Table};
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

fn blockchain_act(trace: &trace::ExperimentTrace) {
    section("blockchain: fork rate and reorg depth under faults (§IV-A)");
    let miners = MINERS;
    let run = if smoke() {
        SimTime::from_secs(60)
    } else {
        SimTime::from_secs(600)
    };

    let mut table = Table::new([
        "scenario",
        "blocks",
        "stale",
        "fork rate",
        "reorgs",
        "max depth",
        "deepest node",
        "converged",
    ]);

    for (i, scenario) in scenarios().iter().enumerate() {
        trace.mark("sweep.blockchain_scenario", i as u64);
        let sim = run_blockchain_scenario(i, scenario, run, |sim| trace.install(sim));
        print_dispatch_hash(&format!("blockchain/{}", scenario.name), &sim);

        let heights: Vec<u64> = (0..miners)
            .map(|i| sim.node(NodeId(i)).chain().tip_height())
            .collect();
        let stale = sim.node(NodeId(0)).chain().stale_block_count();
        let total_blocks = sim.node(NodeId(0)).chain().block_count();
        let reorgs = sim.metrics().count("node.reorgs");
        let max_depth = sim.metrics().max("node.reorg_depth").unwrap_or(0.0);
        let deepest_node = (0..miners)
            .map(|i| sim.node(NodeId(i)).deepest_reorg())
            .max()
            .unwrap_or(0);
        let settle = heights.iter().min().unwrap().saturating_sub(6);
        let converged = (0..miners)
            .map(|i| sim.node(NodeId(i)).chain().active_at(settle))
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0] == w[1]);

        table.row([
            scenario.name.to_string(),
            total_blocks.to_string(),
            stale.to_string(),
            format!("{:.3}", stale as f64 / total_blocks as f64),
            reorgs.to_string(),
            format!("{max_depth:.0}"),
            deepest_node.to_string(),
            converged.to_string(),
        ]);
    }
    table.print();
}

fn dag_act(trace: &trace::ExperimentTrace) {
    section("dag: weighted-vote quorum under faults (§IV-B)");
    let reps = DAG_REPS;
    let sends = if smoke() { 3 } else { 10 };
    let run = if smoke() {
        SimTime::from_secs(30)
    } else {
        SimTime::from_secs(120)
    };

    let mut table = Table::new([
        "scenario",
        "published",
        "confirmed (min node)",
        "p50 confirm",
        "forks",
        "vote flips",
        "rollbacks",
    ]);

    for (i, scenario) in scenarios().iter().enumerate() {
        trace.mark("sweep.dag_scenario", i as u64);
        let sim = run_dag_scenario(i, scenario, sends, run, |sim| trace.install(sim));
        print_dispatch_hash(&format!("dag/{}", scenario.name), &sim);

        let published = sends + 1; // the double spend settles to one block
        let confirmed_min = (0..reps)
            .map(|i| sim.node(NodeId(i)).confirmed_count())
            .min()
            .unwrap_or(0);
        let p50 = sim
            .metrics()
            .percentile("dag.confirm_latency_ms", 0.5)
            .unwrap_or(f64::NAN);
        let forks = sim.metrics().count("dag.forks_detected");
        let flips = sim.metrics().count("dag.vote_flips");
        let rollbacks = sim.metrics().count("dag.losing_branches_rolled_back");

        table.row([
            scenario.name.to_string(),
            published.to_string(),
            confirmed_min.to_string(),
            format!("{p50:.1} ms"),
            forks.to_string(),
            flips.to_string(),
            rollbacks.to_string(),
        ]);
    }
    table.print();
}

fn main() {
    let _report = banner(
        "e18",
        "confirmation confidence under injected faults",
        "§IV-A, §IV-B",
    );
    let trace = trace::from_env("e18");
    blockchain_act(&trace);
    dag_act(&trace);
    println!(
        "\nreading: drops and partitions raise the blockchain's fork rate and \
         reorg depth — the confirmation-confidence variables behind §IV-A's \
         6-block rule — while the healed partition still converges after an \
         IBD-style branch exchange. The DAG's weighted vote keeps confirming \
         through the same faults; adversity shows up as stretched confirmation \
         latency and as vote flips on the contested double-spend election, \
         not as lost finality (§IV-B)."
    );
}
