//! e18 — Confirmation confidence under injected network faults
//! (paper §IV-A, §IV-B).
//!
//! Drives both paradigms through the `dlt-sim` fault-injection
//! interceptor: message drop, duplication, reordering, a healed 2-way
//! partition, and Byzantine scheduling (half the network hears
//! everything late). For the blockchain it measures how fork rate and
//! reorg depth — the quantities the 6-block rule is calibrated against
//! — respond to each fault; for the DAG it measures whether weighted
//! voting still reaches quorum, how confirmation latency stretches,
//! and how often an election's leader flips before settling.
//!
//! Every fault schedule is seed-driven and reproducible; the whole
//! report is byte-deterministic.

use dlt_bench::{banner, section, smoke, trace, Table};
use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::LatticeParams;
use dlt_dag::node::{DagMsg, DagNode, DagNodeConfig};
use dlt_sim::engine::Simulation;
use dlt_sim::fault::FaultInterceptor;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

/// One fault scenario applied to both paradigms.
struct Scenario {
    name: &'static str,
    /// Builds the interceptor for this scenario, given the node count
    /// and the instant a windowed fault (the partition) heals.
    build: fn(u64, usize, SimTime) -> Option<FaultInterceptor>,
    /// Whether this scenario partitions the network until `heal`.
    /// The blockchain act then performs an explicit post-heal branch
    /// exchange (real nodes resynchronise via initial block download,
    /// which the simulated gossip alphabet does not carry), and the
    /// DAG act submits its workload after the heal (votes are flooded
    /// once, not retried, so transactions issued inside a minority
    /// partition would wait forever — real wallets hold and resubmit).
    partitions: bool,
}

fn halves(n: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let left: Vec<NodeId> = (0..n / 2).map(NodeId).collect();
    let right: Vec<NodeId> = (n / 2..n).map(NodeId).collect();
    (left, right)
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "baseline",
            build: |_, _, _| None,
            partitions: false,
        },
        Scenario {
            name: "drop 10%",
            build: |seed, _, _| Some(FaultInterceptor::new(seed).drop_messages(0.10)),
            partitions: false,
        },
        Scenario {
            name: "drop 30%",
            build: |seed, _, _| Some(FaultInterceptor::new(seed).drop_messages(0.30)),
            partitions: false,
        },
        Scenario {
            name: "partition+heal",
            build: |seed, n, heal| {
                let (left, right) = halves(n);
                Some(
                    FaultInterceptor::new(seed)
                        .partition(n, &[&left, &right])
                        .during(SimTime::ZERO, heal),
                )
            },
            partitions: true,
        },
        Scenario {
            name: "byzantine lag",
            build: |seed, n, _| {
                let (_, right) = halves(n);
                Some(FaultInterceptor::new(seed).lag_nodes(&right, SimTime::from_secs(1)))
            },
            partitions: false,
        },
        Scenario {
            name: "chaos",
            build: |seed, _, _| {
                Some(
                    FaultInterceptor::new(seed)
                        .drop_messages(0.10)
                        .duplicate(0.20, SimTime::from_millis(50))
                        .reorder(0.30, SimTime::from_millis(500)),
                )
            },
            partitions: false,
        },
    ]
}

fn blockchain_act(trace: &trace::ExperimentTrace) {
    section("blockchain: fork rate and reorg depth under faults (§IV-A)");
    let interval_secs = 2.0;
    let miners = 4;
    let run = if smoke() {
        SimTime::from_secs(60)
    } else {
        SimTime::from_secs(600)
    };
    let heal = run.div(2);

    let mut table = Table::new([
        "scenario",
        "blocks",
        "stale",
        "fork rate",
        "reorgs",
        "max depth",
        "deepest node",
        "converged",
    ]);

    for (i, scenario) in scenarios().iter().enumerate() {
        trace.mark("sweep.blockchain_scenario", i as u64);
        let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> = Simulation::new(
            1800 + i as u64,
            LatencyModel::LogNormal {
                median: SimTime::from_millis(150),
                sigma: 0.3,
            },
        );
        for m in 0..miners {
            let config = MinerConfig {
                hashrate: 1.0 / (miners as f64 * interval_secs),
                mine: true,
                subsidy: 0,
                block_capacity: 1_000_000,
                retarget: RetargetParams {
                    target_interval_micros: (interval_secs * 1e6) as u64,
                    window: 1_000_000, // effectively static difficulty
                    max_step: 4,
                },
                miner_address: Address::from_label(&format!("miner-{m}")),
                coinbase: None,
                mempool_capacity: 10,
            };
            sim.add_node(MinerNode::new(Block::<UtxoTx>::empty_genesis(), config));
        }
        trace.install(&mut sim);
        if let Some(faults) = (scenario.build)(900 + i as u64, miners, heal) {
            sim.set_interceptor(faults);
        }

        if scenario.partitions {
            // Run the partition out, then model the IBD resync real
            // nodes perform after a heal: every node offers its active
            // branch to every peer, outside the gossip fabric.
            sim.run_until(heal);
            let exchange_at = heal.saturating_add(SimTime::from_millis(1));
            for from in 0..miners {
                let branch: Vec<Block<UtxoTx>> = sim
                    .node(NodeId(from))
                    .chain()
                    .iter_active()
                    .filter(|b| !b.header.is_genesis())
                    .cloned()
                    .collect();
                for to in (0..miners).filter(|&to| to != from) {
                    for block in &branch {
                        sim.deliver_at(
                            exchange_at,
                            NodeId(from),
                            NodeId(to),
                            NetMsg::Block(block.clone()),
                        );
                    }
                }
            }
        }
        sim.run_until(run);
        sim.run_until_idle(run + SimTime::from_secs(30));

        let heights: Vec<u64> = (0..miners)
            .map(|i| sim.node(NodeId(i)).chain().tip_height())
            .collect();
        let stale = sim.node(NodeId(0)).chain().stale_block_count();
        let total_blocks = sim.node(NodeId(0)).chain().block_count();
        let reorgs = sim.metrics().count("node.reorgs");
        let max_depth = sim.metrics().max("node.reorg_depth").unwrap_or(0.0);
        let deepest_node = (0..miners)
            .map(|i| sim.node(NodeId(i)).deepest_reorg())
            .max()
            .unwrap_or(0);
        let settle = heights.iter().min().unwrap().saturating_sub(6);
        let converged = (0..miners)
            .map(|i| sim.node(NodeId(i)).chain().active_at(settle))
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0] == w[1]);

        table.row([
            scenario.name.to_string(),
            total_blocks.to_string(),
            stale.to_string(),
            format!("{:.3}", stale as f64 / total_blocks as f64),
            reorgs.to_string(),
            format!("{max_depth:.0}"),
            deepest_node.to_string(),
            converged.to_string(),
        ]);
    }
    table.print();
}

const BITS: u32 = 2;

fn dag_params() -> LatticeParams {
    LatticeParams {
        work_difficulty_bits: BITS,
        verify_signatures: true,
        verify_work: true,
    }
}

/// A DAG network of `n` representative nodes with equal delegated
/// shares, plus the funded accounts to publish from.
fn dag_fixture(seed: u64, n: usize) -> (Simulation<DagMsg, DagNode>, Vec<NanoAccount>) {
    let mut genesis = NanoAccount::from_seed([9u8; 32], 8, BITS);
    let genesis_block = genesis.genesis_block(1_000_000);

    let mut rep_accounts: Vec<NanoAccount> = (0..n)
        .map(|i| NanoAccount::from_seed([10 + i as u8; 32], 8, BITS))
        .collect();
    let share = 1_000_000 / (n as u64 + 1);
    let mut bootstrap = vec![genesis_block.clone()];
    for rep in rep_accounts.iter_mut() {
        let send = genesis.send(rep.address(), share).unwrap();
        let send_hash = send.hash();
        bootstrap.push(send);
        bootstrap.push(rep.receive(send_hash, share).unwrap());
    }

    let mut sim: Simulation<DagMsg, DagNode> = Simulation::new(
        seed,
        LatencyModel::LogNormal {
            median: SimTime::from_millis(80),
            sigma: 0.3,
        },
    );
    for rep_account in rep_accounts.iter().take(n) {
        let config = DagNodeConfig {
            representative: Some(rep_account.address()),
            quorum_fraction: 0.5,
            cement_on_confirm: true,
        };
        let mut node = DagNode::new(dag_params(), genesis_block.clone(), config);
        for block in &bootstrap[1..] {
            node.bootstrap(block.clone());
        }
        sim.add_node(node);
    }
    (sim, rep_accounts)
}

fn dag_act(trace: &trace::ExperimentTrace) {
    section("dag: weighted-vote quorum under faults (§IV-B)");
    let reps = 4;
    let sends = if smoke() { 3 } else { 10 };
    let run = if smoke() {
        SimTime::from_secs(30)
    } else {
        SimTime::from_secs(120)
    };
    let heal = run.div(2);

    let mut table = Table::new([
        "scenario",
        "published",
        "confirmed (min node)",
        "p50 confirm",
        "forks",
        "vote flips",
        "rollbacks",
    ]);

    for (i, scenario) in scenarios().iter().enumerate() {
        trace.mark("sweep.dag_scenario", i as u64);
        let (mut sim, mut accounts) = dag_fixture(4200 + i as u64, reps);
        trace.install(&mut sim);
        if let Some(faults) = (scenario.build)(700 + i as u64, reps, heal) {
            sim.set_interceptor(faults);
        }

        // Under a partition, neither half holds the 0.5 quorum and
        // votes are flooded once (not retried) — so clients hold
        // their transactions until the heal, as real wallets do.
        let t0 = if scenario.partitions {
            heal
        } else {
            SimTime::ZERO
        };
        // Workload: a chain of ordinary sends from rep 0, staggered …
        let recipient = Address::from_label("shop");
        for s in 0..sends {
            let block = accounts[0].send(recipient, 10).unwrap();
            sim.deliver_at(
                t0.saturating_add(SimTime::from_millis(200 * (s as u64 + 1))),
                NodeId(0),
                NodeId(0),
                DagMsg::Publish(block),
            );
        }
        // … plus one double spend: two conflicting sends signed for
        // the same chain position, published at opposite ends.
        let attacker = &mut accounts[reps - 1];
        let mut attacker_fork = attacker.fork_state();
        let honest = attacker.send(Address::from_label("merchant"), 100).unwrap();
        let double = attacker_fork
            .send(Address::from_label("mule"), 100)
            .unwrap();
        let publish_at = t0.saturating_add(SimTime::from_millis(100));
        sim.deliver_at(publish_at, NodeId(0), NodeId(0), DagMsg::Publish(honest));
        sim.deliver_at(
            publish_at,
            NodeId(reps - 1),
            NodeId(reps - 1),
            DagMsg::Publish(double),
        );
        sim.run_until_idle(run.saturating_add(t0));

        let published = sends + 1; // the double spend settles to one block
        let confirmed_min = (0..reps)
            .map(|i| sim.node(NodeId(i)).confirmed_count())
            .min()
            .unwrap_or(0);
        let p50 = sim
            .metrics()
            .percentile("dag.confirm_latency_ms", 0.5)
            .unwrap_or(f64::NAN);
        let forks = sim.metrics().count("dag.forks_detected");
        let flips = sim.metrics().count("dag.vote_flips");
        let rollbacks = sim.metrics().count("dag.losing_branches_rolled_back");

        table.row([
            scenario.name.to_string(),
            published.to_string(),
            confirmed_min.to_string(),
            format!("{p50:.1} ms"),
            forks.to_string(),
            flips.to_string(),
            rollbacks.to_string(),
        ]);
    }
    table.print();
}

fn main() {
    let _report = banner(
        "e18",
        "confirmation confidence under injected faults",
        "§IV-A, §IV-B",
    );
    let trace = trace::from_env("e18");
    blockchain_act(&trace);
    dag_act(&trace);
    println!(
        "\nreading: drops and partitions raise the blockchain's fork rate and \
         reorg depth — the confirmation-confidence variables behind §IV-A's \
         6-block rule — while the healed partition still converges after an \
         IBD-style branch exchange. The DAG's weighted vote keeps confirming \
         through the same faults; adversity shows up as stretched confirmation \
         latency and as vote flips on the contested double-spend election, \
         not as lost finality (§IV-B)."
    );
}
