//! e05 — Confirmation confidence (paper §IV-A).
//!
//! Reproduces the double-spend race analysis behind "six blocks for
//! Bitcoin, five to eleven for Ethereum": the analytic Nakamoto revert
//! probability, a Monte-Carlo race on the sampled PoW model, and the
//! depth tables for several risk tolerances.

use dlt_bench::{banner, trace, Table};
use dlt_core::confidence::{confidence_table, depth_for_risk, revert_probability, simulate_race};
use dlt_sim::rng::SimRng;

fn main() {
    let _report = banner("e05", "confirmation confidence", "§IV-A");
    let shares = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45];

    println!("\nrevert probability vs attacker share and depth (analytic vs Monte-Carlo):");
    let mut table = Table::new([
        "attacker q",
        "P(revert) z=1",
        "z=6 analytic",
        "z=6 simulated",
        "z=12",
        "depth for <0.1%",
    ]);
    // DLT_TRACE=1 records the Monte-Carlo sweep (attacker share in %,
    // then the z=6 win rate in parts per million).
    let trace = trace::from_env("e05");
    let mut rng = SimRng::new(2024);
    for row in confidence_table(&shares) {
        trace.mark("sweep.attacker_pct", (row.attacker_share * 100.0) as u64);
        let simulated = simulate_race(row.attacker_share, 6, 30_000, 80, &mut rng);
        trace.mark(
            "race.win_rate_ppm",
            (simulated.attacker_win_rate * 1e6) as u64,
        );
        table.row([
            format!("{:.2}", row.attacker_share),
            format!("{:.4}", row.p_revert_1),
            format!("{:.5}", row.p_revert_6),
            format!("{:.5}", simulated.attacker_win_rate),
            format!("{:.6}", row.p_revert_12),
            row.depth_for_01pct
                .map_or("∞ (majority)".to_string(), |z| z.to_string()),
        ]);
    }
    table.print();

    println!("\nsuggested confirmation depths by risk tolerance:");
    let mut table = Table::new(["attacker q", "risk 1%", "risk 0.1%", "risk 0.01%"]);
    for q in [0.10, 0.20, 0.30] {
        table.row([
            format!("{q:.2}"),
            depth_for_risk(q, 0.01).unwrap().to_string(),
            depth_for_risk(q, 0.001).unwrap().to_string(),
            depth_for_risk(q, 0.0001).unwrap().to_string(),
        ]);
    }
    table.print();

    println!(
        "\nthe paper's conventions in these terms:\n\
         - Bitcoin's 6 blocks  => P(revert) = {:.5} against a 10% attacker\n\
         - Ethereum's 5–11     => same math, shorter blocks: 11 × 15 s ≈ 3 min of work\n\
           vs Bitcoin's 6 × 10 min = 60 min — depth is per-block, security is per-work.",
        revert_probability(0.10, 6)
    );
}
