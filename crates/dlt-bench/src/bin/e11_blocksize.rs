//! e11 — The block-size sweep (paper §VI-A, Segwit2x).
//!
//! "Increasing the block size also increases the maximum amount of
//! transactions that fit into a block, effectively increasing
//! transaction rate. However, the block size increase would eventually
//! lead to centralization due to the fact that consumer hardware would
//! become unable to process blocks."
//!
//! The sweep shows both sides: TPS grows linearly with block size,
//! while propagation time (size / bandwidth) grows too — and with it
//! the fork rate (measured on the miner network with size-scaled
//! latency) and the hardware demanded of full nodes.

use dlt_bench::{banner, print_dispatch_hash, section, smoke, trace, Table};
use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_core::throughput::blockchain_tps;
use dlt_crypto::keys::Address;
use dlt_sim::engine::Simulation;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::shard::mix;
use dlt_sim::time::SimTime;

fn main() {
    let _report = banner("e11", "block size vs throughput vs centralisation", "§VI-A");

    // Consumer-link model: 10 Mbit/s effective broadcast bandwidth plus
    // 100 ms base latency; 400 B per transaction; 600 s blocks.
    let bandwidth_bytes_per_sec = 10e6 / 8.0;
    let base_latency = 0.1;
    let interval = 600.0;
    let tx_bytes = 400.0;

    let mut table = Table::new([
        "block size",
        "TPS",
        "propagation",
        "prop/interval",
        "measured fork rate",
        "full-node burden (GB/yr)",
    ]);
    // DLT_TRACE=1 records the miner-network event stream per sweep
    // point (marked by block size in tenths of a MB).
    let trace = trace::from_env("e11");
    for mb in [0.5f64, 1.0, 2.0, 4.0, 8.0, 32.0] {
        trace.mark("sweep.block_size_tenth_mb", (mb * 10.0) as u64);
        let size_bytes = mb * 1e6;
        let tps = blockchain_tps(size_bytes, tx_bytes, interval);
        let propagation = base_latency + size_bytes / bandwidth_bytes_per_sec;

        // Measure the fork rate on the miner network at a compressed
        // timescale, with link latency set to the computed propagation
        // time scaled by the same factor as the interval.
        let compress = 60.0; // 600 s -> 10 s
        let sim_interval = interval / compress;
        let sim_latency_ms = (propagation / compress * 1000.0).max(1.0) as u64;
        let miners = 5;
        let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> = Simulation::new(
            (mb * 10.0) as u64,
            LatencyModel::LogNormal {
                median: SimTime::from_millis(sim_latency_ms),
                sigma: 0.3,
            },
        );
        for m in 0..miners {
            sim.add_node(MinerNode::new(
                Block::empty_genesis(),
                MinerConfig {
                    hashrate: 1.0 / (miners as f64 * sim_interval),
                    mine: true,
                    subsidy: 0,
                    block_capacity: 1_000_000,
                    retarget: RetargetParams {
                        target_interval_micros: (sim_interval * 1e6) as u64,
                        window: 1_000_000,
                        max_step: 4,
                    },
                    miner_address: Address::from_label(&format!("m{m}")),
                    coinbase: None,
                    mempool_capacity: 10,
                },
            ));
        }
        trace.install(&mut sim);
        sim.run_until(SimTime::from_secs(2_000));
        print_dispatch_hash(&format!("block-size-{mb}mb"), &sim);
        let total = sim.node(NodeId(0)).chain().block_count();
        let stale = sim.node(NodeId(0)).chain().stale_block_count();
        let fork_rate = stale as f64 / total as f64;

        let annual_gb = tps * tx_bytes * 86_400.0 * 365.0 / 1e9;
        table.row([
            format!("{mb} MB"),
            format!("{tps:.1}"),
            format!("{propagation:.2} s"),
            format!("{:.4}", propagation / interval),
            format!("{fork_rate:.3}"),
            format!("{annual_gb:.0}"),
        ]);
    }
    table.print();
    println!(
        "\nreading: TPS rises linearly (Segwit2x's pitch), but propagation \
         time, fork rate and the storage/bandwidth burden rise with it — \
         §VI-A's centralisation pressure, quantified."
    );

    // Act 2 — the larger-N sweep (ROADMAP "Larger-N §VI sweeps"): hold
    // total hashrate constant and grow the miner count, measuring where
    // the fork-rate knee moves as more independent block producers race
    // the same propagation delay.
    section("fork rate vs miner count (total hashrate fixed)");
    let (miner_counts, act2_sizes, act2_horizon, act2_seeds): (&[usize], &[f64], u64, u64) =
        if smoke() {
            (&[8, 16], &[1.0, 32.0], 200, 1)
        } else {
            (&[16, 64, 128], &[1.0, 8.0, 32.0], 2_000, 3)
        };
    let mut act2 = Table::new(
        std::iter::once("miners".to_string())
            .chain(act2_sizes.iter().map(|mb| format!("fork rate @ {mb} MB"))),
    );
    for &miners in miner_counts {
        trace.mark("sweep.miners", miners as u64);
        let mut cells = vec![miners.to_string()];
        for &mb in act2_sizes {
            let size_bytes = mb * 1e6;
            let propagation = base_latency + size_bytes / bandwidth_bytes_per_sec;
            let compress = 60.0;
            let sim_interval = interval / compress;
            let sim_latency_ms = (propagation / compress * 1000.0).max(1.0) as u64;
            // Fork rates at these magnitudes are noisy in a single run,
            // so each cell averages a few independent replicas; each
            // replica's seed derives from (experiment, miners, size,
            // replica) so every one reproduces independently.
            let mut rate_sum = 0.0;
            for replica in 0..act2_seeds {
                let seed = mix(
                    mix(mix(mix(0, 11), miners as u64), (mb * 10.0) as u64),
                    replica,
                );
                let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> = Simulation::new(
                    seed,
                    LatencyModel::LogNormal {
                        median: SimTime::from_millis(sim_latency_ms),
                        sigma: 0.3,
                    },
                );
                for m in 0..miners {
                    sim.add_node(MinerNode::new(
                        Block::empty_genesis(),
                        MinerConfig {
                            hashrate: 1.0 / (miners as f64 * sim_interval),
                            mine: true,
                            subsidy: 0,
                            block_capacity: 1_000_000,
                            retarget: RetargetParams {
                                target_interval_micros: (sim_interval * 1e6) as u64,
                                window: 1_000_000,
                                max_step: 4,
                            },
                            miner_address: Address::from_label(&format!("m{m}")),
                            coinbase: None,
                            mempool_capacity: 10,
                        },
                    ));
                }
                sim.run_until(SimTime::from_secs(act2_horizon));
                print_dispatch_hash(&format!("miners-{miners}-{mb}mb-r{replica}"), &sim);
                let total = sim.node(NodeId(0)).chain().block_count();
                let stale = sim.node(NodeId(0)).chain().stale_block_count();
                rate_sum += stale as f64 / total as f64;
            }
            cells.push(format!("{:.3}", rate_sum / act2_seeds as f64));
        }
        act2.row(cells);
    }
    act2.print();
    println!(
        "\nreading: with the block interval and total hashrate held fixed, \
         spreading the work over more independent miners moves the fork-rate \
         knee left of the 5-miner table above — and then saturates: once no \
         single miner holds a large share, forks are governed by the \
         aggregate find rate racing the same propagation delay, so 16 and \
         128 miners pay a similar big-block penalty (the residual wiggle \
         between rows is sampling noise: a fork rate of ~0.01 is a handful \
         of stale blocks per replica)."
    );
}
