//! e11 — The block-size sweep (paper §VI-A, Segwit2x).
//!
//! "Increasing the block size also increases the maximum amount of
//! transactions that fit into a block, effectively increasing
//! transaction rate. However, the block size increase would eventually
//! lead to centralization due to the fact that consumer hardware would
//! become unable to process blocks."
//!
//! The sweep shows both sides: TPS grows linearly with block size,
//! while propagation time (size / bandwidth) grows too — and with it
//! the fork rate (measured on the miner network with size-scaled
//! latency) and the hardware demanded of full nodes.

use dlt_bench::{banner, print_dispatch_hash, trace, Table};
use dlt_blockchain::block::Block;
use dlt_blockchain::difficulty::RetargetParams;
use dlt_blockchain::node::{MinerConfig, MinerNode, NetMsg};
use dlt_blockchain::utxo::UtxoTx;
use dlt_core::throughput::blockchain_tps;
use dlt_crypto::keys::Address;
use dlt_sim::engine::Simulation;
use dlt_sim::latency::LatencyModel;
use dlt_sim::network::NodeId;
use dlt_sim::time::SimTime;

fn main() {
    let _report = banner("e11", "block size vs throughput vs centralisation", "§VI-A");

    // Consumer-link model: 10 Mbit/s effective broadcast bandwidth plus
    // 100 ms base latency; 400 B per transaction; 600 s blocks.
    let bandwidth_bytes_per_sec = 10e6 / 8.0;
    let base_latency = 0.1;
    let interval = 600.0;
    let tx_bytes = 400.0;

    let mut table = Table::new([
        "block size",
        "TPS",
        "propagation",
        "prop/interval",
        "measured fork rate",
        "full-node burden (GB/yr)",
    ]);
    // DLT_TRACE=1 records the miner-network event stream per sweep
    // point (marked by block size in tenths of a MB).
    let trace = trace::from_env("e11");
    for mb in [0.5f64, 1.0, 2.0, 4.0, 8.0, 32.0] {
        trace.mark("sweep.block_size_tenth_mb", (mb * 10.0) as u64);
        let size_bytes = mb * 1e6;
        let tps = blockchain_tps(size_bytes, tx_bytes, interval);
        let propagation = base_latency + size_bytes / bandwidth_bytes_per_sec;

        // Measure the fork rate on the miner network at a compressed
        // timescale, with link latency set to the computed propagation
        // time scaled by the same factor as the interval.
        let compress = 60.0; // 600 s -> 10 s
        let sim_interval = interval / compress;
        let sim_latency_ms = (propagation / compress * 1000.0).max(1.0) as u64;
        let miners = 5;
        let mut sim: Simulation<NetMsg<UtxoTx>, MinerNode<UtxoTx>> = Simulation::new(
            (mb * 10.0) as u64,
            LatencyModel::LogNormal {
                median: SimTime::from_millis(sim_latency_ms),
                sigma: 0.3,
            },
        );
        for m in 0..miners {
            sim.add_node(MinerNode::new(
                Block::empty_genesis(),
                MinerConfig {
                    hashrate: 1.0 / (miners as f64 * sim_interval),
                    mine: true,
                    subsidy: 0,
                    block_capacity: 1_000_000,
                    retarget: RetargetParams {
                        target_interval_micros: (sim_interval * 1e6) as u64,
                        window: 1_000_000,
                        max_step: 4,
                    },
                    miner_address: Address::from_label(&format!("m{m}")),
                    coinbase: None,
                    mempool_capacity: 10,
                },
            ));
        }
        trace.install(&mut sim);
        sim.run_until(SimTime::from_secs(2_000));
        print_dispatch_hash(&format!("block-size-{mb}mb"), &sim);
        let total = sim.node(NodeId(0)).chain().block_count();
        let stale = sim.node(NodeId(0)).chain().stale_block_count();
        let fork_rate = stale as f64 / total as f64;

        let annual_gb = tps * tx_bytes * 86_400.0 * 365.0 / 1e9;
        table.row([
            format!("{mb} MB"),
            format!("{tps:.1}"),
            format!("{propagation:.2} s"),
            format!("{:.4}", propagation / interval),
            format!("{fork_rate:.3}"),
            format!("{annual_gb:.0}"),
        ]);
    }
    table.print();
    println!(
        "\nreading: TPS rises linearly (Segwit2x's pitch), but propagation \
         time, fork rate and the storage/bandwidth burden rise with it — \
         §VI-A's centralisation pressure, quantified."
    );
}
