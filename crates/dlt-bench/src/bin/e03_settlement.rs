//! e03 — Send/receive settlement (paper §II-B, Fig. 3).
//!
//! Drives transfers through their unsettled → settled lifecycle,
//! including the offline-receiver case the paper calls out ("a node has
//! to be online in order to receive a transaction").

use dlt_bench::{banner, Table};
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};

fn main() {
    let _report = banner(
        "e03",
        "transaction settlement in the block lattice",
        "§II-B, Fig. 3",
    );
    let params = LatticeParams {
        work_difficulty_bits: 4,
        verify_signatures: true,
        verify_work: true,
    };
    let mut genesis = NanoAccount::from_seed([1u8; 32], 6, 4);
    let mut lattice = Lattice::new(params, genesis.genesis_block(1_000));
    let mut online = NanoAccount::from_seed([2u8; 32], 6, 4);
    let offline = NanoAccount::from_seed([3u8; 32], 6, 4);

    let mut table = Table::new([
        "step",
        "event",
        "sender bal",
        "recipient bal",
        "pending",
        "settled?",
    ]);

    // S: send to the online recipient.
    let send1 = genesis.send(online.address(), 300).expect("funded");
    let send1_hash = lattice.process(send1).expect("valid");
    table.row([
        "1".into(),
        format!("S: genesis → online (300), send {}", send1_hash.short()),
        lattice.balance(&genesis.address()).to_string(),
        lattice.balance(&online.address()).to_string(),
        lattice.pending_count().to_string(),
        lattice.is_settled(&send1_hash).to_string(),
    ]);

    // R: the online recipient claims it.
    let receive1 = online.receive(send1_hash, 300).expect("key ok");
    lattice.process(receive1).expect("valid");
    table.row([
        "2".into(),
        "R: online receives 300".into(),
        lattice.balance(&genesis.address()).to_string(),
        lattice.balance(&online.address()).to_string(),
        lattice.pending_count().to_string(),
        lattice.is_settled(&send1_hash).to_string(),
    ]);

    // S: send to the offline recipient — stays unsettled forever.
    let send2 = genesis.send(offline.address(), 100).expect("funded");
    let send2_hash = lattice.process(send2).expect("valid");
    table.row([
        "3".into(),
        format!("S: genesis → OFFLINE (100), send {}", send2_hash.short()),
        lattice.balance(&genesis.address()).to_string(),
        lattice.balance(&offline.address()).to_string(),
        lattice.pending_count().to_string(),
        lattice.is_settled(&send2_hash).to_string(),
    ]);
    table.print();

    println!(
        "\nfunds for the offline account sit in the pending map: {:?}",
        lattice.pending_for(&offline.address())
    );
    println!(
        "sender debited immediately; recipient credited only on receive — \
         supply conserved throughout: {}",
        lattice.circulating_total() == lattice.total_supply()
    );
    assert!(lattice.is_settled(&send1_hash));
    assert!(!lattice.is_settled(&send2_hash));
    assert_eq!(lattice.circulating_total(), lattice.total_supply());
}
