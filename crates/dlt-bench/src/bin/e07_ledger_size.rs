//! e07 — Ledger size (paper §V).
//!
//! Replays an identical payment workload on all three ledgers,
//! measures the serialized growth per transfer, and extrapolates each
//! implementation to a year of operation at its §VI throughput. The
//! paper's reported absolute sizes (145.95 / 39.62 / 3.42 GB) reflect
//! each network's real age and traffic; the reproducible content is the
//! per-transaction footprint and the growth mechanism.

use dlt_bench::{banner, human_bytes, smoke, trace, Table};
use dlt_blockchain::bitcoin::BitcoinParams;
use dlt_blockchain::ethereum::EthereumParams;
use dlt_core::ledger::{
    run_workload_traced, BitcoinAdapter, EthereumAdapter, NanoAdapter, WorkloadConfig,
};
use dlt_core::sizing::{annual_growth_bytes, paper_reported_sizes, GrowthModel};
use dlt_dag::lattice::LatticeParams;
use dlt_sim::time::SimTime;

fn main() {
    let _report = banner("e07", "ledger size growth", "§V");

    // DLT_SMOKE quarters the workload; per-tx byte costs are identical,
    // only the linear-growth fit gets fewer points.
    let secs = if smoke() { 30 } else { 120 };
    let config = WorkloadConfig {
        offered_tps: 2.0,
        duration: SimTime::from_secs(secs),
        drain: SimTime::from_secs(secs),
        amount: 5,
        seed: 7,
    };

    let mut bitcoin = BitcoinAdapter::new(
        BitcoinParams::default(),
        SimTime::from_secs(10), // compressed 10-min interval
        8,
        40,
        10_000,
        1,
    );
    let mut ethereum = EthereumAdapter::new(
        EthereumParams::default(),
        SimTime::from_secs(1), // compressed 15-s interval
        8,
        100_000_000,
        9,
        1,
    );
    let mut nano = NanoAdapter::new(
        LatticeParams {
            work_difficulty_bits: 2,
            verify_signatures: true,
            verify_work: true,
        },
        8,
        100_000_000,
        9,
        SimTime::from_millis(200),
        SimTime::from_millis(300),
        1,
    );

    // DLT_TRACE=1 captures workload milestone marks per ledger run.
    let trace = trace::from_env("e07");
    let mut tracer = trace.tracer();
    trace.mark("workload.run", 0);
    let bitcoin_report = run_workload_traced(&mut bitcoin, &config, tracer.as_mut());
    trace.mark("workload.run", 1);
    let ethereum_report = run_workload_traced(&mut ethereum, &config, tracer.as_mut());
    trace.mark("workload.run", 2);
    let nano_report = run_workload_traced(&mut nano, &config, tracer.as_mut());
    let reports = vec![bitcoin_report, ethereum_report, nano_report];

    println!(
        "\nidentical workload ({} tps offered, {secs}s):",
        config.offered_tps
    );
    let mut table = Table::new([
        "ledger",
        "confirmed txs",
        "ledger bytes",
        "bytes/tx",
        "blocks",
    ]);
    for r in &reports {
        table.row([
            r.ledger.to_string(),
            r.confirmed.to_string(),
            human_bytes(r.ledger_bytes as f64),
            format!("{:.0}", r.bytes_per_tx),
            r.blocks.to_string(),
        ]);
    }
    table.print();

    println!("\nprojection: one year at each system's §VI throughput:");
    let mut table = Table::new([
        "ledger",
        "assumed TPS",
        "bytes/tx (measured)",
        "1-year growth",
    ]);
    let tps = [
        ("bitcoin-like", 4.0),
        ("ethereum-like", 12.0),
        ("nano-like", 105.75),
    ];
    for (r, (name, rate)) in reports.iter().zip(tps) {
        table.row([
            name.to_string(),
            format!("{rate}"),
            format!("{:.0}", r.bytes_per_tx),
            human_bytes(annual_growth_bytes(r.bytes_per_tx, rate)),
        ]);
    }
    table.print();

    // Growth is linear: fit a model from two run lengths and verify.
    let short_cfg = WorkloadConfig {
        duration: SimTime::from_secs(secs / 2),
        ..config
    };
    let mut nano2 = NanoAdapter::new(
        LatticeParams {
            work_difficulty_bits: 2,
            verify_signatures: true,
            verify_work: true,
        },
        8,
        100_000_000,
        9,
        SimTime::from_millis(200),
        SimTime::from_millis(300),
        1,
    );
    trace.mark("workload.run", 3);
    let short = run_workload_traced(&mut nano2, &short_cfg, tracer.as_mut());
    let long = &reports[2];
    let model = GrowthModel::fit(
        (short.confirmed as f64, short.ledger_bytes as f64),
        (long.confirmed as f64, long.ledger_bytes as f64),
    );
    println!(
        "\nlinear-growth check (nano-like): fitted {:.0} B/tx, measured {:.0} B/tx",
        model.per_tx_bytes, long.bytes_per_tx
    );

    let paper = paper_reported_sizes();
    println!(
        "\npaper reference points: bitcoin {}, ethereum {}, nano {} at {:.1}M blocks \
         (≈{:.0} B/block on mainnet — our lattice blocks are larger because hash-based \
         signatures replace ed25519; the *growth law* and §V ordering are what carries over).",
        human_bytes(paper.bitcoin_bytes),
        human_bytes(paper.ethereum_bytes),
        human_bytes(paper.nano_bytes),
        paper.nano_blocks / 1e6,
        paper.nano_bytes / paper.nano_blocks
    );
}
