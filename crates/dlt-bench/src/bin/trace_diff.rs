//! `trace_diff` — replay-driven bisection over two `DLT_TRACE` logs.
//!
//! A recorded trace pins the engine's full schedule/dispatch event
//! stream. Diff the traces of two runs — before and after a code
//! change, or two seeds suspected to be the same — and the *first
//! diverging event* localizes a nondeterminism or behaviour change far
//! more precisely than the first diverging metric in the printed
//! tables.
//!
//! ```text
//! DLT_TRACE=1 DLT_TRACE_OUT=a.json cargo run -p dlt-bench --bin e18_faults
//! DLT_TRACE=1 DLT_TRACE_OUT=b.json cargo run -p dlt-bench --bin e18_faults
//! cargo run -p dlt-bench --bin trace_diff -- a.json b.json
//! ```
//!
//! Exit status: `0` when the traces are identical, `1` on divergence,
//! `2` on usage or parse errors.

use std::process::ExitCode;

use dlt_testkit::json::{self, Json};

/// How many events around the divergence point to print from each
/// trace.
const CONTEXT: usize = 3;

fn load(path: &str) -> Result<Vec<Json>, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let doc = json::parse(&text).map_err(|err| format!("cannot parse {path}: {err:?}"))?;
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: not a trace log (no `events` array)"))?;
    Ok(events.to_vec())
}

fn describe(event: &Json) -> String {
    event.to_string()
}

fn print_context(label: &str, events: &[Json], diverged_at: usize) {
    let start = diverged_at.saturating_sub(CONTEXT);
    let end = (diverged_at + 1).min(events.len());
    for (offset, event) in events.iter().enumerate().take(end).skip(start) {
        let marker = if offset == diverged_at { ">" } else { " " };
        println!("  {marker} {label}[{offset}] {}", describe(event));
    }
    if diverged_at >= events.len() {
        println!("  > {label}[{diverged_at}] <end of trace>");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [a_path, b_path] = args.as_slice() else {
        eprintln!("usage: trace_diff <trace_a.json> <trace_b.json>");
        return ExitCode::from(2);
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("trace_diff: {err}");
            return ExitCode::from(2);
        }
    };

    let common = a.len().min(b.len());
    let diverged_at = (0..common).find(|&i| a[i] != b[i]);

    match diverged_at {
        None if a.len() == b.len() => {
            println!("trace_diff: identical ({} events)", a.len());
            ExitCode::SUCCESS
        }
        None => {
            // Equal prefix, one trace continues: the divergence is the
            // first event past the shorter trace's end.
            println!(
                "trace_diff: {a_path} has {} events, {b_path} has {} — identical for the \
                 first {common}, then one trace ends",
                a.len(),
                b.len()
            );
            print_context(a_path, &a, common);
            print_context(b_path, &b, common);
            ExitCode::from(1)
        }
        Some(at) => {
            println!(
                "trace_diff: first divergence at event {at} ({} vs {} events)",
                a.len(),
                b.len()
            );
            print_context(a_path, &a, at);
            print_context(b_path, &b, at);
            ExitCode::from(1)
        }
    }
}
