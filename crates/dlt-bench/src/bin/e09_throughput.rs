//! e09 — Scalability and throughput (paper §VI).
//!
//! Reproduces the paper's throughput comparison twice over:
//!
//! 1. *analytically*, from protocol constants (1 MB / 600 s, gas limit
//!    / 15 s, PoS 4 s, Visa 56 000 TPS, Nano's measured reference);
//! 2. *measured*, by saturating the three implementations at a
//!    compressed timescale and scaling the result back.

use dlt_bench::{banner, smoke, trace, Table};
use dlt_blockchain::bitcoin::BitcoinParams;
use dlt_blockchain::ethereum::EthereumParams;
use dlt_core::ledger::{
    run_workload_traced, BitcoinAdapter, EthereumAdapter, NanoAdapter, WorkloadConfig,
};
use dlt_core::throughput::{
    backlog_after, bitcoin_tps_range, blockchain_tps, ethereum_pos_tps, ethereum_tps_range,
    NanoThroughputModel, VISA_TPS,
};
use dlt_dag::lattice::LatticeParams;
use dlt_sim::time::SimTime;

fn main() {
    let _report = banner("e09", "throughput", "§VI");

    println!("\nanalytic rates from protocol constants:");
    let mut table = Table::new(["system", "constants", "TPS"]);
    let (btc_lo, btc_hi) = bitcoin_tps_range();
    let (eth_lo, eth_hi) = ethereum_tps_range();
    table.row([
        "Bitcoin-like PoW".to_string(),
        "1 MB block / 600 s".to_string(),
        format!("{btc_lo:.1} – {btc_hi:.1}"),
    ]);
    table.row([
        "Ethereum-like PoW".to_string(),
        "8M gas / 15 s".to_string(),
        format!("{eth_lo:.1} – {eth_hi:.1}"),
    ]);
    table.row([
        "Ethereum-like PoS".to_string(),
        "8M gas / 4 s".to_string(),
        format!("{:.1}", ethereum_pos_tps(50_000.0)),
    ]);
    let nano = NanoThroughputModel {
        node_processing_bps: 612.0,
        network_bps: 10_000.0,
    };
    let (nano_peak, nano_avg) = NanoThroughputModel::paper_reference();
    table.row([
        "Nano-like DAG".to_string(),
        "protocol-uncapped, hw-bound".to_string(),
        format!(
            "{:.0} model / {nano_peak:.0} peak, {nano_avg:.2} avg (paper)",
            nano.transfers_per_second()
        ),
    ]);
    table.row([
        "Visa (reference)".to_string(),
        "centralised".to_string(),
        format!("{VISA_TPS:.0}"),
    ]);
    table.print();

    // Measured at compressed scale: intervals ÷60, capacities ÷125
    // (Bitcoin) so capacity/interval — the TPS — keeps its shape.
    println!("\nmeasured under saturation (compressed timescale):");
    // DLT_SMOKE compresses the saturation run ~10x for CI and shrinks
    // the actor pools (MSS keygen at 2^12 leaves dominates setup);
    // shape and determinism are preserved, the TPS estimates get
    // noisier.
    let (offered_tps, duration, drain, actors, key_height) = if smoke() {
        (20.0, SimTime::from_secs(12), SimTime::from_secs(6), 6, 9)
    } else {
        (
            60.0,
            SimTime::from_secs(120),
            SimTime::from_secs(60),
            12,
            12,
        )
    };
    let config = WorkloadConfig {
        offered_tps,
        duration,
        drain,
        amount: 5,
        seed: 9,
    };
    let mut bitcoin = BitcoinAdapter::new(
        BitcoinParams {
            max_block_bytes: 24_000, // ~10 txs per block
            ..BitcoinParams::default()
        },
        SimTime::from_secs(10),
        actors,
        if smoke() { 100 } else { 200 },
        10_000,
        2,
    );
    let mut ethereum = EthereumAdapter::new(
        EthereumParams {
            initial_gas_limit: 800_000, // ~38 transfers per block
            ..EthereumParams::default()
        },
        SimTime::from_secs(1),
        actors,
        1_000_000_000,
        key_height,
        2,
    );
    let mut nano = NanoAdapter::new(
        LatticeParams {
            work_difficulty_bits: 2,
            verify_signatures: true,
            verify_work: true,
        },
        actors,
        1_000_000_000,
        key_height,
        SimTime::from_millis(100),
        SimTime::from_millis(200),
        2,
    );

    // DLT_TRACE=1 captures workload milestone marks (offered /
    // confirmed / rejected) for all three runs into one event log.
    let trace = trace::from_env("e09");
    let mut tracer = trace.tracer();
    trace.mark("workload.run", 0);
    let bitcoin_report = run_workload_traced(&mut bitcoin, &config, tracer.as_mut());
    trace.mark("workload.run", 1);
    let ethereum_report = run_workload_traced(&mut ethereum, &config, tracer.as_mut());
    trace.mark("workload.run", 2);
    let nano_report = run_workload_traced(&mut nano, &config, tracer.as_mut());
    let reports = [
        ("bitcoin-like (1x)", bitcoin_report),
        ("ethereum-like (1x)", ethereum_report),
        ("nano-like", nano_report),
    ];
    let mut table = Table::new([
        "ledger",
        "offered",
        "confirmed",
        "confirmed TPS",
        "backlog left",
        "blocks",
    ]);
    for (name, r) in &reports {
        table.row([
            name.to_string(),
            r.offered.to_string(),
            r.confirmed.to_string(),
            format!("{:.2}", r.confirmed_tps),
            r.backlog.to_string(),
            r.blocks.to_string(),
        ]);
    }
    table.print();

    let btc_measured = reports[0].1.confirmed_tps;
    let eth_measured = reports[1].1.confirmed_tps;
    let nano_measured = reports[2].1.confirmed_tps;
    println!(
        "\nshape check under identical offered load: nano ({nano_measured:.1}, absorbs \
         everything) ≥ ethereum ({eth_measured:.1}, gas-capped) > bitcoin \
         ({btc_measured:.1}, interval+size-capped) — the §VI ordering."
    );

    println!("\npending-backlog growth at the paper's real-world rates:");
    let mut table = Table::new([
        "system",
        "offered TPS",
        "capacity TPS",
        "backlog after 1 day",
    ]);
    for (name, offered, capacity) in [
        (
            "Bitcoin-like",
            9.0,
            blockchain_tps(1_000_000.0, 400.0, 600.0),
        ),
        (
            "Ethereum-like",
            16.0,
            blockchain_tps(8_000_000.0, 50_000.0, 15.0),
        ),
    ] {
        table.row([
            name.to_string(),
            format!("{offered:.1}"),
            format!("{capacity:.1}"),
            format!("{:.0}", backlog_after(offered, capacity, 86_400.0)),
        ]);
    }
    table.print();
    println!(
        "the paper's observed backlogs (186,951 pending on Bitcoin, 22,473 on \
         Ethereum) are exactly this mechanism."
    );
}
