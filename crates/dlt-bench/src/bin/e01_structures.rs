//! e01 — Ledger data structures (paper §II-A, Fig. 1).
//!
//! Builds a small Bitcoin-like chain and an Ethereum-like chain, prints
//! the hash linkage of Fig. 1 (header → predecessor hash, Merkle root
//! over transactions, Ethereum's state/receipts roots) and demonstrates
//! that tampering with any transaction is detected by the commitments.

use dlt_bench::{banner, section, Table};
use dlt_blockchain::account::AccountHolder;
use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::block::LedgerTx;
use dlt_blockchain::ethereum::{EthereumChain, EthereumParams};
use dlt_blockchain::utxo::Wallet;
use dlt_crypto::keys::Address;

fn main() {
    let _report = banner("e01", "ledger data structures: blockchain", "§II-A, Fig. 1");

    // --- Bitcoin-like: blocks of UTXO transactions, Merkle-hashed. ---
    let mut wallet = Wallet::new(1);
    let funded: Vec<(Address, u64)> = (0..4).map(|_| (wallet.new_address(), 1_000)).collect();
    let mut btc = BitcoinChain::new(BitcoinParams::default(), &funded);
    let miner = Address::from_label("miner");
    for height in 1..=3u64 {
        let tx = wallet
            .build_transfer(btc.ledger(), Address::from_label("shop"), 50, 1)
            .expect("funded");
        btc.submit_tx(tx);
        btc.mine_block(miner, height * 600_000_000);
    }

    let mut table = Table::new([
        "height",
        "block id",
        "parent",
        "merkle root",
        "txs",
        "bytes",
    ]);
    for id in btc.chain().active_chain() {
        let block = btc.chain().block(id).expect("active");
        table.row([
            block.header.height.to_string(),
            id.short(),
            if block.header.parent.is_zero() {
                "(genesis)".to_string()
            } else {
                block.header.parent.short()
            },
            block.header.merkle_root.short(),
            block.txs.len().to_string(),
            block.size_bytes().to_string(),
        ]);
    }
    table.print();

    // Linkage check: every parent field matches the predecessor's id.
    let chain_ids = btc.chain().active_chain();
    let linked = chain_ids
        .windows(2)
        .all(|pair| btc.chain().header(&pair[1]).expect("stored").parent == pair[0]);
    println!("hash linkage intact: {linked}");

    // Tamper detection via the Merkle root.
    let tip = btc.chain().tip();
    let mut tampered = btc.chain().block(&tip).expect("tip").clone();
    if let Some(tx) = tampered.txs.get_mut(0) {
        tx.outputs[0].amount += 1;
    }
    println!(
        "tampered block keeps valid merkle root: {}",
        tampered.merkle_root_valid()
    );
    assert!(!tampered.merkle_root_valid());

    // --- Ethereum-like: accounts, state roots, receipts roots. ---
    section("state-committed chain (Ethereum-like), §II-A, §V-A");
    let mut alice = AccountHolder::from_seed([7u8; 32], 5);
    let mut eth = EthereumChain::new(EthereumParams::default(), &[(alice.address(), 1_000_000)]);
    let validator = Address::from_label("validator");
    for slot in 1..=3u64 {
        eth.submit_tx(alice.transfer(Address::from_label("bob"), 100, 1));
        eth.produce_block(validator, slot * 15_000_000);
    }
    let mut table = Table::new([
        "height",
        "block id",
        "state root",
        "receipts root",
        "gas used",
    ]);
    for id in eth.chain().active_chain() {
        let block = eth.chain().block(id).expect("active");
        table.row([
            block.header.height.to_string(),
            id.short(),
            block.header.state_root.short(),
            if block.header.receipts_root.is_zero() {
                "-".to_string()
            } else {
                block.header.receipts_root.short()
            },
            block.header.gas_used.to_string(),
        ]);
    }
    table.print();
    println!(
        "ethereum-like stores {} distinct state versions (one per block, shared structurally)",
        eth.chain().active_chain().len()
    );

    // Transactions are one-signature-per-input vs one-per-tx:
    let btc_tx_bytes = btc
        .chain()
        .block(&btc.chain().tip())
        .unwrap()
        .txs
        .iter()
        .find(|t| !t.is_coinbase())
        .map(|t| t.encoded_size())
        .unwrap_or(0);
    println!("representative UTXO tx size: {btc_tx_bytes} B (WOTS-signed)");
}
