//! e08 — Pruning (paper §V-A, §V-B).
//!
//! Measures what each retention policy actually stores:
//! Bitcoin's prune mode, Ethereum's state-delta pruning and fast sync,
//! and Nano's historical/current/light node roles.

use dlt_bench::{banner, human_bytes, Table};
use dlt_blockchain::account::AccountHolder;
use dlt_blockchain::bitcoin::{BitcoinChain, BitcoinParams};
use dlt_blockchain::ethereum::{EthereumChain, EthereumParams};
use dlt_blockchain::prune::{bitcoin_archival_size, bitcoin_pruned_size, ethereum_archival_size};
use dlt_blockchain::utxo::Wallet;
use dlt_crypto::keys::Address;
use dlt_dag::account::NanoAccount;
use dlt_dag::lattice::{Lattice, LatticeParams};
use dlt_dag::prune::{ledger_size, DagStorageReport, NodeRole};

fn main() {
    let _report = banner("e08", "ledger pruning", "§V-A, §V-B");

    // --- Bitcoin prune mode. ---
    let blocks = 60u64;
    let mut wallet = Wallet::new(1);
    let allocations: Vec<(Address, u64)> = (0..blocks)
        .map(|_| (wallet.new_address(), 10_000))
        .collect();
    let mut btc = BitcoinChain::new(BitcoinParams::default(), &allocations);
    for i in 1..=blocks {
        if let Some(tx) = wallet.build_transfer(btc.ledger(), Address::from_label("shop"), 100, 1) {
            btc.submit_tx(tx);
        }
        btc.mine_block(Address::from_label("miner"), i * 600_000_000);
    }
    println!("\nbitcoin-like, {blocks} blocks of one payment each:");
    let mut table = Table::new([
        "policy", "headers", "bodies", "undo", "UTXO set", "total", "saved",
    ]);
    let archival = bitcoin_archival_size(&btc);
    for (label, breakdown) in [
        ("archival", archival),
        ("pruned (keep 12)", bitcoin_pruned_size(&btc, 12)),
        ("pruned (keep 3)", bitcoin_pruned_size(&btc, 3)),
    ] {
        table.row([
            label.to_string(),
            human_bytes(breakdown.headers_bytes as f64),
            human_bytes(breakdown.bodies_bytes as f64),
            human_bytes(breakdown.undo_bytes as f64),
            human_bytes(breakdown.state_bytes as f64),
            human_bytes(breakdown.total() as f64),
            format!(
                "{:.0}%",
                100.0 * (1.0 - breakdown.total() as f64 / archival.total() as f64)
            ),
        ]);
    }
    table.print();
    println!(
        "downside per §V-A: a pruned node can no longer serve historical \
         blocks to syncing peers."
    );

    // --- Ethereum: state-delta pruning and fast sync. ---
    let mut alice = AccountHolder::from_seed([2u8; 32], 9);
    let mut eth = EthereumChain::new(
        EthereumParams::default(),
        &[(alice.address(), u64::MAX / 4)],
    );
    for i in 0..120u64 {
        eth.submit_tx(alice.transfer(Address::from_label("bob"), 10, 1));
        eth.submit_tx(alice.transfer(Address::from_label("carol"), 10, 1));
        eth.produce_block(Address::from_label("validator"), i * 15_000_000);
    }
    println!("\nethereum-like, 120 blocks × 2 txs:");
    let full = ethereum_archival_size(&eth);
    println!(
        "archival node: {} (blocks {} + receipts {} + all state versions {})",
        human_bytes(full.total() as f64),
        human_bytes((full.headers_bytes + full.bodies_bytes) as f64),
        human_bytes(full.receipts_bytes as f64),
        human_bytes(full.state_bytes as f64),
    );
    let (synced, sync_bytes) = eth.fast_sync(32).expect("sync");
    println!(
        "fast sync (pivot = head−32): downloads {} — {} blocks from the pivot plus \
         the pivot state closure; historical replay skipped entirely",
        human_bytes(sync_bytes as f64),
        synced.blocks.len(),
    );
    let collected = eth.prune_state_deltas(32);
    let pruned = ethereum_archival_size(&eth);
    println!(
        "state-delta pruning (keep 32 roots): collected {collected} trie nodes, \
         state shrinks {} → {}",
        human_bytes(full.state_bytes as f64),
        human_bytes(pruned.state_bytes as f64),
    );

    // --- Nano node roles. ---
    let params = LatticeParams {
        work_difficulty_bits: 2,
        verify_signatures: true,
        verify_work: true,
    };
    let mut genesis = NanoAccount::from_seed([3u8; 32], 10, 2);
    let mut lattice = Lattice::new(params, genesis.genesis_block(100_000_000));
    let mut accounts: Vec<NanoAccount> = (0..10)
        .map(|i| NanoAccount::from_seed([50 + i as u8; 32], 9, 2))
        .collect();
    for account in accounts.iter_mut() {
        let send = genesis.send(account.address(), 1_000_000).unwrap();
        let hash = lattice.process(send).unwrap();
        lattice
            .process(account.receive(hash, 1_000_000).unwrap())
            .unwrap();
    }
    for round in 0..20 {
        for i in 0..accounts.len() {
            let j = (i + 1 + round) % accounts.len();
            let to = accounts[j].address();
            let send = accounts[i].send(to, 100).unwrap();
            let hash = lattice.process(send).unwrap();
            let receive = accounts[j].receive(hash, 100).unwrap();
            lattice.process(receive).unwrap();
        }
    }
    println!(
        "\nnano-like, {} blocks across {} accounts:",
        lattice.block_count(),
        lattice.account_count()
    );
    let mut table = Table::new(["node role", "stores", "bytes"]);
    table.row([
        "historical".to_string(),
        "every block since genesis".to_string(),
        human_bytes(ledger_size(&lattice, NodeRole::Historical) as f64),
    ]);
    table.row([
        "current".to_string(),
        "account heads + balances + pending".to_string(),
        human_bytes(ledger_size(&lattice, NodeRole::Current) as f64),
    ]);
    table.row([
        "light".to_string(),
        "nothing (observes/creates only)".to_string(),
        human_bytes(ledger_size(&lattice, NodeRole::Light) as f64),
    ]);
    table.print();
    let report = DagStorageReport::measure(&lattice);
    println!(
        "current-node savings: {:.1}% — possible because \"accounts keep record of \
         account balances instead of unspent transaction inputs\" (§V-B)",
        report.pruning_savings() * 100.0
    );
}
