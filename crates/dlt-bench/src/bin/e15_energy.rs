//! e15 — Energy accounting (paper §III-A-2).
//!
//! Counts expected hash attempts per confirmed transaction — the
//! simulator's energy proxy — for PoW, PoS and Nano's anti-spam work,
//! both from the closed forms and measured on real mining / real
//! anti-spam work computation.

use dlt_bench::{banner, Table};
use dlt_blockchain::pow::mine_real;
use dlt_core::energy::{energy_table, nano_attempts_per_transfer, pow_attempts_per_tx};
use dlt_crypto::keys::Address;
use dlt_crypto::sha256::sha256;
use dlt_dag::block::LatticeBlock;

fn main() {
    let _report = banner("e15", "energy: hash attempts per transaction", "§III-A-2");

    // Closed forms at Bitcoin-era-shaped operating points.
    println!("\nexpected hash attempts per transaction (closed form):");
    let mut table = Table::new(["mechanism", "attempts/tx", "security budget?"]);
    for row in energy_table(600_000_000, 2_000, 2_000, 16) {
        let role = match row.mechanism {
            m if m.starts_with("PoW") => "yes",
            m if m.starts_with("PoS") => "no (one election hash/slot)",
            _ => "no (spam metering)",
        };
        table.row([
            row.mechanism.to_string(),
            format!("{:.4}", row.attempts_per_tx),
            role.to_string(),
        ]);
    }
    table.print();

    // Measured: real PoW mining attempts at small difficulty.
    println!("\nmeasured via real partial hash inversion (difficulty 4096, 50 blocks):");
    let difficulty = 4_096u64;
    let mut total_attempts = 0u64;
    for i in 0..50u64 {
        let mut header = dlt_blockchain::block::BlockHeader {
            parent: sha256(&i.to_be_bytes()),
            height: i,
            merkle_root: dlt_crypto::Digest::ZERO,
            state_root: dlt_crypto::Digest::ZERO,
            receipts_root: dlt_crypto::Digest::ZERO,
            timestamp_micros: i,
            difficulty,
            nonce: 0,
            gas_used: 0,
            gas_limit: 0,
            proposer: Address::ZERO,
        };
        total_attempts += mine_real(&mut header, 10_000_000).expect("mineable");
    }
    let measured = total_attempts as f64 / 50.0;
    println!(
        "mean attempts per block: {measured:.0} (expected {difficulty}); \
         per tx at 2000 txs/block: {:.2} (closed form {:.2})",
        measured / 2_000.0,
        pow_attempts_per_tx(difficulty, 2_000)
    );

    // Measured: Nano anti-spam work.
    println!("\nmeasured anti-spam work (12-bit difficulty, 40 blocks):");
    let bits = 12u32;
    let mut total = 0u64;
    for i in 0..40u64 {
        let root = sha256(&(1_000 + i).to_be_bytes());
        total += LatticeBlock::compute_work(&root, bits) + 1;
    }
    let measured = total as f64 / 40.0;
    println!(
        "mean attempts per block: {measured:.0} (expected {}); per transfer \
         (send+receive): {:.0} (closed form {:.0})",
        1u64 << bits,
        measured * 2.0,
        nano_attempts_per_transfer(bits)
    );

    println!(
        "\nreading: PoW burns a *security budget* proportional to total network \
         hash power — the paper's \"more electricity than 159 countries\". PoS \
         replaces it with one election hash per slot; slashing substitutes \
         economics for electricity. Nano's per-block work is constant, paid by \
         the sender, and meters spam rather than securing history."
    );
}
